//! Canonical metric names.
//!
//! Producers (pool, resource manager, scan iterators) and consumers
//! (exporters, benches, [`crate::ScanProfile::from_delta`]) share these
//! constants so a rename cannot silently split a series. Instance-scoped
//! metrics (per pool, per shard) add labels on top of these base names;
//! [`crate::ObsSnapshot::counter`] sums across labels.

/// Successful page loads completed by a buffer pool (labelled `pool`).
pub const POOL_LOADS: &str = "pool_loads";
/// Bytes brought in by successful page loads (labelled `pool`).
pub const POOL_BYTES_LOADED: &str = "pool_bytes_loaded";
/// Times a `pin()` blocked on another thread's in-flight load of the same
/// page (labelled `pool`).
pub const POOL_LOAD_WAITS: &str = "pool_load_waits";
/// Pages pulled in by the background prefetcher (labelled `pool`).
pub const POOL_PREFETCHES: &str = "pool_prefetches";
/// Warm pin-latency histogram in nanoseconds — pins served from a resident
/// frame only; cold paths land in [`POOL_LOAD_NS`] (labelled `pool`).
pub const POOL_PIN_NS: &str = "pool_pin_ns";
/// Cold pin-latency histogram in nanoseconds — pins that started or joined
/// a load, so warm latency in [`POOL_PIN_NS`] stays readable (labelled
/// `pool`).
pub const POOL_LOAD_NS: &str = "pool_load_ns";
/// Per-shard resident hits (labelled `pool`, `shard`).
pub const POOL_SHARD_HITS: &str = "pool_shard_hits";
/// Per-shard misses — pin attempts that found no resident frame and became
/// or joined a load (labelled `pool`, `shard`). Counts attempts, so failed
/// loads are `misses - loads`.
pub const POOL_SHARD_MISSES: &str = "pool_shard_misses";
/// Per-shard lock-contention events (labelled `pool`, `shard`).
pub const POOL_SHARD_CONTENDED: &str = "pool_shard_contended";
/// Load attempts re-issued after a transient store fault (labelled `pool`).
pub const POOL_LOAD_RETRIES: &str = "pool_load_retries";
/// Store faults observed by the pool's load path, including ones absorbed
/// by a successful retry (labelled `pool`, `kind` ∈ transient/corrupt/
/// logical).
pub const POOL_LOAD_FAULTS: &str = "pool_load_faults";
/// Pages placed in per-shard quarantine after a permanent load failure
/// (labelled `pool`).
pub const POOL_QUARANTINE_INSERTS: &str = "pool_quarantine_inserts";
/// Pins failed fast from quarantine without touching the store (labelled
/// `pool`).
pub const POOL_QUARANTINE_FAIL_FAST: &str = "pool_quarantine_fail_fast";

/// Fetch requests submitted to the cold-path I/O stage, urgent and
/// prefetch classes alike (labelled `pool`).
pub const POOL_IO_SUBMITTED: &str = "pool_io_submitted";
/// Requests whose page rode a multi-page coalesced read instead of its own
/// positioned read (labelled `pool`).
pub const POOL_IO_COALESCED: &str = "pool_io_coalesced";
/// Fetch requests completed by the I/O stage, successes and failures alike
/// (labelled `pool`).
pub const POOL_IO_COMPLETIONS: &str = "pool_io_completions";
/// Physical store reads issued by the I/O stage — coalesced ranged reads
/// count once however many pages they cover (labelled `pool`).
pub const POOL_IO_PHYSICAL_READS: &str = "pool_io_physical_reads";
/// Pages-per-physical-read histogram for the I/O stage (labelled `pool`).
pub const POOL_IO_BATCH_PAGES: &str = "pool_io_batch_pages";
/// Submission-queue depth sampled at each submit (labelled `pool`).
pub const POOL_IO_QUEUE_DEPTH: &str = "pool_io_queue_depth";

/// Bytes currently registered with the resource manager (gauge).
pub const RESMAN_TOTAL_BYTES: &str = "resman_total_bytes";
/// Bytes of paged (evictable) resources currently registered (gauge).
pub const RESMAN_PAGED_BYTES: &str = "resman_paged_bytes";
/// Number of registered resources (gauge).
pub const RESMAN_RESOURCE_COUNT: &str = "resman_resource_count";
/// Number of registered paged resources (gauge).
pub const RESMAN_PAGED_COUNT: &str = "resman_paged_count";
/// Resources evicted by the proactive background sweeper.
pub const RESMAN_PROACTIVE_EVICTIONS: &str = "resman_proactive_evictions";
/// Resources evicted reactively on allocation pressure.
pub const RESMAN_REACTIVE_EVICTIONS: &str = "resman_reactive_evictions";
/// Resources evicted by the weighted-LRU low-memory handler.
pub const RESMAN_WEIGHTED_EVICTIONS: &str = "resman_weighted_evictions";
/// Total bytes reclaimed by evictions of any kind.
pub const RESMAN_EVICTED_BYTES: &str = "resman_evicted_bytes";
/// Resource registrations since startup.
pub const RESMAN_REGISTRATIONS: &str = "resman_registrations";
/// Bytes committed to reads in flight through the I/O stage — already
/// charged against memory but not yet registered as resources (gauge).
pub const RESMAN_INFLIGHT_BYTES: &str = "resman_inflight_bytes";
/// Number of in-flight I/O-stage reads currently charged (gauge).
pub const RESMAN_INFLIGHT_COUNT: &str = "resman_inflight_count";

/// Scan calls (search/count) completed by paged data-vector iterators.
pub const SCAN_SCANS: &str = "scan_scans";
/// 64-value chunks decoded or kernel-scanned.
pub const SCAN_CHUNKS_SCANNED: &str = "scan_chunks_scanned";
/// Guard-cache hits — page touches served by an already-held pin.
pub const SCAN_GUARD_CACHE_HITS: &str = "scan_guard_cache_hits";
/// Pages pinned through the pool by scan iterators (guard-cache misses).
pub const SCAN_PAGES_PINNED: &str = "scan_pages_pinned";
/// Bitmap match positions produced by scans.
pub const SCAN_BITMAP_MATCHES: &str = "scan_bitmap_matches";
/// Pages skipped via page-summary (min/max) pruning.
pub const SCAN_PAGES_PRUNED: &str = "scan_pages_pruned";
/// Kernel dispatch width (bit width of the last dispatched kernel; gauge).
pub const SCAN_DISPATCH_WIDTH: &str = "scan_dispatch_width";
/// End-to-end scan latency histogram in nanoseconds (profiled scans only).
pub const SCAN_NS: &str = "scan_ns";

/// Full-column loads performed by resident columns.
pub const COLUMN_FULL_LOADS: &str = "column_full_loads";
