//! Property tests for the observability crate: histogram bucket geometry
//! and snapshot merge/delta algebra over arbitrary inputs.

use payg_obs::{Histogram, HistogramSnapshot, ObsSnapshot, Registry, HIST_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded value lands in exactly one bucket, and that bucket's
    /// bounds bracket the value: `bound(i-1) < v <= bound(i)`.
    #[test]
    fn histogram_buckets_bracket_their_values(
        values in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        let mut total = 0u64;
        for i in 0..HIST_BUCKETS {
            total += snap.bucket(i);
        }
        prop_assert_eq!(total, values.len() as u64, "each value in exactly one bucket");
        for &v in &values {
            // Find the one bucket whose upper bound is the first >= v.
            let i = (0..HIST_BUCKETS)
                .find(|&i| HistogramSnapshot::bucket_bound(i) >= v)
                .expect("some bucket bounds every u64");
            if i > 0 {
                prop_assert!(HistogramSnapshot::bucket_bound(i - 1) < v, "v={v} bucket={i}");
            }
        }
        // The running sum is one relaxed fetch_add per record: modulo 2^64.
        let expect: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(snap.sum(), expect);
    }

    /// Percentiles walk the cumulative distribution: the reported bound is
    /// an upper bound for at least `q` of the recorded values, and p100
    /// bounds everything.
    #[test]
    fn histogram_percentiles_cover_their_rank(
        values in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let bound = snap.percentile(q);
            let covered = values.iter().filter(|&&v| v <= bound).count() as f64;
            let need = (q * values.len() as f64).ceil().max(1.0);
            prop_assert!(
                covered >= need,
                "p{q}: bound {bound} covers {covered} of {} (need {need})",
                values.len()
            );
        }
    }

    /// Merging two histogram snapshots is bucket-wise addition, and the
    /// merged percentile never decreases relative to either half.
    #[test]
    fn histogram_merge_is_bucketwise_sum(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let all = hall.snapshot();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert_eq!(merged.sum(), all.sum());
        for i in 0..HIST_BUCKETS {
            prop_assert_eq!(merged.bucket(i), all.bucket(i), "bucket {i}");
        }
        if !a.is_empty() && !b.is_empty() {
            let p99 = merged.percentile(0.99);
            prop_assert!(p99 >= ha.snapshot().percentile(0.99).min(hb.snapshot().percentile(0.99)));
        }
    }

    /// Registry snapshots: merge adds counters across registries, and
    /// `delta(before)` recovers exactly what happened in between.
    #[test]
    fn snapshot_merge_and_delta_are_exact(
        before_incs in prop::collection::vec(any::<u8>(), 0..50),
        after_incs in prop::collection::vec(any::<u8>(), 0..50),
        other_incs in prop::collection::vec(any::<u8>(), 0..50),
    ) {
        let names = ["alpha", "beta", "gamma"];
        let r = Registry::new();
        for &sel in &before_incs {
            r.counter(names[sel as usize % 3]).inc();
        }
        let before = ObsSnapshot::collect(&r);
        for &sel in &after_incs {
            r.counter(names[sel as usize % 3]).inc();
        }
        let after = ObsSnapshot::collect(&r);
        let delta = after.delta(&before);
        for (i, name) in names.iter().enumerate() {
            let expect = after_incs.iter().filter(|&&s| s as usize % 3 == i).count() as u64;
            prop_assert_eq!(delta.counter(name), expect, "delta of {}", name);
        }
        // Merge with a disjoint registry: both sides' series survive, and
        // shared names add up.
        let r2 = Registry::new();
        for &sel in &other_incs {
            r2.counter(names[sel as usize % 3]).inc();
        }
        r2.counter("only_in_r2").inc();
        let mut merged = after.clone();
        merged.merge(&ObsSnapshot::collect(&r2));
        for (i, name) in names.iter().enumerate() {
            let from_r = before_incs.iter().chain(&after_incs)
                .filter(|&&s| s as usize % 3 == i).count() as u64;
            let from_r2 = other_incs.iter().filter(|&&s| s as usize % 3 == i).count() as u64;
            prop_assert_eq!(merged.counter(name), from_r + from_r2, "merge of {}", name);
        }
        prop_assert_eq!(merged.counter("only_in_r2"), 1);
    }
}
