//! Flight-recorder span lifecycle across threads and under overload: span
//! parenting survives worker handoff and event-ring overflow, and the
//! disabled path stays cheap enough for every hot path.

use payg_obs::{EventKind, QueryCtx, SpanKind, Tracer};

/// A query span fanned out to workers: every worker's partition span
/// parents to the query, every worker's events tag its own partition span,
/// and the drained tree reassembles exactly.
#[test]
fn span_tree_reassembles_across_worker_threads() {
    let t = Tracer::new();
    t.enable();
    let query = t.span(SpanKind::Query, 0);
    let qid = query.id();
    let ctx = QueryCtx::current(&t);
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let t = t.clone();
            s.spawn(move || {
                let part = ctx.enter(&t, SpanKind::ScanPartition, w * 100);
                for page in 0..8u64 {
                    t.emit(EventKind::PagePinned, w, page, 0);
                }
                let wait = t.span(SpanKind::PageWait, 3);
                drop(wait);
                drop(part);
            });
        }
    });
    drop(query);

    let spans = t.drain_spans();
    let events = t.drain();
    let parts: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::ScanPartition).collect();
    assert_eq!(parts.len(), 4);
    assert!(parts.iter().all(|s| s.parent == qid), "partitions parent to the query");
    let waits: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::PageWait).collect();
    assert_eq!(waits.len(), 4);
    assert!(
        waits.iter().all(|w| parts.iter().any(|p| p.id == w.parent)),
        "waits parent to their worker's partition"
    );
    // Every event belongs to the partition span covering its worker, and
    // the (chain = worker) tag proves it is the *right* partition.
    assert_eq!(events.len(), 32);
    for e in &events {
        let part = parts.iter().find(|p| p.id == e.span).expect("event tagged with a partition");
        assert_eq!(part.detail, e.chain * 100, "tagged with its own worker's span");
    }
    // Distinct worker threads got distinct lanes.
    let mut tids: Vec<u64> = parts.iter().map(|p| p.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4);
}

/// Spans live in a side store, not the event rings: however many events
/// overflow, every parent link in the span tree stays resolvable.
#[test]
fn ring_overflow_keeps_span_parents_resolvable() {
    let t = Tracer::with_capacity(8);
    t.enable();
    let query = t.span(SpanKind::Query, 0);
    let qid = query.id();
    {
        let _part = t.span(SpanKind::ScanPartition, 0);
        // Overflow the event ring many times over.
        for i in 0..10_000u64 {
            t.emit(EventKind::PagePinned, 0, i, 0);
        }
    }
    drop(query);

    assert!(t.dropped() > 0, "the ring did overflow");
    let events = t.drain();
    assert_eq!(events.len(), 8, "only the newest events survive");
    let spans = t.drain_spans();
    assert_eq!(spans.len(), 2, "spans are not ring-bounded");
    let part = spans.iter().find(|s| s.kind == SpanKind::ScanPartition).unwrap();
    assert_eq!(part.parent, qid, "parent link survived the overflow");
    // The surviving events still resolve into the surviving tree.
    assert!(events.iter().all(|e| e.span == part.id));
}

/// The disabled path — one relaxed load for emits and span opens alike —
/// must stay cheap enough to leave in every pool hot path. 10M emits and
/// 1M span opens in well under a second even on a loaded CI box.
#[test]
fn disabled_path_smoke_ten_million_emits() {
    let t = Tracer::new();
    let started = std::time::Instant::now();
    for i in 0..10_000_000u64 {
        t.emit(EventKind::PagePinned, 0, i, 0);
    }
    for i in 0..1_000_000u64 {
        let s = t.span(SpanKind::ChunkDispatch, i);
        assert_eq!(s.id(), 0);
    }
    let elapsed = started.elapsed();
    assert!(t.drain().is_empty(), "disabled emits buffer nothing");
    assert!(t.drain_spans().is_empty(), "disabled spans record nothing");
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "disabled path too slow: {elapsed:?} for 11M operations"
    );
}

/// `emit_tagged` carries an explicit span across threads — the I/O worker
/// pattern — without touching the emitting thread's current span.
#[test]
fn emit_tagged_attributes_work_done_on_behalf_of_another_thread() {
    let t = Tracer::new();
    t.enable();
    let query = t.span(SpanKind::Query, 0);
    let origin = query.id();
    let worker = {
        let t = t.clone();
        std::thread::spawn(move || {
            // Simulates an I/O worker: no span open here, but completions
            // are tagged with the originating request's span.
            let batch = t.span_with_parent(SpanKind::IoBatch, origin, 3);
            let bid = batch.id();
            t.emit_tagged(EventKind::IoBatchIssued, 1, 0, 3, origin, bid);
            drop(batch);
            for page in 0..3u64 {
                t.emit_tagged(EventKind::IoCompleted, 1, page, 4096, origin, bid);
            }
            bid
        })
    };
    let bid = worker.join().unwrap();
    drop(query);

    let events = t.drain();
    assert_eq!(events.len(), 4);
    assert!(events.iter().all(|e| e.span == origin), "all tagged with the originator");
    assert!(events.iter().all(|e| e.aux == bid), "all linked to the batch");
    let spans = t.drain_spans();
    let batch = spans.iter().find(|s| s.kind == SpanKind::IoBatch).unwrap();
    assert_eq!(batch.parent, origin);
    assert_eq!(batch.id, bid, "the batch span's id doubles as the batch id");
}
