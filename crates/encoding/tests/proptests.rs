//! Property-based tests for the encoding primitives.

use payg_encoding::prefix::{OverflowRef, ValueBlock, ValueBlockBuilder};
use payg_encoding::scan::{search, search_at_rows};
use payg_encoding::{okey, BitPackedVec, BitWidth, VidSet};
use proptest::prelude::*;
use std::collections::HashMap;

fn width_and_values() -> impl Strategy<Value = (u32, Vec<u64>)> {
    (0u32..=64).prop_flat_map(|bits| {
        let max = BitWidth::new(bits).unwrap().max_value();
        (Just(bits), prop::collection::vec(0..=max, 0..300))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The raw unaligned word loaders agree with the safe
    /// `u64::from_le_bytes` spelling on arbitrary byte strings and offsets
    /// — including deliberately misaligned ones. This is the property the
    /// CI Miri job checks the pointer arithmetic of.
    #[test]
    fn unaligned_loads_match_safe_decode(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        skew in 0usize..8,
        off in 0usize..256,
    ) {
        use payg_encoding::unaligned;
        let view = &bytes[skew.min(bytes.len())..];
        let safe = |o: usize| {
            let mut buf = [0u8; 8];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = view.get(o + i).copied().unwrap_or(0);
            }
            u64::from_le_bytes(buf)
        };
        prop_assert_eq!(unaligned::le_u64_padded(view, off), safe(off));
        let mut words = vec![0u64; view.len() / 8];
        unaligned::fill_le_words(view, &mut words);
        let mut extended = Vec::new();
        unaligned::extend_le_words(view, &mut extended);
        prop_assert_eq!(&extended, &words);
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(*w, safe(i * 8));
        }
    }

    /// Packing then unpacking returns the original values at every width.
    #[test]
    fn bitpack_roundtrip((bits, values) in width_and_values()) {
        let w = BitWidth::new(bits).unwrap();
        let v = BitPackedVec::from_values_with_width(&values, w);
        prop_assert_eq!(v.len() as usize, values.len());
        for (i, &expect) in values.iter().enumerate() {
            prop_assert_eq!(v.get(i as u64), expect);
        }
        let iterated: Vec<u64> = v.iter().collect();
        prop_assert_eq!(iterated, values.clone());
        // Round-trip through raw words (the persistence path).
        let back = BitPackedVec::from_words(w, v.len(), v.words().to_vec()).unwrap();
        prop_assert_eq!(&back, &v);
    }

    /// mget on an arbitrary sub-range equals the slice of the source.
    #[test]
    fn bitpack_mget((bits, values) in width_and_values(), a in 0usize..300, b in 0usize..300) {
        prop_assume!(!values.is_empty());
        let (x, y) = (a % values.len(), b % values.len());
        let (from, to) = (x.min(y), x.max(y) + 1);
        let v = BitPackedVec::from_values(&values);
        let _ = bits;
        let mut out = Vec::new();
        v.mget(from as u64, to as u64, &mut out);
        prop_assert_eq!(&out[..], &values[from..to]);
    }

    /// SWAR/chunked search matches a naive scan for every predicate shape.
    #[test]
    fn search_matches_naive(
        (bits, values) in width_and_values(),
        probe_seed in any::<u64>(),
        lo in any::<u64>(),
        span in 0u64..100,
    ) {
        prop_assume!(!values.is_empty());
        let w = BitWidth::new(bits).unwrap();
        let v = BitPackedVec::from_values_with_width(&values, w);
        let lo = lo & w.mask();
        let hi = lo.saturating_add(span) & w.mask();
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let probe = values[(probe_seed % values.len() as u64) as usize];
        let sets = [
            VidSet::Single(probe),
            VidSet::range(lo, hi),
            VidSet::from_vids(values.iter().step_by(3).copied().collect()),
        ];
        for set in sets {
            let mut got = Vec::new();
            search(&v, 0, v.len(), &set, &mut got);
            let expect: Vec<u64> = (0..values.len() as u64)
                .filter(|&i| set.contains(values[i as usize]))
                .collect();
            prop_assert_eq!(&got, &expect);

            // Row-filtered variant over a strided row list.
            let rows: Vec<u64> = (0..values.len() as u64).step_by(5).collect();
            let mut got_rows = Vec::new();
            search_at_rows(&v, &rows, &set, &mut got_rows);
            let expect_rows: Vec<u64> = rows
                .iter()
                .copied()
                .filter(|&i| set.contains(values[i as usize]))
                .collect();
            prop_assert_eq!(&got_rows, &expect_rows);
        }
    }

    /// VidSet::from_vids preserves exact membership regardless of the
    /// representation it picks.
    #[test]
    fn vidset_membership(vids in prop::collection::vec(0u64..500, 0..60)) {
        let set = VidSet::from_vids(vids.clone());
        for v in 0..520u64 {
            prop_assert_eq!(set.contains(v), vids.contains(&v));
        }
        let mut sorted = vids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let listed: Vec<u64> = set.iter().collect();
        prop_assert_eq!(listed, sorted);
    }

    /// Order-preserving keys: compare-as-bytes equals compare-as-values.
    #[test]
    fn okey_i64_order(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(okey::encode_i64(a).cmp(&okey::encode_i64(b)), a.cmp(&b));
        prop_assert_eq!(okey::decode_i64(&okey::encode_i64(a)).unwrap(), a);
    }

    /// f64 keys follow IEEE-754 total order exactly (including -0.0 < +0.0
    /// and signed NaNs at the extremes).
    #[test]
    fn okey_f64_order(a in any::<f64>(), b in any::<f64>()) {
        let (ka, kb) = (okey::encode_f64(a), okey::encode_f64(b));
        prop_assert_eq!(ka.cmp(&kb), a.total_cmp(&b));
        prop_assert_eq!(okey::decode_f64(&ka).unwrap().to_bits(), a.to_bits());
    }

    #[test]
    fn okey_i128_order(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(okey::encode_i128(a).cmp(&okey::encode_i128(b)), a.cmp(&b));
        prop_assert_eq!(okey::decode_i128(&okey::encode_i128(a)).unwrap(), a);
    }

    /// Value blocks round-trip arbitrary sorted keys, including ones that
    /// spill to overflow pages, and `find` agrees with direct comparison.
    #[test]
    fn value_block_roundtrip(
        mut keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..16),
        inline_limit in 1usize..64,
        probe in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        keys.sort();
        keys.dedup();
        let mut pages: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut next = 0u64;
        let mut builder = ValueBlockBuilder::new();
        for k in &keys {
            builder.push(k, inline_limit, &mut |bytes: &[u8]| {
                bytes
                    .chunks(32)
                    .map(|c| {
                        let p = next;
                        next += 1;
                        pages.insert(p, c.to_vec());
                        OverflowRef { page_no: p, len: c.len() as u32 }
                    })
                    .collect()
            });
        }
        let bytes = builder.finish();
        let (block, consumed) = ValueBlock::parse(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        let mut fetch = |r: &OverflowRef| Ok(pages[&r.page_no].clone());
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(&block.materialize(i, &mut fetch).unwrap(), k);
        }
        let got = block.find(&probe, &mut fetch).unwrap();
        let expect = keys.binary_search(&probe);
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The compiled SWAR equality fast path agrees bit-for-bit with the
    /// general decode path on every chunk, at every word-aligned width.
    #[test]
    fn compiled_predicate_matches_general_path(
        bits in prop::sample::select(vec![2u32, 4, 8, 16, 32]),
        seed in any::<u64>(),
        probe_raw in any::<u64>(),
    ) {
        use payg_encoding::chunk::{encode_chunk, words_per_chunk, CHUNK_LEN};
        use payg_encoding::scan::{chunk_bitmap_in, CompiledPredicate};
        let w = BitWidth::new(bits).unwrap();
        let mut values = [0u64; CHUNK_LEN];
        for (i, v) in values.iter_mut().enumerate() {
            *v = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64 * 0xBF58_476D)
                & w.mask();
        }
        let mut words = vec![0u64; words_per_chunk(w)];
        encode_chunk(&values, w, &mut words);
        // Probe both present values and arbitrary ones.
        for probe in [probe_raw & w.mask(), values[7], values[63], 0, w.mask()] {
            let set = VidSet::Single(probe);
            let compiled = CompiledPredicate::new(w, &set);
            let is_known_variant = matches!(
                compiled,
                CompiledPredicate::SwarEq { .. } | CompiledPredicate::General { .. }
            );
            prop_assert!(is_known_variant);
            let got = compiled.chunk_bitmap(&words);
            let expect = chunk_bitmap_in(&words, w, &set);
            prop_assert_eq!(got, expect, "width {} probe {}", bits, probe);
            // And both agree with a naive evaluation.
            let mut naive = 0u64;
            for (i, &v) in values.iter().enumerate() {
                naive |= u64::from(v == probe) << i;
            }
            prop_assert_eq!(got, naive);
        }
    }

    /// search_bitmap and position-materializing search agree on arbitrary
    /// vectors and predicates.
    #[test]
    fn bitmap_and_position_search_agree(
        values in prop::collection::vec(0u64..300, 1..400),
        lo in 0u64..300,
        span in 0u64..80,
    ) {
        use payg_encoding::scan::{search, search_bitmap};
        let v = BitPackedVec::from_values(&values);
        let set = VidSet::range(lo, lo + span);
        let mut positions = Vec::new();
        search(&v, 0, v.len(), &set, &mut positions);
        let mut words = Vec::new();
        search_bitmap(&v, 0, v.len(), &set, &mut words);
        let mut from_bitmap = Vec::new();
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                from_bitmap.push(wi as u64 * 64 + w.trailing_zeros() as u64);
                w &= w - 1;
            }
        }
        prop_assert_eq!(from_bitmap, positions);
    }
}

/// A width and a value vector whose last chunk is usually partial, covering
/// the specialized table (1..=32) and the generic fallback (33..).
fn kernel_width_and_values() -> impl Strategy<Value = (u32, Vec<u64>)> {
    (1u32..=36).prop_flat_map(|bits| {
        let max = BitWidth::new(bits).unwrap().max_value();
        (Just(bits), prop::collection::vec(0..=max, 1..300))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The width-specialized kernels, the generic reference kernel, and a
    /// naive per-value decode agree bit-for-bit on every chunk — including
    /// the trailing partial chunk — for equality, range, and in-set
    /// predicates at random widths.
    #[test]
    fn specialized_generic_and_naive_kernels_agree(
        (bits, values) in kernel_width_and_values(),
        probe_seed in any::<u64>(),
        lo_raw in any::<u64>(),
        span in 0u64..200,
    ) {
        use payg_encoding::kernels::{boundary_mask, chunk_bitmap_generic, KernelPredicate};
        let w = BitWidth::new(bits).unwrap();
        let v = BitPackedVec::from_values_with_width(&values, w);
        let lo = lo_raw & w.mask();
        let hi = lo.saturating_add(span).min(w.max_value());
        let probe = values[(probe_seed % values.len() as u64) as usize];
        let sets = [
            VidSet::Single(probe),
            VidSet::Single(probe_seed & w.mask()),
            VidSet::range(lo, hi),
            VidSet::from_vids(values.iter().step_by(7).copied().collect()),
        ];
        let n = bits as usize;
        let chunks = v.chunk_count() as usize;
        for set in sets {
            let pred = KernelPredicate::new(w, &set);
            let mut specialized = Vec::new();
            pred.scan_chunks(v.words(), &mut specialized);
            prop_assert_eq!(specialized.len(), chunks);
            for (ci, &spec_bm) in specialized.iter().enumerate() {
                // Padding slots past len() hold zero and may "match"; mask
                // every kernel the same way before comparing.
                let live = boundary_mask(ci as u64, 0, v.len());
                let chunk = &v.words()[ci * n..(ci + 1) * n];
                let generic = chunk_bitmap_generic(chunk, w, &set);
                let mut naive = 0u64;
                for slot in 0..64usize {
                    let row = ci * 64 + slot;
                    if row < values.len() {
                        naive |= u64::from(set.contains(values[row])) << slot;
                    }
                }
                prop_assert_eq!(
                    spec_bm & live, naive,
                    "specialized != naive: width {} chunk {} {:?}", bits, ci, &set
                );
                prop_assert_eq!(
                    generic & live, naive,
                    "generic != naive: width {} chunk {} {:?}", bits, ci, &set
                );
                prop_assert_eq!(pred.chunk_bitmap(chunk) & live, naive);
            }
        }
    }

    /// COUNT never materializes positions yet always equals the length of
    /// the materialized search over the same sub-range, and rank/select over
    /// the result bitmaps round-trips every match position.
    #[test]
    fn count_rank_select_agree_with_search(
        (bits, values) in kernel_width_and_values(),
        a in any::<u64>(),
        b in any::<u64>(),
        lo_raw in any::<u64>(),
        span in 0u64..200,
    ) {
        use payg_encoding::kernels::{
            bitmap_count, bitmap_rank, bitmap_select, count_matches, materialize_positions,
        };
        use payg_encoding::scan::{search, search_bitmap};
        let w = BitWidth::new(bits).unwrap();
        let v = BitPackedVec::from_values_with_width(&values, w);
        let (x, y) = (a % (v.len() + 1), b % (v.len() + 1));
        let (from, to) = (x.min(y), x.max(y));
        let lo = lo_raw & w.mask();
        let set = VidSet::range(lo, lo.saturating_add(span).min(w.max_value()));

        let mut positions = Vec::new();
        search(&v, from, to, &set, &mut positions);
        prop_assert_eq!(count_matches(&v, from, to, &set), positions.len() as u64);

        // Full-range bitmaps: materialization and rank/select both recover
        // exactly the searched positions.
        let mut bitmaps = Vec::new();
        search_bitmap(&v, 0, v.len(), &set, &mut bitmaps);
        let mut full = Vec::new();
        search(&v, 0, v.len(), &set, &mut full);
        let mut materialized = Vec::new();
        materialize_positions(&bitmaps, 0, &mut materialized);
        prop_assert_eq!(&materialized, &full);
        prop_assert_eq!(bitmap_count(&bitmaps), full.len() as u64);
        for (k, &pos) in full.iter().enumerate() {
            prop_assert_eq!(bitmap_select(&bitmaps, k as u64), Some(pos));
            prop_assert_eq!(bitmap_rank(&bitmaps, pos), k as u64);
        }
        prop_assert_eq!(bitmap_select(&bitmaps, full.len() as u64), None);
    }
}
