//! Bit widths for uniform n-bit compression.

use crate::EncodingError;

/// Number of bits used to encode every value of an n-bit packed vector.
///
/// Valid widths are `0..=64`. Width 0 is used for columns with a single
/// distinct value (every identifier is 0 and occupies no storage), mirroring
/// the paper's cardinality-1 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitWidth(u8);

impl BitWidth {
    /// The zero width: every encoded value is 0 and occupies no bits.
    pub const ZERO: BitWidth = BitWidth(0);
    /// The maximum supported width (a full 64-bit word per value).
    pub const MAX: BitWidth = BitWidth(64);

    /// Creates a width, validating it lies in `0..=64`.
    pub fn new(bits: u32) -> crate::Result<Self> {
        if bits <= 64 {
            Ok(BitWidth(bits as u8))
        } else {
            Err(EncodingError::InvalidBitWidth(bits))
        }
    }

    /// The smallest width able to represent `max_value`.
    ///
    /// `for_max_value(0) == 0`, `for_max_value(1) == 1`,
    /// `for_max_value(255) == 8`, …
    pub fn for_max_value(max_value: u64) -> Self {
        BitWidth((64 - max_value.leading_zeros()) as u8)
    }

    /// The smallest width able to index a dictionary of `cardinality`
    /// distinct values (identifiers `0..cardinality`).
    pub fn for_cardinality(cardinality: u64) -> Self {
        if cardinality <= 1 {
            BitWidth::ZERO
        } else {
            Self::for_max_value(cardinality - 1)
        }
    }

    /// The width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// The largest value representable at this width.
    #[inline]
    pub fn max_value(self) -> u64 {
        if self.0 == 0 {
            0
        } else if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// A mask with the low `bits()` bits set.
    #[inline]
    pub fn mask(self) -> u64 {
        self.max_value()
    }

    /// True when values at this width never straddle a 64-bit word boundary,
    /// i.e. the width divides 64. These widths admit the pure SWAR scan fast
    /// path in [`crate::scan`].
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0 != 0 && 64 % u32::from(self.0) == 0
    }
}

impl std::fmt::Display for BitWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_max_value_boundaries() {
        assert_eq!(BitWidth::for_max_value(0).bits(), 0);
        assert_eq!(BitWidth::for_max_value(1).bits(), 1);
        assert_eq!(BitWidth::for_max_value(2).bits(), 2);
        assert_eq!(BitWidth::for_max_value(3).bits(), 2);
        assert_eq!(BitWidth::for_max_value(4).bits(), 3);
        assert_eq!(BitWidth::for_max_value(255).bits(), 8);
        assert_eq!(BitWidth::for_max_value(256).bits(), 9);
        assert_eq!(BitWidth::for_max_value(u64::MAX).bits(), 64);
    }

    #[test]
    fn for_cardinality_boundaries() {
        assert_eq!(BitWidth::for_cardinality(0).bits(), 0);
        assert_eq!(BitWidth::for_cardinality(1).bits(), 0);
        assert_eq!(BitWidth::for_cardinality(2).bits(), 1);
        assert_eq!(BitWidth::for_cardinality(3).bits(), 2);
        assert_eq!(BitWidth::for_cardinality(1 << 20).bits(), 20);
    }

    #[test]
    fn max_value_round_trip() {
        for bits in 0..=64 {
            let w = BitWidth::new(bits).unwrap();
            if bits > 0 && bits < 64 {
                assert_eq!(BitWidth::for_max_value(w.max_value()).bits(), bits);
            }
        }
        assert!(BitWidth::new(65).is_err());
    }

    #[test]
    fn word_aligned_widths() {
        let aligned: Vec<u32> = (0..=64)
            .filter(|&b| BitWidth::new(b).unwrap().is_word_aligned())
            .collect();
        assert_eq!(aligned, vec![1, 2, 4, 8, 16, 32, 64]);
    }
}
