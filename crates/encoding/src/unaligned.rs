//! Unaligned little-endian word loads — the decode hot path.
//!
//! Chunk decode and SWAR scans consume pages as `n` consecutive
//! little-endian `u64` words per 64-value chunk. Pages hand out `&[u8]`
//! with no alignment guarantee, so the safe spelling is a per-word
//! `[u8; 8]` copy through `u64::from_le_bytes`; on the scan path that
//! slice-and-convert dance is the single hottest loop in the tree. The
//! loaders here do one bounds check per *call*, then issue raw
//! [`core::ptr::read_unaligned`] loads — the compiler lowers each to a
//! single unaligned move on every target we build for.
//!
//! This module is the only unsafe code in the workspace. The invariants
//! are purely arithmetic (every read stays inside the borrowed slice), the
//! crate denies `unsafe_op_in_unsafe_fn`, and CI runs the module's tests
//! under Miri, which checks exactly this kind of raw-pointer arithmetic
//! for out-of-bounds and misaligned access.

/// Reads the little-endian `u64` at byte offset `off` of `bytes` without
/// a bounds check.
///
/// # Safety
///
/// `off + 8 <= bytes.len()` must hold; the read is otherwise out of
/// bounds. No alignment requirement: the load is `read_unaligned`.
#[inline]
pub unsafe fn read_le_u64_unchecked(bytes: &[u8], off: usize) -> u64 {
    debug_assert!(off + 8 <= bytes.len(), "read past slice end");
    // SAFETY: the caller guarantees `off + 8 <= bytes.len()`, so the
    // 8-byte read starting at `as_ptr() + off` stays inside the borrowed
    // slice. `u64` has no validity invariants and `read_unaligned`
    // tolerates any alignment.
    let raw = unsafe { core::ptr::read_unaligned(bytes.as_ptr().add(off).cast::<u64>()) };
    u64::from_le(raw)
}

/// Fills `out` with consecutive little-endian `u64` words read from the
/// front of `bytes`.
///
/// # Panics
///
/// Panics if `bytes` is shorter than `8 * out.len()`.
#[inline]
pub fn fill_le_words(bytes: &[u8], out: &mut [u64]) {
    assert!(bytes.len() >= out.len() * 8, "fill_le_words: source too short");
    for (i, w) in out.iter_mut().enumerate() {
        // SAFETY: `i < out.len()` and the assert above gives
        // `out.len() * 8 <= bytes.len()`, so `i * 8 + 8 <= bytes.len()`.
        *w = unsafe { read_le_u64_unchecked(bytes, i * 8) };
    }
}

/// Appends `bytes.len() / 8` little-endian words to `out`. Remainder
/// bytes past the last full word are ignored, mirroring
/// `chunks_exact(8)`: chunk framing guarantees word-integral inputs, so
/// a remainder is the caller's framing bug to surface elsewhere.
#[inline]
pub fn extend_le_words(bytes: &[u8], out: &mut Vec<u64>) {
    let n = bytes.len() / 8;
    out.reserve(n);
    for i in 0..n {
        // SAFETY: `i < n = bytes.len() / 8` implies `i * 8 + 8 <= bytes.len()`.
        out.push(unsafe { read_le_u64_unchecked(bytes, i * 8) });
    }
}

/// Reads the little-endian `u64` at byte offset `off`, zero-padding any
/// bytes past the end of `bytes` — the safe tail path for callers whose
/// last word may be partial. Offsets at or past the end read as zero.
#[inline]
pub fn le_u64_padded(bytes: &[u8], off: usize) -> u64 {
    if off.checked_add(8).is_some_and(|end| end <= bytes.len()) {
        // SAFETY: the guard above is exactly the unchecked loader's
        // precondition `off + 8 <= bytes.len()`.
        unsafe { read_le_u64_unchecked(bytes, off) }
    } else {
        // Safe tail: at most 7 bytes remain; copy them into a zeroed word.
        let mut buf = [0u8; 8];
        if let Some(tail) = bytes.get(off..) {
            buf[..tail.len()].copy_from_slice(tail);
        }
        u64::from_le_bytes(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(bytes: &[u8], off: usize) -> u64 {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = bytes.get(off + i).copied().unwrap_or(0);
        }
        u64::from_le_bytes(buf)
    }

    #[test]
    fn matches_from_le_bytes_at_every_offset() {
        let bytes: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
        for off in 0..bytes.len() - 8 {
            // SAFETY: loop bound keeps off + 8 <= bytes.len().
            let got = unsafe { read_le_u64_unchecked(&bytes, off) };
            assert_eq!(got, reference(&bytes, off), "offset {off}");
            assert_eq!(le_u64_padded(&bytes, off), reference(&bytes, off));
        }
    }

    #[test]
    fn fill_and_extend_agree_with_chunked_decode() {
        let bytes: Vec<u8> = (0..80u8).map(|i| i.wrapping_mul(193)).collect();
        let expected: Vec<u64> =
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        let mut filled = vec![0u64; expected.len()];
        fill_le_words(&bytes, &mut filled);
        assert_eq!(filled, expected);
        let mut extended = Vec::new();
        extend_le_words(&bytes, &mut extended);
        assert_eq!(extended, expected);
        // A 3-byte remainder is ignored by extend, zero-padded by the tail
        // loader.
        let mut ragged = Vec::new();
        extend_le_words(&bytes[..19], &mut ragged);
        assert_eq!(ragged, expected[..2]);
        assert_eq!(le_u64_padded(&bytes[..19], 16), reference(&bytes[..19], 16));
    }

    #[test]
    fn padded_loads_at_and_past_the_end_are_zero() {
        let bytes = [0xAAu8; 5];
        assert_eq!(le_u64_padded(&bytes, 0), reference(&bytes, 0));
        assert_eq!(le_u64_padded(&bytes, 5), 0);
        assert_eq!(le_u64_padded(&bytes, 64), 0);
        assert_eq!(le_u64_padded(&bytes, usize::MAX - 3), 0);
        assert_eq!(le_u64_padded(&[], 0), 0);
    }

    #[test]
    fn unaligned_source_offsets_round_trip() {
        // Start reads at offset 1 of an 8-aligned Vec so every load is
        // genuinely misaligned — the case Miri checks the pointer math on.
        let mut backing = vec![0u8; 65];
        for (i, b) in backing.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(101).wrapping_add(7);
        }
        let bytes = &backing[1..];
        let mut words = vec![0u64; bytes.len() / 8];
        fill_le_words(bytes, &mut words);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(*w, reference(bytes, i * 8));
        }
    }
}
