//! Bit-width-specialized scan kernels (the warm-path `search` fast path).
//!
//! The generic kernels in [`crate::scan`] take the bit width as a runtime
//! value, so every chunk pays runtime-width shifts, a 128-bit carry decode
//! for non-word-aligned widths, and per-chunk predicate dispatch. Once pages
//! are pool-resident the scan is CPU-bound and that overhead dominates —
//! exactly the regime MorphStore's compression-specialized operator variants
//! target. This module compiles one kernel *per bit width* with the width as
//! a const generic:
//!
//! * `scan_eq::<N>` / `scan_range::<N>` / `scan_in_set::<N>` for `N` in
//!   `1..=32`, selected once per scan through a dispatch table
//!   ([`WidthKernels::for_width`]). Shift amounts, lane counts and masks are
//!   compile-time constants; the per-slot loops fully unroll and
//!   autovectorize.
//! * Word-aligned widths (1, 2, 4, 8, 16, 32) evaluate equality *and
//!   ranges* without decoding at all: exact SWAR lane-compares (equality
//!   zero-test, per-lane unsigned less-than for the range bounds) produce a
//!   per-lane match mask, and the byte-aligned widths (8/16/32) collapse it
//!   to result bits with a single multiply (a portable `movemask`).
//!   Non-dividing widths `>= 15` also skip the decode for equality: a
//!   zero-byte screen over the XOR diff rejects whole words, and only
//!   candidate lanes are verified. Small sorted sets run decode-free at
//!   every width `>= 15` and every dividing width: an OR of fused SWAR
//!   equality passes at aligned widths, an OR of zero-byte-screened passes
//!   at non-dividing widths `>= 15`, and a decode plus branchless linear
//!   membership test below that — never a per-slot binary search.
//! * Every kernel emits **result bitmaps** — one `u64` per 64-value chunk,
//!   bit `i` set ⇔ slot `i` matches — instead of pushing row ids. Bitmap
//!   output costs O(1) per chunk regardless of selectivity; positions are
//!   materialized late via [`materialize_positions`] / [`bitmap_select`].
//!
//! Widths 0 and 33..=64 (cardinality 1 and > 2^32 — both rare) fall back to
//! the generic chunk kernels; [`KernelPredicate`] hides the split.

use crate::chunk::{decode_chunk, CHUNK_LEN};
use crate::scan::CompiledPredicate;
use crate::{BitPackedVec, BitWidth, VidSet};

/// One chunk's match bitmap for an equality predicate at const width `N`.
///
/// `chunk` must hold exactly `N` words; `vid` must fit in `N` bits.
#[inline]
pub fn chunk_eq<const N: u32>(chunk: &[u64], vid: u64) -> u64 {
    if N == 1 {
        // Lanes are single bits: the bitmap is the (possibly inverted) word.
        return if vid == 0 { !chunk[0] } else { chunk[0] };
    }
    if 64 % N == 0 {
        // SWAR path: no decode. XOR with the replicated probe, then an exact
        // per-lane zero test (no cross-lane borrows: every lane of `x | msb`
        // has its top bit set, so subtracting 1 per lane never underflows).
        let lsb = lane_lsb::<N>();
        let msb = lsb << (N - 1);
        let pattern = vid.wrapping_mul(lsb);
        let mut bm = 0u64;
        for (wi, &word) in chunk[..N as usize].iter().enumerate() {
            let x = word ^ pattern;
            let hits = msb & !(x | ((x | msb).wrapping_sub(lsb)));
            bm |= movemask::<N>(hits) << (wi * (64 / N as usize));
        }
        return bm;
    }
    if N >= 15 {
        let pat = eq_pattern::<N>(vid);
        return chunk_eq_screened::<N>(chunk, vid, &pat[..N as usize]);
    }
    let mut buf = [0u64; CHUNK_LEN];
    decode_const::<N>(chunk, &mut buf);
    let mut bm = 0u64;
    for (i, &v) in buf.iter().enumerate() {
        bm |= u64::from(v == vid) << i;
    }
    bm
}

/// One chunk's match bitmap for an inclusive range predicate at width `N`.
///
/// `lo <= hi` and `hi` must fit in `N` bits.
#[inline]
pub fn chunk_range<const N: u32>(chunk: &[u64], lo: u64, hi: u64) -> u64 {
    if 64 % N == 0 {
        // SWAR path: no decode. Two per-lane unsigned compares against the
        // replicated bounds — `lo <= v <= hi` is `!(v < lo) & !(hi < v)`.
        let lsb = lane_lsb::<N>();
        let h = lsb << (N - 1);
        let lo_rep = lo.wrapping_mul(lsb);
        let hi_rep = hi.wrapping_mul(lsb);
        let mut bm = 0u64;
        for (wi, &word) in chunk[..N as usize].iter().enumerate() {
            let hits = h & !lane_lt::<N>(word, lo_rep) & !lane_lt::<N>(hi_rep, word);
            bm |= movemask::<N>(hits) << (wi * (64 / N as usize));
        }
        return bm;
    }
    let mut buf = [0u64; CHUNK_LEN];
    decode_const::<N>(chunk, &mut buf);
    let mut bm = 0u64;
    for (i, &v) in buf.iter().enumerate() {
        bm |= u64::from(v.wrapping_sub(lo) <= hi - lo) << i;
    }
    bm
}

/// Sorted sets up to this size use the linear membership kernels instead of
/// the per-slot binary search (branchless compares beat the search's
/// mispredicted branches well past this point, but the cost is linear in the
/// set size, so cap it).
const MAX_LINEAR_SET: usize = 16;

/// Per-lane unsigned `x < y` at a dividing width `N`: returns a mask with
/// the *top* bit of every matching lane set (the same shape [`movemask`]
/// consumes).
///
/// `d`'s lanes hold `x_rest + 2^(N-1) - y_rest` where `*_rest` drops the
/// lane's top bit; that value stays in `[1, 2^N - 1]`, so the full-word
/// subtraction never borrows across lanes and each lane's top bit of `d` is
/// set iff `x_rest >= y_rest`. Lanes where the top bits of `x` and `y`
/// differ are decided by those bits alone (`~x & y`); equal-top-bit lanes
/// defer to the rest compare (`~(x^y) & ~d`).
#[inline]
fn lane_lt<const N: u32>(x: u64, y: u64) -> u64 {
    let h = lane_lsb::<N>() << (N - 1);
    let d = (x | h).wrapping_sub(y & !h);
    ((!x & y) | (!(x ^ y) & !d)) & h
}

/// One chunk's match bitmap for an arbitrary sorted-list / bitmap predicate
/// at width `N` (single and range shapes are routed to the cheaper kernels
/// by [`KernelPredicate::new`] before this is reached).
#[inline]
pub fn chunk_in_set<const N: u32>(chunk: &[u64], set: &VidSet) -> u64 {
    if let VidSet::Sorted(vids) = set {
        if vids.len() <= MAX_LINEAR_SET {
            let mask = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
            if N == 1 {
                // Two possible probes at most; chunk_eq's width-1 special
                // case is already a plain (inverted) word copy.
                let mut bm = 0u64;
                for &vid in vids {
                    if vid <= mask {
                        bm |= chunk_eq::<N>(chunk, vid);
                    }
                }
                return bm;
            }
            if 64 % N == 0 {
                // Fused OR of exact SWAR equality tests, one word pass — no
                // decode. The per-lane masks of all probes are OR-combined
                // *before* the movemask multiply (the expensive step), so a
                // k-probe set costs k XOR/zero-tests but only one compaction
                // per word, instead of k full chunk_eq passes. Probes beyond
                // the width's domain can never match.
                let lsb = lane_lsb::<N>();
                let msb = lsb << (N - 1);
                let mut patterns = [0u64; MAX_LINEAR_SET];
                let mut probes = 0usize;
                for &vid in vids {
                    if vid <= mask {
                        patterns[probes] = vid.wrapping_mul(lsb);
                        probes += 1;
                    }
                }
                let mut bm = 0u64;
                for (wi, &word) in chunk[..N as usize].iter().enumerate() {
                    let mut hits = 0u64;
                    for &pattern in &patterns[..probes] {
                        let x = word ^ pattern;
                        hits |= msb & !(x | ((x | msb).wrapping_sub(lsb)));
                    }
                    bm |= movemask::<N>(hits) << (wi * (64 / N as usize));
                }
                return bm;
            }
            if N >= 15 {
                // Non-dividing wide lanes: OR of zero-byte-screened equality
                // passes, one per probe — each pass is ~N word ops with no
                // decode, far cheaper than the 128-bit-carry generic decode
                // these widths would otherwise pay.
                let mut bm = 0u64;
                for &vid in vids {
                    if vid <= mask {
                        let pat = eq_pattern::<N>(vid);
                        bm |= chunk_eq_screened::<N>(chunk, vid, &pat[..N as usize]);
                    }
                }
                return bm;
            }
            // Decode once, then a branchless linear membership test per
            // slot — beats the per-slot binary search's mispredicts.
            let mut buf = [0u64; CHUNK_LEN];
            decode_const::<N>(chunk, &mut buf);
            let mut bm = 0u64;
            for (i, &v) in buf.iter().enumerate() {
                let mut hit = false;
                for &vid in vids.iter() {
                    hit |= v == vid;
                }
                bm |= u64::from(hit) << i;
            }
            return bm;
        }
    }
    let mut buf = [0u64; CHUNK_LEN];
    decode_const::<N>(chunk, &mut buf);
    match set {
        VidSet::Bitmap(words) => {
            let mut bm = 0u64;
            for (i, &v) in buf.iter().enumerate() {
                let wi = (v / 64) as usize;
                let bit = wi < words.len() && (words[wi] >> (v % 64)) & 1 == 1;
                bm |= u64::from(bit) << i;
            }
            bm
        }
        _ => {
            let mut bm = 0u64;
            for (i, &v) in buf.iter().enumerate() {
                bm |= u64::from(set.contains(v)) << i;
            }
            bm
        }
    }
}

/// Appends one match bitmap per chunk of `words` (equality probe `vid`).
///
/// `words` must be an integral number of `N`-word chunks. This is the
/// page-granular entry point: a caller pins a page once and hands all of its
/// chunks to a single kernel call.
pub fn scan_eq<const N: u32>(words: &[u64], vid: u64, out: &mut Vec<u64>) {
    if 64 % N != 0 && N >= 15 {
        // Screened path: hoist the replicated probe once for the whole slice.
        let pat = eq_pattern::<N>(vid);
        for chunk in words.chunks_exact(N as usize) {
            out.push(chunk_eq_screened::<N>(chunk, vid, &pat[..N as usize]));
        }
        return;
    }
    for chunk in words.chunks_exact(N as usize) {
        out.push(chunk_eq::<N>(chunk, vid));
    }
}

/// `vid` packed at every one of the 64 lanes of one `N`-word chunk (only the
/// first `N` words of the returned buffer are meaningful).
#[inline]
fn eq_pattern<const N: u32>(vid: u64) -> [u64; 32] {
    let mut pat = [0u64; 32];
    let n = N as usize;
    for slot in 0..CHUNK_LEN {
        let bit = slot * n;
        let wi = bit >> 6;
        let sh = (bit & 63) as u32;
        pat[wi] |= vid << sh;
        if sh + N > 64 {
            pat[wi + 1] |= vid >> (64 - sh);
        }
    }
    pat
}

/// Equality for non-dividing widths `N >= 15` without decoding: XOR the
/// chunk against the replicated probe (`pat`), so a matching lane is a run
/// of `N` zero bits in the diff stream. Any zero run of length >= 15 must
/// fully contain an *aligned* zero byte (the first byte boundary inside the
/// run is at most 7 bits in, leaving >= 8 zero bits after it), so a SWAR
/// zero-byte test per diff word screens out non-matching words; only the
/// rare lane that fully contains a zero byte is extracted and verified.
///
/// The screen is conservative — the borrow in the zero-byte trick can flag a
/// nonzero byte, but only when a lower byte of the same word is itself zero,
/// so no matching lane is ever missed; false positives just fail the exact
/// compare.
#[inline]
fn chunk_eq_screened<const N: u32>(chunk: &[u64], vid: u64, pat: &[u64]) -> u64 {
    debug_assert!(N >= 15 && 64 % N != 0);
    let mask = (1u64 << N) - 1;
    let mut bm = 0u64;
    for (wi, (&cw, &pw)) in chunk.iter().zip(pat).enumerate() {
        let d = cw ^ pw;
        let mut zb = d.wrapping_sub(0x0101_0101_0101_0101) & !d & 0x8080_8080_8080_8080;
        while zb != 0 {
            // High bit of a (probable) zero byte -> the byte's base bit.
            let byte_bit = 64 * wi as u64 + u64::from(zb.trailing_zeros() & !7);
            zb &= zb - 1;
            // At most one lane fully contains the byte: the one whose start
            // is at or below the byte and whose end covers it.
            let k = byte_bit / u64::from(N);
            if k < 64 && byte_bit + 8 <= (k + 1) * u64::from(N) {
                let bit = k * u64::from(N);
                let lane_wi = (bit >> 6) as usize;
                let sh = (bit & 63) as u32;
                let mut v = chunk[lane_wi] >> sh;
                if sh + N > 64 {
                    v |= chunk[lane_wi + 1] << (64 - sh);
                }
                bm |= u64::from(v & mask == vid) << k;
            }
        }
    }
    bm
}

/// Appends one match bitmap per chunk of `words` (range probe `lo..=hi`).
pub fn scan_range<const N: u32>(words: &[u64], lo: u64, hi: u64, out: &mut Vec<u64>) {
    for chunk in words.chunks_exact(N as usize) {
        out.push(chunk_range::<N>(chunk, lo, hi));
    }
}

/// Appends one match bitmap per chunk of `words` (membership in `set`).
pub fn scan_in_set<const N: u32>(words: &[u64], set: &VidSet, out: &mut Vec<u64>) {
    if 64 % N != 0 && N >= 15 {
        if let VidSet::Sorted(vids) = set {
            if vids.len() <= MAX_LINEAR_SET {
                // Screened multi-probe path with the replicated probe
                // patterns hoisted once for the whole page slice.
                let mask = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
                let pats: Vec<(u64, [u64; 32])> = vids
                    .iter()
                    .filter(|&&vid| vid <= mask)
                    .map(|&vid| (vid, eq_pattern::<N>(vid)))
                    .collect();
                for chunk in words.chunks_exact(N as usize) {
                    let mut bm = 0u64;
                    for (vid, pat) in &pats {
                        bm |= chunk_eq_screened::<N>(chunk, *vid, &pat[..N as usize]);
                    }
                    out.push(bm);
                }
                return;
            }
        }
    }
    for chunk in words.chunks_exact(N as usize) {
        out.push(chunk_in_set::<N>(chunk, set));
    }
}

/// The low bit of every `N`-bit lane (`N` divides 64), as a compile-time
/// constant.
#[inline]
fn lane_lsb<const N: u32>() -> u64 {
    let mut p = 1u64;
    let mut width = N;
    while width < 64 {
        p |= p << width;
        width *= 2;
    }
    p
}

/// Collapses a per-lane mask (bit at each matching lane's *top* bit) into a
/// dense `64 / N`-bit result, lane `i` → bit `i`. For byte-aligned lanes one
/// multiply gathers every lane bit at once; other aligned widths use a
/// fully-unrolled constant-shift loop.
#[inline]
fn movemask<const N: u32>(lane_msb_hits: u64) -> u64 {
    // Move each lane's hit bit down to the lane's base position first.
    let low = lane_msb_hits >> (N - 1);
    match N {
        1 => low,
        32 => (low & 1) | ((low >> 31) & 2),
        // Bits at 8i gather to 56+i via 0x0102_0408_1020_4080 (the classic
        // byte-movemask multiply; cross terms never land in the top byte).
        8 => low.wrapping_mul(0x0102_0408_1020_4080) >> 56,
        // Bits at 16i gather to 48+i: constants 2^(48-15i).
        16 => low.wrapping_mul(0x0001_0002_0004_0008) >> 48,
        _ => {
            let per_word = 64 / N as usize;
            let mut bm = 0u64;
            for lane in 0..per_word {
                bm |= ((low >> (lane * N as usize)) & 1) << lane;
            }
            bm
        }
    }
}

/// Decodes one `N`-word chunk into 64 slots with compile-time shift
/// geometry. With `N` const the loop fully unrolls: every word index and
/// shift amount is a literal, and the straddle test disappears where it
/// cannot apply.
#[inline]
pub fn decode_const<const N: u32>(chunk: &[u64], out: &mut [u64; CHUNK_LEN]) {
    let n = N as usize;
    let mask = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
    let words = &chunk[..n];
    for (slot, o) in out.iter_mut().enumerate() {
        let bit = slot * n;
        let wi = bit >> 6;
        let sh = (bit & 63) as u32;
        let mut v = words[wi] >> sh;
        if sh + N > 64 {
            v |= words[wi + 1] << (64 - sh);
        }
        *o = v & mask;
    }
}

/// The kernel entry points compiled for one bit width: slice-granular
/// (`eq`/`range`/`in_set` take a multi-chunk word slice and append one match
/// bitmap per chunk — the fused per-page call) and chunk-granular
/// (`chunk_*`, for isolated boundary chunks and point repositioning).
#[derive(Clone, Copy)]
pub struct WidthKernels {
    /// Equality kernel: `(words, vid, out_bitmaps)`.
    pub eq: fn(&[u64], u64, &mut Vec<u64>),
    /// Inclusive-range kernel: `(words, lo, hi, out_bitmaps)`.
    pub range: fn(&[u64], u64, u64, &mut Vec<u64>),
    /// Set-membership kernel: `(words, set, out_bitmaps)`.
    pub in_set: fn(&[u64], &VidSet, &mut Vec<u64>),
    /// Single-chunk equality kernel: `(chunk, vid) -> bitmap`.
    pub chunk_eq: fn(&[u64], u64) -> u64,
    /// Single-chunk range kernel: `(chunk, lo, hi) -> bitmap`.
    pub chunk_range: fn(&[u64], u64, u64) -> u64,
    /// Single-chunk membership kernel: `(chunk, set) -> bitmap`.
    pub chunk_in_set: fn(&[u64], &VidSet) -> u64,
}

macro_rules! width_kernel_table {
    ($($n:literal)*) => {
        [$(WidthKernels {
            eq: scan_eq::<$n>,
            range: scan_range::<$n>,
            in_set: scan_in_set::<$n>,
            chunk_eq: chunk_eq::<$n>,
            chunk_range: chunk_range::<$n>,
            chunk_in_set: chunk_in_set::<$n>,
        }),*]
    };
}

/// Kernels for widths 1..=32, indexed by `bits - 1`.
static KERNELS: [WidthKernels; 32] = width_kernel_table!(
    1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
    17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
);

impl WidthKernels {
    /// The specialized kernel set for `w`, or `None` for widths 0 and
    /// 33..=64 (callers fall back to the generic chunk kernels).
    pub fn for_width(w: BitWidth) -> Option<&'static WidthKernels> {
        let bits = w.bits();
        if (1..=32).contains(&bits) {
            Some(&KERNELS[(bits - 1) as usize])
        } else {
            None
        }
    }
}

/// The operation a [`KernelPredicate`] routes to.
enum Op<'a> {
    /// Nothing matches (empty set, or the probe exceeds the width).
    Never,
    /// Everything matches (width-0 vector whose single value is in the set,
    /// or a range covering the whole domain).
    Always,
    Eq(u64),
    Range(u64, u64),
    In(&'a VidSet),
}

/// A scan predicate compiled against a bit width: picks the specialized
/// kernel for widths 1..=32 and the generic [`CompiledPredicate`] otherwise,
/// normalizing degenerate shapes (out-of-domain probes, full-domain ranges)
/// up front so the per-chunk path never re-checks them.
pub struct KernelPredicate<'a> {
    width: BitWidth,
    op: Op<'a>,
    kernels: Option<&'static WidthKernels>,
    fallback: Option<CompiledPredicate<'a>>,
}

impl<'a> KernelPredicate<'a> {
    /// Compiles `set` for scans at `width`.
    pub fn new(width: BitWidth, set: &'a VidSet) -> Self {
        let max = width.max_value();
        let op = if set.is_empty() {
            Op::Never
        } else if width.bits() == 0 {
            if set.contains(0) {
                Op::Always
            } else {
                Op::Never
            }
        } else {
            match set {
                VidSet::Single(v) if *v > max => Op::Never,
                VidSet::Single(v) => Op::Eq(*v),
                VidSet::Range { lo, .. } if *lo > max => Op::Never,
                VidSet::Range { lo, hi } if *lo == 0 && *hi >= max => Op::Always,
                VidSet::Range { lo, hi } => Op::Range(*lo, (*hi).min(max)),
                other => Op::In(other),
            }
        };
        let kernels = WidthKernels::for_width(width);
        let fallback = match (&op, kernels) {
            (Op::Eq(_) | Op::Range(..) | Op::In(_), None) => {
                Some(CompiledPredicate::new(width, set))
            }
            _ => None,
        };
        KernelPredicate { width, op, kernels, fallback }
    }

    /// The compiled width.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// True when no slot can ever match.
    pub fn never_matches(&self) -> bool {
        matches!(self.op, Op::Never)
    }

    /// True when every slot trivially matches.
    pub fn always_matches(&self) -> bool {
        matches!(self.op, Op::Always)
    }

    /// Appends one match bitmap per chunk of `words` (an integral number of
    /// chunks at the compiled width) — the single fused call a caller makes
    /// per pinned page.
    pub fn scan_chunks(&self, words: &[u64], out: &mut Vec<u64>) {
        let n = self.width.bits() as usize;
        debug_assert!(n > 0 && words.len().is_multiple_of(n), "whole chunks required");
        let chunks = words.len().checked_div(n).unwrap_or(0);
        match (&self.op, self.kernels) {
            (Op::Never, _) => out.extend(std::iter::repeat_n(0u64, chunks)),
            (Op::Always, _) => out.extend(std::iter::repeat_n(u64::MAX, chunks)),
            (Op::Eq(v), Some(k)) => (k.eq)(words, *v, out),
            (Op::Range(lo, hi), Some(k)) => (k.range)(words, *lo, *hi, out),
            (Op::In(set), Some(k)) => (k.in_set)(words, set, out),
            // Widths 33..=64: generic per-chunk kernel.
            (_, None) => match &self.fallback {
                Some(pred) => {
                    for chunk in words.chunks_exact(n) {
                        out.push(pred.chunk_bitmap(chunk));
                    }
                }
                None => unreachable!("fallback compiled for non-trivial ops"),
            },
        }
    }

    /// One chunk's match bitmap (used for isolated boundary chunks).
    #[inline]
    pub fn chunk_bitmap(&self, chunk: &[u64]) -> u64 {
        match (&self.op, self.kernels) {
            (Op::Never, _) => 0,
            (Op::Always, _) => u64::MAX,
            (Op::Eq(v), Some(k)) => (k.chunk_eq)(chunk, *v),
            (Op::Range(lo, hi), Some(k)) => (k.chunk_range)(chunk, *lo, *hi),
            (Op::In(set), Some(k)) => (k.chunk_in_set)(chunk, set),
            (_, None) => match &self.fallback {
                Some(pred) => pred.chunk_bitmap(chunk),
                None => unreachable!("fallback compiled for non-trivial ops"),
            },
        }
    }
}

/// The unspecialized reference kernel: runtime-width decode of the whole
/// chunk followed by a branchless membership test. This is the "one generic
/// kernel" baseline the specialized dispatch is measured against (and the
/// middle term of the specialized ≡ generic ≡ naive equivalence tests).
pub fn chunk_bitmap_generic(chunk_words: &[u64], w: BitWidth, set: &VidSet) -> u64 {
    if w.bits() == 0 {
        return if set.contains(0) { u64::MAX } else { 0 };
    }
    let mut buf = [0u64; CHUNK_LEN];
    decode_chunk(chunk_words, w, &mut buf);
    let mut bm = 0u64;
    match set {
        VidSet::Single(v) => {
            for (i, &x) in buf.iter().enumerate() {
                bm |= u64::from(x == *v) << i;
            }
        }
        VidSet::Range { lo, hi } => {
            for (i, &x) in buf.iter().enumerate() {
                bm |= u64::from(x >= *lo && x <= *hi) << i;
            }
        }
        other => {
            for (i, &x) in buf.iter().enumerate() {
                bm |= u64::from(other.contains(x)) << i;
            }
        }
    }
    bm
}

/// Number of matches in `vec[from..to]` without materializing positions (or
/// even per-chunk bitmaps): each chunk's bitmap is popcounted on the fly.
/// This is the COUNT(*) kernel — output cost is one add per 64 rows.
pub fn count_matches(vec: &BitPackedVec, from: u64, to: u64, set: &VidSet) -> u64 {
    assert!(from <= to && to <= vec.len(), "count range {from}..{to} out of bounds");
    if from == to {
        return 0;
    }
    let pred = KernelPredicate::new(vec.width(), set);
    if pred.never_matches() {
        return 0;
    }
    if pred.always_matches() {
        return to - from;
    }
    let first = from / CHUNK_LEN as u64;
    let last = (to - 1) / CHUNK_LEN as u64;
    let mut n = 0u64;
    for ci in first..=last {
        let mut bm = pred.chunk_bitmap(vec.chunk_words(ci));
        bm &= boundary_mask(ci, from, to);
        n += u64::from(bm.count_ones());
    }
    n
}

/// The mask of slots of chunk `ci` that fall inside `from..to`.
#[inline]
pub fn boundary_mask(ci: u64, from: u64, to: u64) -> u64 {
    let base = ci * CHUNK_LEN as u64;
    let mut mask = u64::MAX;
    if base < from {
        let skip = from - base;
        mask = if skip >= 64 { 0 } else { mask << skip };
    }
    if base + 64 > to {
        mask = if to <= base { 0 } else { mask & (u64::MAX >> (base + 64 - to)) };
    }
    mask
}

/// Number of set bits in `bitmaps[..]` strictly before bit position `pos`
/// (positions count from bit 0 of the first word).
pub fn bitmap_rank(bitmaps: &[u64], pos: u64) -> u64 {
    let wi = (pos / 64) as usize;
    let mut n = 0u64;
    for &w in bitmaps.iter().take(wi.min(bitmaps.len())) {
        n += u64::from(w.count_ones());
    }
    if wi < bitmaps.len() && !pos.is_multiple_of(64) {
        n += u64::from((bitmaps[wi] & ((1u64 << (pos % 64)) - 1)).count_ones());
    }
    n
}

/// Position of the `k`-th (0-based) set bit across `bitmaps`, or `None` when
/// fewer than `k + 1` bits are set. The inverse of [`bitmap_rank`]; together
/// they let a caller materialize an arbitrary sub-range of match positions
/// from a stored result bitmap without rescanning.
pub fn bitmap_select(bitmaps: &[u64], k: u64) -> Option<u64> {
    let mut remaining = k;
    for (wi, &w) in bitmaps.iter().enumerate() {
        let ones = u64::from(w.count_ones());
        if remaining < ones {
            return Some(wi as u64 * 64 + select_in_word(w, remaining as u32));
        }
        remaining -= ones;
    }
    None
}

/// Bit index of the `k`-th (0-based) set bit of `w`; `k < w.count_ones()`.
#[inline]
fn select_in_word(mut w: u64, k: u32) -> u64 {
    for _ in 0..k {
        w &= w - 1;
    }
    w.trailing_zeros() as u64
}

/// Late materialization: appends the positions of every set bit of
/// `bitmaps` (bit `i` of word `wi` → `base + wi * 64 + i`) to `out`, with a
/// fast path for saturated words (dense matches extend a whole run at once).
pub fn materialize_positions(bitmaps: &[u64], base: u64, out: &mut Vec<u64>) {
    for (wi, &w) in bitmaps.iter().enumerate() {
        let start = base + wi as u64 * 64;
        if w == u64::MAX {
            out.extend(start..start + 64);
            continue;
        }
        let mut w = w;
        while w != 0 {
            out.push(start + w.trailing_zeros() as u64);
            w &= w - 1;
        }
    }
}

/// Total set bits across `bitmaps`.
pub fn bitmap_count(bitmaps: &[u64]) -> u64 {
    bitmaps.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::encode_chunk;

    fn chunk_for(values: &[u64; CHUNK_LEN], bits: u32) -> (BitWidth, Vec<u64>) {
        let w = BitWidth::new(bits).unwrap();
        let mut words = vec![0u64; bits as usize];
        encode_chunk(values, w, &mut words);
        (w, words)
    }

    fn pseudo_values(bits: u32, seed: u64) -> [u64; CHUNK_LEN] {
        let mask = BitWidth::new(bits).unwrap().mask();
        let mut values = [0u64; CHUNK_LEN];
        for (i, v) in values.iter_mut().enumerate() {
            *v = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .rotate_left(i as u32)
                & mask;
        }
        values
    }

    fn naive_bitmap(values: &[u64; CHUNK_LEN], pred: impl Fn(u64) -> bool) -> u64 {
        let mut bm = 0u64;
        for (i, &v) in values.iter().enumerate() {
            bm |= u64::from(pred(v)) << i;
        }
        bm
    }

    #[test]
    fn specialized_eq_matches_naive_all_widths() {
        for bits in 1..=32u32 {
            let values = pseudo_values(bits, u64::from(bits) * 7 + 1);
            let (w, words) = chunk_for(&values, bits);
            let k = WidthKernels::for_width(w).unwrap();
            for vid in [values[0], values[63], 0, w.max_value()] {
                let mut out = Vec::new();
                (k.eq)(&words, vid, &mut out);
                assert_eq!(out.len(), 1);
                assert_eq!(out[0], naive_bitmap(&values, |v| v == vid), "bits={bits} vid={vid}");
            }
        }
    }

    #[test]
    fn specialized_range_and_set_match_naive() {
        for bits in 1..=32u32 {
            let values = pseudo_values(bits, u64::from(bits) + 100);
            let (w, words) = chunk_for(&values, bits);
            let k = WidthKernels::for_width(w).unwrap();
            let max = w.max_value();
            let (lo, hi) = (max / 4, max / 2 + 1);
            let mut out = Vec::new();
            (k.range)(&words, lo, hi, &mut out);
            assert_eq!(out[0], naive_bitmap(&values, |v| v >= lo && v <= hi), "bits={bits}");
            let set = VidSet::from_vids(values[..7].to_vec());
            out.clear();
            (k.in_set)(&words, &set, &mut out);
            assert_eq!(out[0], naive_bitmap(&values, |v| set.contains(v)), "bits={bits}");
        }
    }

    #[test]
    fn swar_range_matches_naive_at_edge_bounds() {
        // The SWAR less-than path (dividing widths) against every boundary
        // shape: full domain, degenerate point ranges at 0 and max, and
        // bounds adjacent to the lane extremes.
        for bits in [1u32, 2, 4, 8, 16, 32] {
            let values = pseudo_values(bits, u64::from(bits) * 31 + 3);
            let (w, words) = chunk_for(&values, bits);
            let k = WidthKernels::for_width(w).unwrap();
            let max = w.max_value();
            let mut bounds = vec![(0, max), (0, 0), (max, max), (max / 2, max / 2)];
            if max > 0 {
                bounds.push((0, max - 1));
                bounds.push((1, max));
                bounds.push((max / 3, 2 * (max / 3) + 1));
            }
            for (lo, hi) in bounds {
                let got = (k.chunk_range)(&words, lo, hi);
                let want = naive_bitmap(&values, |v| v >= lo && v <= hi);
                assert_eq!(got, want, "bits={bits} lo={lo} hi={hi}");
            }
        }
    }

    #[test]
    fn small_sorted_set_kernels_match_naive_all_widths() {
        // Both linear-membership paths (SWAR OR-of-eq at aligned widths
        // <= 16, decode + branchless compare elsewhere), including probes
        // beyond the width's domain, which must never match.
        for bits in 1..=32u32 {
            let values = pseudo_values(bits, u64::from(bits) * 13 + 5);
            let (w, words) = chunk_for(&values, bits);
            let k = WidthKernels::for_width(w).unwrap();
            let mut vids: Vec<u64> = values.iter().take(6).copied().collect();
            vids.push(w.max_value().saturating_add(7));
            vids.sort_unstable();
            vids.dedup();
            let set = VidSet::Sorted(vids.clone());
            let got = (k.chunk_in_set)(&words, &set);
            let want = naive_bitmap(&values, |v| vids.binary_search(&v).is_ok());
            assert_eq!(got, want, "bits={bits}");
        }
    }

    #[test]
    fn generic_reference_matches_naive_all_widths() {
        for bits in [0u32, 1, 3, 8, 13, 17, 32, 33, 47, 64] {
            let values = if bits == 0 { [0u64; CHUNK_LEN] } else { pseudo_values(bits, 5) };
            let (w, words) = chunk_for(&values, bits);
            for set in [
                VidSet::Single(values[10]),
                VidSet::range(0, w.max_value() / 2),
                VidSet::from_vids(values[..5].to_vec()),
            ] {
                let bm = chunk_bitmap_generic(&words, w, &set);
                assert_eq!(bm, naive_bitmap(&values, |v| set.contains(v)), "bits={bits} {set:?}");
            }
        }
    }

    #[test]
    fn kernel_predicate_normalizes_degenerate_shapes() {
        let w = BitWidth::new(6).unwrap();
        // Probe above the width's domain: never matches.
        let over = VidSet::Single(1 << 10);
        assert!(KernelPredicate::new(w, &over).never_matches());
        // Full-domain range: always matches.
        let full = VidSet::range(0, u64::MAX);
        assert!(KernelPredicate::new(w, &full).always_matches());
        // Width 0 with 0 in the set: always; without: never.
        let zero = VidSet::Single(0);
        assert!(KernelPredicate::new(BitWidth::ZERO, &zero).always_matches());
        let one = VidSet::Single(1);
        assert!(KernelPredicate::new(BitWidth::ZERO, &one).never_matches());
    }

    #[test]
    fn scan_chunks_covers_multiple_chunks() {
        let bits = 9u32;
        let w = BitWidth::new(bits).unwrap();
        let a = pseudo_values(bits, 1);
        let b = pseudo_values(bits, 2);
        let mut words = vec![0u64; 2 * bits as usize];
        encode_chunk(&a, w, &mut words[..bits as usize]);
        encode_chunk(&b, w, &mut words[bits as usize..]);
        let set = VidSet::range(10, 300);
        let pred = KernelPredicate::new(w, &set);
        let mut out = Vec::new();
        pred.scan_chunks(&words, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], naive_bitmap(&a, |v| set.contains(v)));
        assert_eq!(out[1], naive_bitmap(&b, |v| set.contains(v)));
        assert_eq!(pred.chunk_bitmap(&words[..bits as usize]), out[0]);
    }

    #[test]
    fn rank_select_materialize_roundtrip() {
        let bitmaps = vec![0b1011u64, 0, u64::MAX, 1 << 63];
        let mut positions = Vec::new();
        materialize_positions(&bitmaps, 1000, &mut positions);
        assert_eq!(positions.len() as u64, bitmap_count(&bitmaps));
        for (k, &pos) in positions.iter().enumerate() {
            assert_eq!(bitmap_select(&bitmaps, k as u64), Some(pos - 1000));
            assert_eq!(bitmap_rank(&bitmaps, pos - 1000), k as u64);
        }
        assert_eq!(bitmap_select(&bitmaps, positions.len() as u64), None);
        assert_eq!(bitmap_rank(&bitmaps, 256), bitmap_count(&bitmaps));
    }

    #[test]
    fn count_matches_never_materializes_but_agrees() {
        let values: Vec<u64> = (0..1000u64).map(|i| i % 97).collect();
        let vec = BitPackedVec::from_values(&values);
        for set in [VidSet::Single(13), VidSet::range(10, 40), VidSet::from_vids(vec![0, 96])] {
            for (from, to) in [(0u64, 1000u64), (63, 65), (1, 999), (130, 130)] {
                let expect =
                    (from..to).filter(|&i| set.contains(values[i as usize])).count() as u64;
                assert_eq!(count_matches(&vec, from, to, &set), expect, "{set:?} {from}..{to}");
            }
        }
    }

    #[test]
    fn boundary_mask_trims() {
        assert_eq!(boundary_mask(0, 0, 64), u64::MAX);
        assert_eq!(boundary_mask(0, 3, 64), u64::MAX << 3);
        assert_eq!(boundary_mask(1, 0, 70), (1u64 << 6) - 1);
        assert_eq!(boundary_mask(2, 0, 70), 0);
        assert_eq!(boundary_mask(0, 70, 200), 0);
    }
}
