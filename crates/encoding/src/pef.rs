//! Partitioned Elias-Fano encoding for posting lists.
//!
//! A posting sequence is split into partitions of up to [`PARTITION_LEN`]
//! (= 64, the chunk granularity every paged vector already uses) strictly
//! non-decreasing values. Each partition is encoded independently:
//!
//! ```text
//! partition := base:varint  universe:varint  low[⌈n·l/8⌉]  high[⌈(n+(u≫l))/8⌉]
//! ```
//!
//! `base` is the first value, `universe = last − base`, and `l` — the
//! number of low bits stored verbatim per value — is derived
//! deterministically from `(universe, n)`, so the layout is self-framing
//! given the value count `n` (which callers know from their directories).
//! The high halves are the classic Elias-Fano unary bucket array: bit
//! `((vᵢ − base) ≫ l) + i` is set for each value `i`.
//!
//! Two access paths never fully decode a partition:
//!
//! * [`PartitionRef::next_geq`] first compares the target against the
//!   header bounds (two varints — a whole partition is skipped for the
//!   price of a dozen byte reads), then finds the target's high bucket by
//!   counting zero bits bytewise and scans at most one bucket's values.
//! * [`intersect`] leapfrogs two lists through `next_geq`, touching only
//!   the partitions that can contain common values.
//!
//! The **only** sanctioned full decode is [`decode_partition`] /
//! [`PartitionRef::read_into`]; `cargo xtask analyze` forbids calling
//! `decode_partition` outside this module so posting readers keep going
//! through the partition-aware accessors.

use crate::unaligned::le_u64_padded;
use crate::{EncodingError, Result};

/// Maximum number of values per partition (the 64-value chunk granularity).
pub const PARTITION_LEN: usize = 64;

/// Largest number of stored low bits per value. Capped so one padded word
/// load always covers a low-bit field (`l + 7 ≤ 64`).
const MAX_LOW_BITS: u32 = 57;

fn corrupt(reason: &str) -> EncodingError {
    EncodingError::CorruptBlock { reason: format!("pef: {reason}") }
}

/// Appends `v` LEB128-encoded to `out`.
fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint from `bytes[pos..]`, returning `(value, next_pos)`.
fn get_varint(bytes: &[u8], mut pos: usize) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(pos).ok_or_else(|| corrupt("truncated varint"))?;
        pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(corrupt("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            return Ok((v, pos));
        }
        shift += 7;
    }
}

/// The number of low bits per value for a partition of `n` values spanning
/// `universe`: `⌊log₂(universe / n)⌋`, clamped to `0..=57`.
#[inline]
fn low_bits(universe: u64, n: usize) -> u32 {
    if universe == 0 || n == 0 {
        return 0;
    }
    let per = universe / n as u64;
    if per == 0 {
        0
    } else {
        (63 - per.leading_zeros()).min(MAX_LOW_BITS)
    }
}

/// The `l`-bit field at bit offset `bit` of `low` (little-endian bit order).
#[inline]
fn low_field(low: &[u8], bit: usize, l: u32) -> u64 {
    if l == 0 {
        return 0;
    }
    let word = le_u64_padded(low, bit / 8);
    (word >> (bit % 8)) & ((1u64 << l) - 1)
}

/// Encoded byte length of the low/high arrays for `(universe, n)`.
#[inline]
fn body_len(universe: u64, n: usize) -> (usize, usize, u32) {
    let l = low_bits(universe, n);
    let low_bytes = (n * l as usize).div_ceil(8);
    let high_bits = n as u64 + (universe >> l);
    let high_bytes = (high_bits as usize).div_ceil(8);
    (low_bytes, high_bytes, l)
}

/// Appends the encoding of one partition (`1..=64` non-decreasing values)
/// to `out` and returns the number of bytes written.
pub fn encode_partition(values: &[u64], out: &mut Vec<u8>) -> usize {
    assert!(
        !values.is_empty() && values.len() <= PARTITION_LEN,
        "partition must hold 1..=64 values"
    );
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "values must be sorted");
    let start = out.len();
    let base = values[0];
    let universe = values[values.len() - 1] - base;
    put_varint(base, out);
    put_varint(universe, out);
    let (low_bytes, high_bytes, l) = body_len(universe, values.len());
    let low_start = out.len();
    out.resize(low_start + low_bytes + high_bytes, 0);
    let (low, high) = out[low_start..].split_at_mut(low_bytes);
    for (i, &v) in values.iter().enumerate() {
        let rel = v - base;
        if l > 0 {
            let field = rel & ((1u64 << l) - 1);
            let bit = i * l as usize;
            // Byte-by-byte OR: fields are ≤ 57 bits so span ≤ 8 bytes.
            let mut word = field << (bit % 8);
            let mut byte = bit / 8;
            while word != 0 {
                low[byte] |= word as u8;
                word >>= 8;
                byte += 1;
            }
        }
        let pos = ((rel >> l) + i as u64) as usize;
        high[pos / 8] |= 1 << (pos % 8);
    }
    out.len() - start
}

/// Fully decodes one partition of `n` values starting at `bytes[pos..]`
/// into `out[..n]`, returning the offset one past the partition.
///
/// This is the raw bulk decode — posting readers outside `payg_encoding`
/// must use [`PartitionRef`] instead (enforced by `cargo xtask analyze`).
pub fn decode_partition(bytes: &[u8], pos: usize, n: usize, out: &mut [u64]) -> Result<usize> {
    let part = PartitionRef::parse(bytes, pos, n)?;
    part.read_into(out)?;
    Ok(part.end)
}

/// A parsed view of one encoded partition: header fields decoded, low/high
/// arrays still compressed.
pub struct PartitionRef<'a> {
    /// First value of the partition.
    pub base: u64,
    /// `last − base`.
    pub universe: u64,
    n: usize,
    l: u32,
    low: &'a [u8],
    high: &'a [u8],
    /// Offset one past this partition in the underlying buffer.
    pub end: usize,
}

impl<'a> PartitionRef<'a> {
    /// Parses the partition of `n` values starting at `bytes[pos..]`.
    pub fn parse(bytes: &'a [u8], pos: usize, n: usize) -> Result<Self> {
        if n == 0 || n > PARTITION_LEN {
            return Err(corrupt("partition count outside 1..=64"));
        }
        let (base, pos) = get_varint(bytes, pos)?;
        let (universe, pos) = get_varint(bytes, pos)?;
        if base.checked_add(universe).is_none() {
            return Err(corrupt("partition bounds overflow"));
        }
        let (low_bytes, high_bytes, l) = body_len(universe, n);
        let end = pos + low_bytes + high_bytes;
        if end > bytes.len() {
            return Err(corrupt("partition body truncated"));
        }
        let low = &bytes[pos..pos + low_bytes];
        let high = &bytes[pos + low_bytes..end];
        Ok(PartitionRef { base, universe, n, l, low, high, end })
    }

    /// Number of values in the partition.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: partitions hold at least one value.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The largest value in the partition.
    #[inline]
    pub fn last(&self) -> u64 {
        self.base + self.universe
    }

    /// Decodes every value into `out[..self.len()]`.
    pub fn read_into(&self, out: &mut [u64]) -> Result<()> {
        if out.len() < self.n {
            return Err(corrupt("output buffer too small"));
        }
        let mut i = 0usize; // values emitted (ones seen)
        let mut bucket = 0u64; // zeros seen = current high half
        for (byte_no, &b) in self.high.iter().enumerate() {
            if i == self.n {
                break;
            }
            if b == 0 {
                bucket += 8;
                continue;
            }
            for bit in 0..8 {
                if b & (1 << bit) == 0 {
                    bucket += 1;
                } else {
                    if i == self.n {
                        return Err(corrupt("extra high bits after last value"));
                    }
                    let low = low_field(self.low, i * self.l as usize, self.l);
                    let rel = (bucket << self.l) | low;
                    if rel > self.universe {
                        return Err(corrupt("value exceeds declared universe"));
                    }
                    out[i] = self.base + rel;
                    i += 1;
                }
                if i == self.n && byte_no == self.high.len() - 1 {
                    break;
                }
            }
        }
        if i < self.n {
            return Err(corrupt("fewer high bits than values"));
        }
        Ok(())
    }

    /// Smallest `(slot, value)` with `value >= target`, or `None` when every
    /// value is smaller. Operates on the compressed form: the header bound
    /// check rejects whole partitions, and only the target's high bucket
    /// onward is scanned.
    pub fn next_geq(&self, target: u64) -> Result<Option<(usize, u64)>> {
        if target <= self.base {
            // First value is base itself (rel 0 ⇒ low 0, bucket 0).
            let low = low_field(self.low, 0, self.l);
            debug_assert_eq!(low, 0);
            return Ok(Some((0, self.base)));
        }
        if target > self.last() {
            return Ok(None);
        }
        let t_rel = target - self.base;
        let t_bucket = t_rel >> self.l;
        // Skip whole bytes while every one-bit in them must belong to a
        // bucket strictly below the target's (a one after `k` in-byte zeros
        // has bucket `bucket + k`, so `bucket + zeros(byte) < t_bucket`
        // bounds them all away from the target).
        let mut i = 0usize;
        let mut bucket = 0u64;
        let mut byte_no = 0usize;
        while byte_no < self.high.len()
            && bucket + u64::from(8 - self.high[byte_no].count_ones()) < t_bucket
        {
            bucket += u64::from(8 - self.high[byte_no].count_ones());
            i += self.high[byte_no].count_ones() as usize;
            byte_no += 1;
        }
        // Bit-scan from here: emit values whose bucket ≥ t_bucket.
        while byte_no < self.high.len() {
            let b = self.high[byte_no];
            for bit in 0..8 {
                if b & (1 << bit) == 0 {
                    bucket += 1;
                } else {
                    if i >= self.n {
                        return Err(corrupt("extra high bits after last value"));
                    }
                    if bucket >= t_bucket {
                        let low = low_field(self.low, i * self.l as usize, self.l);
                        let rel = (bucket << self.l) | low;
                        if rel > self.universe {
                            return Err(corrupt("value exceeds declared universe"));
                        }
                        if rel >= t_rel {
                            return Ok(Some((i, self.base + rel)));
                        }
                    }
                    i += 1;
                }
            }
            byte_no += 1;
        }
        // target ≤ last ⇒ the scan must have found a value.
        Err(corrupt("high bits exhausted before reaching declared last value"))
    }
}

/// A whole posting list encoded as consecutive partitions — the in-memory
/// shape used by tests, benches, and table-level intersection. The paged
/// inverted index stores the same partition bytes spread across pages with
/// a bit-packed skip table instead.
pub struct PefList {
    data: Vec<u8>,
    /// Byte offset of each partition in `data`.
    offsets: Vec<u32>,
    len: u64,
}

impl PefList {
    /// Encodes `values` (non-decreasing) into 64-value partitions.
    pub fn encode(values: &[u64]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 2);
        let mut offsets = Vec::with_capacity(values.len().div_ceil(PARTITION_LEN));
        for part in values.chunks(PARTITION_LEN) {
            offsets.push(data.len() as u32);
            encode_partition(part, &mut data);
        }
        PefList { data, offsets, len: values.len() as u64 }
    }

    /// Number of encoded values.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the list holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total encoded bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Number of values in partition `p`.
    fn part_len(&self, p: usize) -> usize {
        let start = p as u64 * PARTITION_LEN as u64;
        (self.len - start).min(PARTITION_LEN as u64) as usize
    }

    /// Parses partition `p`.
    fn part(&self, p: usize) -> Result<PartitionRef<'_>> {
        PartitionRef::parse(&self.data, self.offsets[p] as usize, self.part_len(p))
    }

    /// Decodes the whole list.
    pub fn values(&self) -> Result<Vec<u64>> {
        let mut out = vec![0u64; self.len as usize];
        for p in 0..self.offsets.len() {
            let part = self.part(p)?;
            part.read_into(&mut out[p * PARTITION_LEN..])?;
        }
        Ok(out)
    }

    /// Smallest `(index, value)` with `value >= target` at or after global
    /// index `from`, leapfrogging whole partitions via their header bounds.
    pub fn next_geq(&self, from: u64, target: u64) -> Result<Option<(u64, u64)>> {
        if from >= self.len {
            return Ok(None);
        }
        let first_p = (from as usize) / PARTITION_LEN;
        for p in first_p..self.offsets.len() {
            let part = self.part(p)?;
            if part.last() < target {
                continue; // header-only skip: no value here can match
            }
            let Some((slot, v)) = part.next_geq(target)? else { continue };
            let from_slot = if p == first_p { (from as usize) % PARTITION_LEN } else { 0 };
            if slot >= from_slot {
                return Ok(Some(((p * PARTITION_LEN + slot) as u64, v)));
            }
            // The first match sits before `from`; values are sorted, so the
            // value at `from_slot` itself already satisfies the target.
            let mut buf = [0u64; PARTITION_LEN];
            part.read_into(&mut buf)?;
            return Ok(Some(((p * PARTITION_LEN + from_slot) as u64, buf[from_slot])));
        }
        Ok(None)
    }
}

/// Intersects two encoded lists by leapfrogging [`PefList::next_geq`]:
/// partitions whose bounds cannot overlap are skipped without decoding.
pub fn intersect(a: &PefList, b: &PefList) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return Ok(out);
    }
    let (mut ia, mut ib) = (0u64, 0u64);
    let mut target = 0u64;
    while let Some((na, va)) = a.next_geq(ia, target)? {
        let Some((nb, vb)) = b.next_geq(ib, va)? else { break };
        if va == vb {
            out.push(va);
            ia = na + 1;
            ib = nb + 1;
            let Some(next) = va.checked_add(1) else { break };
            target = next;
        } else {
            // vb > va: chase vb from a's side next round.
            ia = na + 1;
            ib = nb;
            target = vb;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, seed: u64) -> Vec<u64> {
        // Runs of consecutive positions separated by jumps — the shape of
        // postings for values clustered by insertion order.
        let mut v = Vec::with_capacity(n);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1000;
        while v.len() < n {
            let run = 1 + (x % 17) as usize;
            for i in 0..run.min(n - v.len()) {
                v.push(x + i as u64);
            }
            x = x.wrapping_add(run as u64 + x % 113 + 1);
        }
        v
    }

    #[test]
    fn roundtrip_various_shapes() {
        let shapes: Vec<Vec<u64>> = vec![
            vec![0],
            vec![5],
            vec![u64::MAX],
            vec![0, u64::MAX],
            (0..64u64).collect(),
            (0..64u64).map(|i| i * 1_000_003).collect(),
            vec![7; 64], // duplicates
            clustered(64, 9),
            clustered(17, 3), // partial partition
        ];
        for values in shapes {
            let mut buf = Vec::new();
            let written = encode_partition(&values, &mut buf);
            assert_eq!(written, buf.len());
            let mut out = vec![0u64; values.len()];
            let end = decode_partition(&buf, 0, values.len(), &mut out).unwrap();
            assert_eq!(end, buf.len());
            assert_eq!(out, values, "roundtrip failed for {values:?}");
        }
    }

    #[test]
    fn list_roundtrip_including_partial_trailing_partition() {
        for n in [1usize, 63, 64, 65, 128, 1000, 4097] {
            let values = clustered(n, n as u64);
            let list = PefList::encode(&values);
            assert_eq!(list.len(), n as u64);
            assert_eq!(list.values().unwrap(), values, "n={n}");
        }
    }

    #[test]
    fn clustered_lists_beat_bitpacking() {
        let values = clustered(10_000, 1);
        let list = PefList::encode(&values);
        let max = *values.last().unwrap();
        let packed_bits = crate::BitWidth::for_max_value(max).bits() as usize;
        let packed_bytes = (values.len() * packed_bits).div_ceil(8);
        assert!(
            list.size_bytes() < packed_bytes,
            "pef {} >= bitpacked {packed_bytes}",
            list.size_bytes()
        );
    }

    #[test]
    fn next_geq_matches_naive() {
        let values = clustered(700, 5);
        let list = PefList::encode(&values);
        let max = *values.last().unwrap();
        for target in (0..=max + 2).step_by(7) {
            let naive = values
                .iter()
                .enumerate()
                .find(|&(_, &v)| v >= target)
                .map(|(i, &v)| (i as u64, v));
            assert_eq!(list.next_geq(0, target).unwrap(), naive, "target {target}");
        }
        // `from` constrains the search window.
        let got = list.next_geq(100, 0).unwrap();
        assert_eq!(got, Some((100, values[100])));
        assert_eq!(list.next_geq(values.len() as u64, 0).unwrap(), None);
    }

    #[test]
    fn partition_next_geq_scans_one_bucket() {
        let values: Vec<u64> = (0..64u64).map(|i| 100 + i * 9).collect();
        let mut buf = Vec::new();
        encode_partition(&values, &mut buf);
        let part = PartitionRef::parse(&buf, 0, 64).unwrap();
        for target in [0, 100, 101, 109, 350, 100 + 63 * 9] {
            let naive = values.iter().enumerate().find(|&(_, &v)| v >= target);
            let got = part.next_geq(target).unwrap();
            assert_eq!(got, naive.map(|(i, &v)| (i, v)), "target {target}");
        }
        assert_eq!(part.next_geq(100 + 63 * 9 + 1).unwrap(), None);
    }

    #[test]
    fn intersect_matches_naive() {
        for (na, nb, sa, sb) in [(500, 700, 1, 2), (64, 64, 3, 3), (1, 1000, 4, 5), (0, 10, 6, 7)]
        {
            let a = clustered(na, sa);
            let b = clustered(nb, sb);
            let la = PefList::encode(&a);
            let lb = PefList::encode(&b);
            let mut naive: Vec<u64> =
                a.iter().filter(|v| b.binary_search(v).is_ok()).copied().collect();
            naive.dedup();
            let mut got = intersect(&la, &lb).unwrap();
            got.dedup();
            assert_eq!(got, naive, "na={na} nb={nb}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(PartitionRef::parse(&[], 0, 1).is_err()); // truncated varint
        assert!(PartitionRef::parse(&[0x80], 0, 1).is_err());
        assert!(PartitionRef::parse(&[0, 0], 0, 0).is_err()); // n = 0
        assert!(PartitionRef::parse(&[0, 0], 0, 65).is_err()); // n > 64
        // Body shorter than the derived low/high length.
        let mut buf = Vec::new();
        encode_partition(&(0..64u64).map(|i| i * 100).collect::<Vec<_>>(), &mut buf);
        assert!(PartitionRef::parse(&buf[..buf.len() - 1], 0, 64).is_err());
        // base + universe overflowing u64.
        let mut overflow = Vec::new();
        put_varint(u64::MAX, &mut overflow);
        put_varint(1, &mut overflow);
        assert!(PartitionRef::parse(&overflow, 0, 2).is_err());
    }

    #[test]
    fn corrupted_high_bits_surface_errors_not_panics() {
        let values: Vec<u64> = (0..64u64).map(|i| i * 3).collect();
        let mut buf = Vec::new();
        encode_partition(&values, &mut buf);
        let mut out = [0u64; 64];
        // Flip every byte in turn; decode must either error or produce
        // values (never panic / read out of bounds).
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xA5;
            let _ = decode_partition(&bad, 0, 64, &mut out);
            if let Ok(part) = PartitionRef::parse(&bad, 0, 64) {
                let _ = part.next_geq(values[30]);
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(v, &mut buf);
            assert_eq!(get_varint(&buf, 0).unwrap(), (v, buf.len()));
        }
        assert!(get_varint(&[0xFF; 11], 0).is_err());
    }
}
