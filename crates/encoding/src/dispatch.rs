//! The chain-codec / scan-dispatch seam.
//!
//! Every persisted chain now carries a [`ChainCodec`] descriptor (format-2
//! chain metadata in `payg-storage`; legacy format-0/1 chains read as
//! [`CodecKind::Plain`]). Readers consult [`choose`] once per probe to pick
//! between running the predicate **in the compressed domain** (compare
//! FSST-compressed bytes, leapfrog Elias-Fano partitions) and the classic
//! **decode-then-scan** path. Centralizing the decision here gives future
//! synopsis-aware and `std::simd` kernels one place to hang their own
//! strategies instead of scattering per-call-site `if` chains.

use crate::{EncodingError, Result};

/// How a chain's payload bytes are encoded beyond the base page layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// Bit-packed chunks / front-coded blocks with no extra codec.
    Plain = 0,
    /// FSST symbol-table compression inside front-coded value blocks.
    Fsst = 1,
    /// Partitioned Elias-Fano posting partitions.
    Pef = 2,
}

impl CodecKind {
    /// The wire label used for per-codec metrics.
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::Plain => "plain",
            CodecKind::Fsst => "fsst",
            CodecKind::Pef => "pef",
        }
    }
}

/// The shape of the probe being dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeShape {
    /// Single-value equality (dictionary exact `find`, index point lookup).
    Point,
    /// Ordered range (`Between`, prefix ranges, `vid_range` probes).
    Range,
    /// Set membership / posting intersection (`In`).
    Set,
}

/// The strategy a reader runs one probe with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPath {
    /// Evaluate directly on compressed bytes (FSST equality compare,
    /// Elias-Fano `next_geq`), decompressing only emitted values.
    CompressedDomain,
    /// Decode the chunk/block, then run the plain kernel.
    DecodeThenScan,
}

/// Picks the scan strategy for one probe over one chain.
///
/// * `Plain` chains always decode-then-scan (the bit-packed SWAR kernels
///   already are that path's fast form).
/// * `Fsst` equality and set probes compare compressed bytes (deterministic
///   encoding makes compressed equality ⇔ raw equality); ordered ranges
///   need `memcmp` order, which FSST does not preserve, so they decompress
///   along the comparison walk.
/// * `Pef` point and set probes leapfrog compressed partitions via
///   `next_geq`; full-range enumeration decodes partitions wholesale.
pub fn choose(kind: CodecKind, shape: ProbeShape) -> ScanPath {
    match (kind, shape) {
        (CodecKind::Plain, _) => ScanPath::DecodeThenScan,
        (CodecKind::Fsst, ProbeShape::Point | ProbeShape::Set) => ScanPath::CompressedDomain,
        (CodecKind::Fsst, ProbeShape::Range) => ScanPath::DecodeThenScan,
        (CodecKind::Pef, ProbeShape::Point | ProbeShape::Set) => ScanPath::CompressedDomain,
        (CodecKind::Pef, ProbeShape::Range) => ScanPath::DecodeThenScan,
    }
}

/// A persisted per-chain codec descriptor: the codec kind plus its
/// parameter blob (for FSST, the serialized symbol table; empty for the
/// parameterless codecs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainCodec {
    /// The codec the chain's payload uses.
    pub kind: CodecKind,
    /// Codec parameters (e.g. a serialized [`crate::fsst::SymbolTable`]).
    pub params: Vec<u8>,
}

/// Descriptor blob version tag.
const DESC_VERSION: u8 = 1;

impl ChainCodec {
    /// A descriptor for an uncompressed chain.
    pub fn plain() -> Self {
        ChainCodec { kind: CodecKind::Plain, params: Vec::new() }
    }

    /// Serializes as `version:u8 | kind:u8 | params_len:u32 LE | params`.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.params.len());
        out.push(DESC_VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.params);
        out
    }

    /// Parses a descriptor blob. An **empty** blob is the legacy encoding
    /// of "no codec" — format-0/1 chains and format-2 chains that never set
    /// a descriptor both read as [`CodecKind::Plain`].
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        if bytes.is_empty() {
            return Ok(ChainCodec::plain());
        }
        let corrupt = |reason: &str| EncodingError::CorruptBlock {
            reason: format!("chain codec descriptor: {reason}"),
        };
        if bytes.len() < 6 {
            return Err(corrupt("shorter than fixed header"));
        }
        if bytes[0] != DESC_VERSION {
            return Err(corrupt("unknown version"));
        }
        let kind = match bytes[1] {
            0 => CodecKind::Plain,
            1 => CodecKind::Fsst,
            2 => CodecKind::Pef,
            _ => return Err(corrupt("unknown codec kind")),
        };
        let len = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]) as usize;
        if bytes.len() != 6 + len {
            return Err(corrupt("params length mismatch"));
        }
        Ok(ChainCodec { kind, params: bytes[6..].to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        for desc in [
            ChainCodec::plain(),
            ChainCodec { kind: CodecKind::Fsst, params: vec![1, 2, 3, 4] },
            ChainCodec { kind: CodecKind::Pef, params: Vec::new() },
        ] {
            let blob = desc.serialize();
            assert_eq!(ChainCodec::deserialize(&blob).unwrap(), desc);
        }
    }

    #[test]
    fn empty_blob_reads_as_plain() {
        assert_eq!(ChainCodec::deserialize(&[]).unwrap(), ChainCodec::plain());
    }

    #[test]
    fn deserialize_rejects_malformed() {
        assert!(ChainCodec::deserialize(&[1, 1]).is_err()); // short header
        assert!(ChainCodec::deserialize(&[9, 0, 0, 0, 0, 0]).is_err()); // version
        assert!(ChainCodec::deserialize(&[1, 7, 0, 0, 0, 0]).is_err()); // kind
        assert!(ChainCodec::deserialize(&[1, 1, 5, 0, 0, 0, 1]).is_err()); // len
    }

    #[test]
    fn dispatch_rules() {
        use CodecKind::*;
        use ProbeShape::*;
        use ScanPath::*;
        assert_eq!(choose(Plain, Point), DecodeThenScan);
        assert_eq!(choose(Fsst, Point), CompressedDomain);
        assert_eq!(choose(Fsst, Set), CompressedDomain);
        assert_eq!(choose(Fsst, Range), DecodeThenScan);
        assert_eq!(choose(Pef, Point), CompressedDomain);
        assert_eq!(choose(Pef, Set), CompressedDomain);
    }
}
