//! FSST-style symbol-table string compression.
//!
//! A [`SymbolTable`] holds up to 255 symbols of 1..=8 bytes each, learned
//! from a sample of the strings it will compress. Encoding replaces each
//! longest-matching symbol occurrence with its one-byte code; bytes matched
//! by no symbol are escaped as `ESCAPE` followed by the literal byte, so
//! every input is representable and the worst-case expansion is 2×.
//!
//! Two properties matter to the callers in `payg-core`:
//!
//! * **Determinism.** Encoding is a pure greedy longest-match (ties broken
//!   by lowest code), so equal inputs always produce equal outputs —
//!   equality probes can compare *compressed* bytes without decompressing
//!   either side.
//! * **Streaming prefix stability.** The greedy parse at position `i`
//!   depends only on bytes `i..i+8`, so strings sharing a long prefix
//!   compress to outputs sharing a long prefix (divergence backs up at most
//!   7 bytes). Front coding therefore still finds most of its shared
//!   prefixes in the compressed domain.
//!
//! Compressed bytes do **not** preserve `memcmp` order; ordering probes
//! must decompress along the comparison path (see `prefix`'s compressed
//! block walk).
//!
//! The trainer is a simplified deterministic variant of the FSST
//! construction (Boncz, Neumann, Leis: "FSST: Fast Random Access String
//! Compression"): a few rounds of greedy re-parsing the sample with the
//! current table while counting single segments and adjacent-segment
//! concatenations, keeping the 255 candidates with the highest
//! `frequency × length` gain.

use crate::{EncodingError, Result};
use std::collections::HashMap;

/// The escape code: in compressed output this byte is followed by one
/// literal byte. All symbol codes are `0..=254`.
pub const ESCAPE: u8 = 0xFF;

/// Maximum number of symbols a table may hold (codes `0..=254`).
pub const MAX_SYMBOLS: usize = 255;

/// Maximum length of one symbol in bytes.
pub const MAX_SYMBOL_LEN: usize = 8;

/// Number of training rounds: each round re-parses the sample with the
/// table learned so far, letting symbols grow up to 8 bytes (1 → 2 → 4 → 8
/// needs three growth rounds; one extra round stabilizes the final set).
const TRAIN_ROUNDS: usize = 4;

/// A learned symbol table: the codec state for one dictionary chain.
#[derive(Clone, PartialEq, Eq)]
pub struct SymbolTable {
    /// Symbol byte strings, indexed by code. `symbols.len() <= 255`.
    symbols: Vec<Vec<u8>>,
    /// For each possible first byte, the codes of all symbols starting with
    /// that byte, longest first (then lowest code) — the greedy match order.
    first: Vec<Vec<u8>>,
    /// Decoder table: symbol bytes padded to 8, plus the true length, so
    /// decode is two indexed loads per code.
    dec_bytes: Vec<[u8; MAX_SYMBOL_LEN]>,
    dec_len: Vec<u8>,
}

impl std::fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymbolTable({} symbols)", self.symbols.len())
    }
}

impl SymbolTable {
    /// Builds the codec state for a fixed symbol set. Symbols must be
    /// non-empty, at most 8 bytes, distinct, and at most 255 in number.
    fn from_symbols(symbols: Vec<Vec<u8>>) -> Result<Self> {
        if symbols.len() > MAX_SYMBOLS {
            return Err(corrupt("symbol table exceeds 255 symbols"));
        }
        let mut first: Vec<Vec<u8>> = vec![Vec::new(); 256];
        let mut dec_bytes = Vec::with_capacity(symbols.len());
        let mut dec_len = Vec::with_capacity(symbols.len());
        for (code, s) in symbols.iter().enumerate() {
            if s.is_empty() || s.len() > MAX_SYMBOL_LEN {
                return Err(corrupt("symbol length outside 1..=8"));
            }
            first[s[0] as usize].push(code as u8);
            let mut padded = [0u8; MAX_SYMBOL_LEN];
            padded[..s.len()].copy_from_slice(s);
            dec_bytes.push(padded);
            dec_len.push(s.len() as u8);
        }
        // Greedy match order: longest symbol first; ties (equal bytes are
        // impossible for distinct symbols) by lowest code for determinism.
        for codes in &mut first {
            codes.sort_by_key(|&c| {
                (std::cmp::Reverse(symbols[c as usize].len()), c)
            });
        }
        Ok(SymbolTable { symbols, first, dec_bytes, dec_len })
    }

    /// Trains a table on a sample of strings.
    ///
    /// Deterministic: the same sample always yields the same table. An
    /// empty or incompressible sample yields a table that still encodes
    /// correctly (possibly all-escape output).
    pub fn train<S: AsRef<[u8]>>(samples: &[S]) -> Self {
        let mut table =
            SymbolTable::from_symbols(Vec::new()).unwrap_or_else(|_| unreachable!("empty is valid"));
        for _ in 0..TRAIN_ROUNDS {
            table = table.train_round(samples);
        }
        table
    }

    /// One training round: greedy-parse every sample with the current
    /// table, counting each parsed segment and each adjacent-segment
    /// concatenation (≤ 8 bytes); keep the top candidates by gain.
    fn train_round<S: AsRef<[u8]>>(&self, samples: &[S]) -> SymbolTable {
        // Candidate key: up to 8 bytes packed little-endian into a u64,
        // paired with the length — cheap, hashable, deterministic.
        let mut counts: HashMap<(u64, u8), u64> = HashMap::new();
        let bump = |bytes: &[u8], counts: &mut HashMap<(u64, u8), u64>| {
            if bytes.is_empty() || bytes.len() > MAX_SYMBOL_LEN {
                return;
            }
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            *counts.entry((u64::from_le_bytes(word), bytes.len() as u8)).or_insert(0) += 1;
        };
        for s in samples {
            let s = s.as_ref();
            let mut pos = 0usize;
            let mut prev: Option<(usize, usize)> = None; // (start, len) of previous segment
            while pos < s.len() {
                let len = match self.match_at(s, pos) {
                    Some(code) => self.dec_len[code as usize] as usize,
                    None => 1,
                };
                bump(&s[pos..pos + len], &mut counts);
                if let Some((pstart, _plen)) = prev {
                    // Concatenation of the previous and current segment,
                    // truncated to the symbol length cap — this is how
                    // symbols grow across rounds (1 → 2 → 4 → 8 bytes).
                    let end = (pos + len).min(pstart + MAX_SYMBOL_LEN);
                    bump(&s[pstart..end], &mut counts);
                }
                prev = Some((pos, len));
                pos += len;
            }
        }
        // Gain = saved bytes ≈ freq × (len − 1); single bytes gain nothing
        // by themselves but earn a slot when frequent enough to avoid the
        // 2× escape penalty: weight them freq × 1.
        let mut ranked: Vec<((u64, u8), u64)> = counts
            .into_iter()
            .map(|(key, freq)| {
                let len = key.1 as u64;
                (key, freq * len.max(2).saturating_sub(1))
            })
            .filter(|&(_, gain)| gain > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(MAX_SYMBOLS);
        let symbols: Vec<Vec<u8>> = ranked
            .into_iter()
            .map(|((word, len), _)| word.to_le_bytes()[..len as usize].to_vec())
            .collect();
        SymbolTable::from_symbols(symbols).unwrap_or_else(|_| unreachable!("bounded candidates"))
    }

    /// The longest symbol matching at `input[pos..]`, if any.
    #[inline]
    fn match_at(&self, input: &[u8], pos: usize) -> Option<u8> {
        let rest = &input[pos..];
        for &code in &self.first[rest[0] as usize] {
            let len = self.dec_len[code as usize] as usize;
            if rest.len() >= len && rest[..len] == self.dec_bytes[code as usize][..len] {
                return Some(code);
            }
        }
        None
    }

    /// Number of symbols in the table.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the table holds no symbols (every byte escapes).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Appends the compressed form of `input` to `out`.
    ///
    /// Deterministic greedy longest-match: equal inputs always yield equal
    /// outputs. Worst case appends `2 × input.len()` bytes.
    pub fn encode_into(&self, input: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0usize;
        while pos < input.len() {
            match self.match_at(input, pos) {
                Some(code) => {
                    out.push(code);
                    pos += self.dec_len[code as usize] as usize;
                }
                None => {
                    out.push(ESCAPE);
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
    }

    /// The compressed form of `input` as a fresh vector.
    pub fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        self.encode_into(input, &mut out);
        out
    }

    /// Appends the decompressed form of `compressed` to `out`.
    ///
    /// Fails on a truncated escape sequence or a code past the table.
    pub fn decode_into(&self, compressed: &[u8], out: &mut Vec<u8>) -> Result<()> {
        let mut pos = 0usize;
        while pos < compressed.len() {
            let code = compressed[pos];
            if code == ESCAPE {
                let Some(&literal) = compressed.get(pos + 1) else {
                    return Err(corrupt("truncated escape at end of compressed data"));
                };
                out.push(literal);
                pos += 2;
            } else {
                let Some(&len) = self.dec_len.get(code as usize) else {
                    return Err(corrupt("symbol code past end of table"));
                };
                out.extend_from_slice(&self.dec_bytes[code as usize][..len as usize]);
                pos += 1;
            }
        }
        Ok(())
    }

    /// The decompressed form of `compressed` as a fresh vector.
    pub fn decode(&self, compressed: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(compressed.len() * 2);
        self.decode_into(compressed, &mut out)?;
        Ok(out)
    }

    /// Decodes a **prefix** of a compressed stream: like
    /// [`SymbolTable::decode_into`], but a lone trailing [`ESCAPE`] byte
    /// (whose literal lives in the truncated-away tail) is silently
    /// dropped instead of erroring. Used to order-compare the on-page part
    /// of a compressed front-coded entry whose tail is off-page. Returns
    /// `true` when the stream ended cleanly (no dangling escape).
    pub fn decode_prefix_into(&self, compressed: &[u8], out: &mut Vec<u8>) -> Result<bool> {
        let mut pos = 0usize;
        while pos < compressed.len() {
            let code = compressed[pos];
            if code == ESCAPE {
                let Some(&literal) = compressed.get(pos + 1) else {
                    return Ok(false); // literal is in the truncated tail
                };
                out.push(literal);
                pos += 2;
            } else {
                let Some(&len) = self.dec_len.get(code as usize) else {
                    return Err(corrupt("symbol code past end of table"));
                };
                out.extend_from_slice(&self.dec_bytes[code as usize][..len as usize]);
                pos += 1;
            }
        }
        Ok(true)
    }

    /// Total compressed size of `samples`, divided by their total raw size
    /// — the decision input for "is this dictionary worth compressing".
    /// Returns 1.0 for an empty sample.
    pub fn compression_ratio<S: AsRef<[u8]>>(&self, samples: &[S]) -> f64 {
        let mut raw = 0usize;
        let mut packed = 0usize;
        let mut buf = Vec::new();
        for s in samples {
            let s = s.as_ref();
            raw += s.len();
            buf.clear();
            self.encode_into(s, &mut buf);
            packed += buf.len();
        }
        if raw == 0 {
            1.0
        } else {
            packed as f64 / raw as f64
        }
    }

    /// Serializes the table: `version:u8 | count:u8 | (len:u8 bytes){count}`.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.symbols.len() * 9);
        out.push(1); // version
        out.push(self.symbols.len() as u8);
        for s in &self.symbols {
            out.push(s.len() as u8);
            out.extend_from_slice(s);
        }
        out
    }

    /// Reconstructs a table produced by [`SymbolTable::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let (&version, rest) =
            bytes.split_first().ok_or_else(|| corrupt("empty symbol table blob"))?;
        if version != 1 {
            return Err(corrupt("unknown symbol table version"));
        }
        let (&count, mut rest) =
            rest.split_first().ok_or_else(|| corrupt("symbol table missing count"))?;
        let mut symbols = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (&len, tail) =
                rest.split_first().ok_or_else(|| corrupt("symbol table truncated"))?;
            if len == 0 || len as usize > MAX_SYMBOL_LEN || tail.len() < len as usize {
                return Err(corrupt("symbol entry malformed"));
            }
            symbols.push(tail[..len as usize].to_vec());
            rest = &tail[len as usize..];
        }
        if !rest.is_empty() {
            return Err(corrupt("trailing bytes after symbol table"));
        }
        SymbolTable::from_symbols(symbols)
    }
}

fn corrupt(reason: &str) -> EncodingError {
    EncodingError::CorruptBlock { reason: format!("fsst: {reason}") }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_urls() -> Vec<String> {
        (0..400)
            .map(|i| format!("http://www.example.com/catalog/item-{:05}/details.html", i * 7))
            .collect()
    }

    #[test]
    fn roundtrip_urls() {
        let samples = sample_urls();
        let t = SymbolTable::train(&samples);
        assert!(!t.is_empty());
        for s in &samples {
            let enc = t.encode(s.as_bytes());
            assert_eq!(t.decode(&enc).unwrap(), s.as_bytes());
        }
        // Strings outside the training sample still roundtrip (escapes).
        for odd in ["", "\u{00}\u{01}\u{02}", "ZZZ-unseen-\u{7f}", "日本語テキスト"] {
            let enc = t.encode(odd.as_bytes());
            assert_eq!(t.decode(&enc).unwrap(), odd.as_bytes());
        }
    }

    #[test]
    fn compresses_repetitive_text() {
        let samples = sample_urls();
        let t = SymbolTable::train(&samples);
        let ratio = t.compression_ratio(&samples);
        assert!(ratio < 0.6, "expected ≥40% shrink on urls, got ratio {ratio}");
    }

    #[test]
    fn deterministic_training_and_encoding() {
        let samples = sample_urls();
        let a = SymbolTable::train(&samples);
        let b = SymbolTable::train(&samples);
        assert_eq!(a.serialize(), b.serialize());
        for s in &samples {
            assert_eq!(a.encode(s.as_bytes()), b.encode(s.as_bytes()));
        }
    }

    #[test]
    fn equal_inputs_equal_outputs_unequal_inputs_unequal_outputs() {
        let samples = sample_urls();
        let t = SymbolTable::train(&samples);
        // Deterministic encode makes compressed equality ⇔ raw equality:
        // decode(encode(x)) == x means encode is injective.
        for (i, a) in samples.iter().enumerate().step_by(17) {
            for (j, b) in samples.iter().enumerate().step_by(23) {
                let ea = t.encode(a.as_bytes());
                let eb = t.encode(b.as_bytes());
                assert_eq!(ea == eb, i == j || a == b);
            }
        }
    }

    #[test]
    fn shared_prefixes_survive_compression() {
        let samples = sample_urls();
        let t = SymbolTable::train(&samples);
        let a = t.encode(b"http://www.example.com/catalog/item-00001/a");
        let b = t.encode(b"http://www.example.com/catalog/item-00001/b");
        let shared = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        // The raw shared prefix is 43 bytes; the compressed forms must
        // share the bulk of it (divergence backs up at most 7 raw bytes).
        assert!(shared * 2 >= a.len().min(b.len()), "shared {shared} of {}", a.len());
    }

    #[test]
    fn empty_table_escapes_everything() {
        let t = SymbolTable::train::<&[u8]>(&[]);
        assert!(t.is_empty());
        let enc = t.encode(b"abc");
        assert_eq!(enc, vec![ESCAPE, b'a', ESCAPE, b'b', ESCAPE, b'c']);
        assert_eq!(t.decode(&enc).unwrap(), b"abc");
    }

    #[test]
    fn serialize_roundtrip() {
        let samples = sample_urls();
        let t = SymbolTable::train(&samples);
        let blob = t.serialize();
        let back = SymbolTable::deserialize(&blob).unwrap();
        assert_eq!(back.serialize(), blob);
        for s in samples.iter().take(50) {
            assert_eq!(back.encode(s.as_bytes()), t.encode(s.as_bytes()));
        }
    }

    #[test]
    fn deserialize_rejects_malformed() {
        assert!(SymbolTable::deserialize(&[]).is_err());
        assert!(SymbolTable::deserialize(&[9, 0]).is_err()); // bad version
        assert!(SymbolTable::deserialize(&[1, 1]).is_err()); // missing entry
        assert!(SymbolTable::deserialize(&[1, 1, 0]).is_err()); // zero-length symbol
        assert!(SymbolTable::deserialize(&[1, 1, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(SymbolTable::deserialize(&[1, 1, 1, b'a', b'x']).is_err()); // trailing
    }

    #[test]
    fn decode_rejects_malformed() {
        let t = SymbolTable::train(&["aaaa"; 64]);
        assert!(t.decode(&[ESCAPE]).is_err());
        assert!(t.decode(&[254]).is_err()); // code past table end
    }

    #[test]
    fn max_expansion_is_two_x() {
        let t = SymbolTable::train(&sample_urls());
        let adversarial: Vec<u8> = (0u8..=254).rev().cycle().take(1000).collect();
        let enc = t.encode(&adversarial);
        assert!(enc.len() <= 2 * adversarial.len());
        assert_eq!(t.decode(&enc).unwrap(), adversarial);
    }
}
