//! Value-identifier predicates for scans.
//!
//! A scan over a data vector takes a predicate expressed as a *set of value
//! identifiers* (paper §3.1.2). [`VidSet`] is that set, with representations
//! tuned for the common shapes: a single identifier (point predicate), a
//! contiguous identifier range (range predicates on order-preserving
//! dictionaries stay contiguous), a small sorted list (IN-lists), and a dense
//! bitmap over the identifier space.

/// A set of value identifiers used as a scan predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VidSet {
    /// Exactly one identifier.
    Single(u64),
    /// All identifiers in `lo..=hi`. Because main dictionaries are
    /// order-preserving, a value range maps to exactly one vid range.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// A sorted, deduplicated list of identifiers.
    Sorted(Vec<u64>),
    /// A bitmap over identifiers `0..(64 * words.len())`.
    Bitmap(Vec<u64>),
}

impl VidSet {
    /// Builds the cheapest representation for an arbitrary list of ids.
    ///
    /// Sorts and deduplicates; collapses to `Single` or `Range` where
    /// possible; switches to a bitmap when the list is dense relative to its
    /// span.
    pub fn from_vids(mut vids: Vec<u64>) -> Self {
        vids.sort_unstable();
        vids.dedup();
        match vids.len() {
            0 => VidSet::Sorted(vids),
            1 => VidSet::Single(vids[0]),
            n => {
                let (lo, hi) = (vids[0], vids[n - 1]);
                if hi - lo + 1 == n as u64 {
                    return VidSet::Range { lo, hi };
                }
                // Dense relative to the span: a bitmap word costs 8 bytes and
                // covers 64 ids; the sorted list costs 8 bytes per id.
                let span_words = (hi / 64 + 1) as usize;
                if span_words <= n {
                    let mut words = vec![0u64; span_words];
                    for &v in &vids {
                        words[(v / 64) as usize] |= 1 << (v % 64);
                    }
                    VidSet::Bitmap(words)
                } else {
                    VidSet::Sorted(vids)
                }
            }
        }
    }

    /// Builds an inclusive range predicate. An empty range (`lo > hi`)
    /// becomes the empty set.
    pub fn range(lo: u64, hi: u64) -> Self {
        if lo > hi {
            VidSet::Sorted(Vec::new())
        } else if lo == hi {
            VidSet::Single(lo)
        } else {
            VidSet::Range { lo, hi }
        }
    }

    /// True when no identifier is in the set.
    pub fn is_empty(&self) -> bool {
        match self {
            VidSet::Single(_) | VidSet::Range { .. } => false,
            VidSet::Sorted(v) => v.is_empty(),
            VidSet::Bitmap(w) => w.iter().all(|&x| x == 0),
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, vid: u64) -> bool {
        match self {
            VidSet::Single(v) => vid == *v,
            VidSet::Range { lo, hi } => vid >= *lo && vid <= *hi,
            VidSet::Sorted(v) => v.binary_search(&vid).is_ok(),
            VidSet::Bitmap(w) => {
                let wi = (vid / 64) as usize;
                wi < w.len() && (w[wi] >> (vid % 64)) & 1 == 1
            }
        }
    }

    /// Smallest identifier in the set, if any. Used for page pruning.
    pub fn min_vid(&self) -> Option<u64> {
        match self {
            VidSet::Single(v) => Some(*v),
            VidSet::Range { lo, .. } => Some(*lo),
            VidSet::Sorted(v) => v.first().copied(),
            VidSet::Bitmap(w) => w
                .iter()
                .enumerate()
                .find(|(_, &x)| x != 0)
                .map(|(i, &x)| i as u64 * 64 + x.trailing_zeros() as u64),
        }
    }

    /// Largest identifier in the set, if any. Used for page pruning.
    pub fn max_vid(&self) -> Option<u64> {
        match self {
            VidSet::Single(v) => Some(*v),
            VidSet::Range { hi, .. } => Some(*hi),
            VidSet::Sorted(v) => v.last().copied(),
            VidSet::Bitmap(w) => w
                .iter()
                .enumerate()
                .rev()
                .find(|(_, &x)| x != 0)
                .map(|(i, &x)| i as u64 * 64 + 63 - x.leading_zeros() as u64),
        }
    }

    /// True when the set contains any identifier in `lo..=hi`. Used by
    /// page-summary pruning: a page whose value range does not overlap the
    /// predicate is never loaded.
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        if lo > hi {
            return false;
        }
        match self {
            VidSet::Single(v) => *v >= lo && *v <= hi,
            VidSet::Range { lo: a, hi: b } => *a <= hi && *b >= lo,
            VidSet::Sorted(v) => {
                let i = v.partition_point(|&x| x < lo);
                i < v.len() && v[i] <= hi
            }
            VidSet::Bitmap(w) => {
                let hi = hi.min(w.len() as u64 * 64 - 1);
                if lo > hi {
                    return false;
                }
                // Scan whole words, masking the partial boundary words.
                let (lw, hw) = ((lo / 64) as usize, (hi / 64) as usize);
                for (wi, &stored) in w.iter().enumerate().take(hw + 1).skip(lw) {
                    let mut word = stored;
                    if wi == lw {
                        word &= u64::MAX << (lo % 64);
                    }
                    if wi == hw && hi % 64 != 63 {
                        word &= (1u64 << (hi % 64 + 1)) - 1;
                    }
                    if word != 0 {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Iterates the identifiers in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            VidSet::Single(v) => Box::new(std::iter::once(*v)),
            VidSet::Range { lo, hi } => Box::new(*lo..=*hi),
            VidSet::Sorted(v) => Box::new(v.iter().copied()),
            VidSet::Bitmap(w) => Box::new(w.iter().enumerate().flat_map(|(i, &word)| {
                let base = i as u64 * 64;
                BitIter { word }.map(move |b| base + b)
            })),
        }
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vids_picks_representations() {
        assert!(matches!(VidSet::from_vids(vec![]), VidSet::Sorted(v) if v.is_empty()));
        assert_eq!(VidSet::from_vids(vec![7, 7]), VidSet::Single(7));
        assert_eq!(VidSet::from_vids(vec![3, 5, 4]), VidSet::Range { lo: 3, hi: 5 });
        // Dense but non-contiguous: bitmap.
        assert!(matches!(
            VidSet::from_vids(vec![0, 1, 2, 4, 5, 6]),
            VidSet::Bitmap(_)
        ));
        // Sparse over a huge span: sorted list.
        assert!(matches!(
            VidSet::from_vids(vec![1, 1_000_000]),
            VidSet::Sorted(_)
        ));
    }

    #[test]
    fn contains_and_bounds_agree_across_representations() {
        let ids = vec![2u64, 3, 9, 64, 65, 130];
        for set in [
            VidSet::from_vids(ids.clone()),
            VidSet::Sorted(ids.clone()),
            {
                let mut w = vec![0u64; 3];
                for &v in &ids {
                    w[(v / 64) as usize] |= 1 << (v % 64);
                }
                VidSet::Bitmap(w)
            },
        ] {
            for v in 0..200 {
                assert_eq!(set.contains(v), ids.contains(&v), "{set:?} vid {v}");
            }
            assert_eq!(set.min_vid(), Some(2));
            assert_eq!(set.max_vid(), Some(130));
            let collected: Vec<u64> = set.iter().collect();
            assert_eq!(collected, ids);
        }
    }

    #[test]
    fn range_constructor() {
        assert!(VidSet::range(5, 4).is_empty());
        assert_eq!(VidSet::range(5, 5), VidSet::Single(5));
        assert_eq!(VidSet::range(1, 9), VidSet::Range { lo: 1, hi: 9 });
        let all: Vec<u64> = VidSet::range(1, 4).iter().collect();
        assert_eq!(all, vec![1, 2, 3, 4]);
    }

    #[test]
    fn overlaps_agrees_with_membership() {
        for set in [
            VidSet::Single(10),
            VidSet::range(5, 20),
            VidSet::from_vids(vec![3, 70, 140]),
            VidSet::Bitmap(vec![1 << 3, 1 << 6, 1 << 12]),
            VidSet::Sorted(vec![]),
        ] {
            for lo in 0..160u64 {
                for hi in [lo, lo + 1, lo + 7, lo + 63, lo + 64, lo + 100] {
                    let expect = (lo..=hi).any(|v| set.contains(v));
                    assert_eq!(set.overlaps(lo, hi), expect, "{set:?} [{lo},{hi}]");
                }
            }
            assert!(!set.overlaps(10, 9), "empty interval never overlaps");
        }
    }

    #[test]
    fn empty_bounds() {
        let e = VidSet::from_vids(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.min_vid(), None);
        assert_eq!(e.max_vid(), None);
    }
}
