//! Vectorized scan primitives over n-bit packed chunks.
//!
//! These are the paper's `search` primitives (§3.1.3): predicate evaluation
//! over uniformly encoded chunks, producing one 64-bit *match bitmap* per
//! chunk (bit `i` set ⇔ slot `i` matches). Implementation is portable SWAR:
//!
//! * For widths that divide 64, a word-parallel zero-lane test rejects
//!   non-matching words without decoding them (the common case on selective
//!   scans — the paper notes `search` is memory-bandwidth bound, so skipping
//!   the unpack of non-matching words is the win that matters).
//! * Otherwise the chunk is decoded once into a stack buffer and the
//!   predicate is evaluated with a branchless loop that autovectorizes.

use crate::chunk::{decode_chunk, CHUNK_LEN};
use crate::{BitPackedVec, BitWidth, VidSet};

/// Replicates an `n`-bit value across a 64-bit word (`n` must divide 64).
#[inline]
fn replicate(v: u64, n: u32) -> u64 {
    let mut p = v;
    let mut width = n;
    while width < 64 {
        p |= p << width;
        width *= 2;
    }
    p
}

/// Low bit of every `n`-bit lane.
#[inline]
fn lane_lsb(n: u32) -> u64 {
    replicate(1, n)
}

/// True when some `n`-bit lane of `x` is zero (`n` divides 64, `n < 64`).
/// Exact test from Bit Twiddling Hacks generalized to lane width `n`.
#[inline]
fn has_zero_lane(x: u64, n: u32) -> bool {
    let lsb = lane_lsb(n);
    let msb = lsb << (n - 1);
    (x.wrapping_sub(lsb) & !x & msb) != 0
}

/// Computes the match bitmap of `chunk_words` (one chunk at width `w`)
/// against an equality predicate `vid`.
pub fn chunk_bitmap_eq(chunk_words: &[u64], w: BitWidth, vid: u64) -> u64 {
    let n = w.bits();
    if n == 0 {
        return if vid == 0 { u64::MAX } else { 0 };
    }
    if vid > w.max_value() {
        return 0;
    }
    if n == 64 {
        let mut bm = 0u64;
        for (i, &word) in chunk_words.iter().enumerate() {
            bm |= u64::from(word == vid) << i;
        }
        return bm;
    }
    if w.is_word_aligned() {
        // SWAR path: XOR with the replicated pattern, then test lanes for
        // zero; only extract lane positions for words that contain a match.
        let pattern = replicate(vid, n);
        let per_word = (64 / n) as usize;
        let mut bm = 0u64;
        if n == 1 {
            // Lanes are single bits: the bitmap is the (possibly inverted)
            // word itself.
            let word = chunk_words[0];
            return if vid == 1 { word } else { !word };
        }
        for (wi, &word) in chunk_words.iter().enumerate() {
            let x = word ^ pattern;
            if !has_zero_lane(x, n) {
                continue;
            }
            let base = wi * per_word;
            let mask = w.mask();
            for lane in 0..per_word {
                let v = (word >> (lane as u32 * n)) & mask;
                bm |= u64::from(v == vid) << (base + lane);
            }
        }
        return bm;
    }
    let mut buf = [0u64; CHUNK_LEN];
    decode_chunk(chunk_words, w, &mut buf);
    bitmap_from_decoded(&buf, |v| v == vid)
}

/// Computes the match bitmap against an inclusive range predicate
/// `lo..=hi`.
pub fn chunk_bitmap_range(chunk_words: &[u64], w: BitWidth, lo: u64, hi: u64) -> u64 {
    if lo > hi {
        return 0;
    }
    let n = w.bits();
    if n == 0 {
        return if lo == 0 { u64::MAX } else { 0 };
    }
    let mut buf = [0u64; CHUNK_LEN];
    decode_chunk(chunk_words, w, &mut buf);
    bitmap_from_decoded(&buf, |v| v >= lo && v <= hi)
}

/// Computes the match bitmap against an arbitrary [`VidSet`] predicate.
pub fn chunk_bitmap_in(chunk_words: &[u64], w: BitWidth, set: &VidSet) -> u64 {
    match set {
        VidSet::Single(v) => chunk_bitmap_eq(chunk_words, w, *v),
        VidSet::Range { lo, hi } => chunk_bitmap_range(chunk_words, w, *lo, *hi),
        _ => {
            let n = w.bits();
            if n == 0 {
                return if set.contains(0) { u64::MAX } else { 0 };
            }
            let mut buf = [0u64; CHUNK_LEN];
            decode_chunk(chunk_words, w, &mut buf);
            bitmap_from_decoded(&buf, |v| set.contains(v))
        }
    }
}

/// Branchless bitmap construction over a decoded chunk.
#[inline]
fn bitmap_from_decoded(buf: &[u64; CHUNK_LEN], pred: impl Fn(u64) -> bool) -> u64 {
    let mut bm = 0u64;
    for (i, &v) in buf.iter().enumerate() {
        bm |= u64::from(pred(v)) << i;
    }
    bm
}

/// Pushes the row positions set in `bitmap` (relative to `base`) onto `out`,
/// restricted to positions in `from..to`.
#[inline]
pub fn push_bitmap_positions(mut bitmap: u64, base: u64, from: u64, to: u64, out: &mut Vec<u64>) {
    // Trim slots below `from` and at/above `to`.
    if base < from {
        let skip = from - base;
        if skip >= 64 {
            return;
        }
        bitmap &= u64::MAX << skip;
    }
    if base + 64 > to {
        if to <= base {
            return;
        }
        let keep = to - base;
        if keep < 64 {
            bitmap &= (1u64 << keep) - 1;
        }
    }
    // Saturated chunk (common on low-selectivity predicates): extend the
    // whole run instead of peeling 64 bits one at a time.
    if bitmap == u64::MAX {
        out.extend(base..base + 64);
        return;
    }
    while bitmap != 0 {
        let slot = bitmap.trailing_zeros() as u64;
        out.push(base + slot);
        bitmap &= bitmap - 1;
    }
}

/// A predicate compiled once per scan: replicated SWAR patterns and width
/// metadata are hoisted out of the per-chunk loop (recomputing the pattern
/// for every 64-value chunk dominates small-width scans otherwise).
pub enum CompiledPredicate<'a> {
    /// Equality at a word-aligned width: full SWAR with precomputed lanes.
    SwarEq {
        /// The probe value.
        vid: u64,
        /// `vid` replicated across the word.
        pattern: u64,
        /// Lane low bits.
        lsb: u64,
        /// Lane high bits.
        msb: u64,
        /// Lane width.
        n: u32,
        /// Value mask.
        mask: u64,
    },
    /// Any other (width, set) combination: decode + branchless compare.
    General {
        /// The predicate.
        set: &'a VidSet,
        /// The width.
        width: BitWidth,
    },
    /// Width-0 vectors: every slot holds 0.
    Zero {
        /// Whether 0 matches the predicate.
        matches: bool,
    },
}

impl<'a> CompiledPredicate<'a> {
    /// Compiles `set` for scans at `width`.
    pub fn new(width: BitWidth, set: &'a VidSet) -> Self {
        let n = width.bits();
        if n == 0 {
            return CompiledPredicate::Zero { matches: set.contains(0) };
        }
        if let VidSet::Single(vid) = set {
            if width.is_word_aligned() && n > 1 && n < 64 && *vid <= width.max_value() {
                let lsb = lane_lsb(n);
                return CompiledPredicate::SwarEq {
                    vid: *vid,
                    pattern: replicate(*vid, n),
                    lsb,
                    msb: lsb << (n - 1),
                    n,
                    mask: width.mask(),
                };
            }
        }
        CompiledPredicate::General { set, width }
    }

    /// Match bitmap of one chunk.
    #[inline]
    pub fn chunk_bitmap(&self, chunk_words: &[u64]) -> u64 {
        match self {
            CompiledPredicate::Zero { matches } => {
                if *matches {
                    u64::MAX
                } else {
                    0
                }
            }
            CompiledPredicate::SwarEq { vid, pattern, lsb, msb, n, mask } => {
                let per_word = (64 / n) as usize;
                let mut bm = 0u64;
                for (wi, &word) in chunk_words.iter().enumerate() {
                    let x = word ^ pattern;
                    if (x.wrapping_sub(*lsb) & !x & msb) == 0 {
                        continue;
                    }
                    let base = wi * per_word;
                    for lane in 0..per_word {
                        let v = (word >> (lane as u32 * n)) & mask;
                        bm |= u64::from(v == *vid) << (base + lane);
                    }
                }
                bm
            }
            CompiledPredicate::General { set, width } => chunk_bitmap_in(chunk_words, *width, set),
        }
    }
}

/// Scans `vec[from..to]` for positions whose value is in `set`, appending
/// matches (ascending) to `out`. This is the resident-column `search`; the
/// paged iterator applies the same chunk primitives page by page.
pub fn search(vec: &BitPackedVec, from: u64, to: u64, set: &VidSet, out: &mut Vec<u64>) {
    assert!(from <= to && to <= vec.len(), "search range {from}..{to} out of bounds");
    if from == to || set.is_empty() {
        return;
    }
    let pred = crate::kernels::KernelPredicate::new(vec.width(), set);
    if pred.never_matches() {
        return;
    }
    if pred.always_matches() {
        out.extend(from..to);
        return;
    }
    let first = from / CHUNK_LEN as u64;
    let last = (to - 1) / CHUNK_LEN as u64;
    for ci in first..=last {
        let bm = pred.chunk_bitmap(vec.chunk_words(ci));
        if bm != 0 {
            push_bitmap_positions(bm, ci * CHUNK_LEN as u64, from, to, out);
        }
    }
}

/// Scans `vec[from..to]` producing a result **bitmap** (one bit per row,
/// relative to `from`, packed into `out`) instead of materializing
/// positions. This is the bandwidth-bound form the paper's Fig. 1 measures:
/// the output cost is constant per 64 rows regardless of selectivity, so
/// the scan is limited by how fast packed data streams from memory.
pub fn search_bitmap(vec: &BitPackedVec, from: u64, to: u64, set: &VidSet, out: &mut Vec<u64>) {
    assert!(from <= to && to <= vec.len(), "search range {from}..{to} out of bounds");
    out.clear();
    if from == to {
        return;
    }
    assert!(from.is_multiple_of(CHUNK_LEN as u64), "bitmap search starts on a chunk boundary");
    let pred = crate::kernels::KernelPredicate::new(vec.width(), set);
    let first = from / CHUNK_LEN as u64;
    let last = (to - 1) / CHUNK_LEN as u64;
    out.reserve((last - first + 1) as usize);
    if vec.width().bits() > 0 && !pred.never_matches() && !pred.always_matches() {
        // Fused path: the packed words are contiguous, so the whole range is
        // one kernel call.
        let wpc = vec.width().bits() as usize;
        let words = vec.words();
        pred.scan_chunks(&words[first as usize * wpc..(last + 1) as usize * wpc], out);
    } else {
        for ci in first..=last {
            out.push(pred.chunk_bitmap(vec.chunk_words(ci)));
        }
    }
    let keep = to - last * CHUNK_LEN as u64;
    if keep < 64 {
        if let Some(bm) = out.last_mut() {
            *bm &= (1u64 << keep) - 1;
        }
    }
}

/// Scans positions listed in `rows` (ascending) for values in `set`,
/// appending matching positions to `out`. This is the paper's
/// `search(bitmap-of-rows, set-of-vids)` variety.
pub fn search_at_rows(vec: &BitPackedVec, rows: &[u64], set: &VidSet, out: &mut Vec<u64>) {
    if rows.is_empty() || set.is_empty() {
        return;
    }
    let mut buf = [0u64; CHUNK_LEN];
    let mut cached_chunk = u64::MAX;
    for &pos in rows {
        assert!(pos < vec.len(), "row position {pos} out of bounds");
        let ci = pos / CHUNK_LEN as u64;
        if ci != cached_chunk {
            decode_chunk(vec.chunk_words(ci), vec.width(), &mut buf);
            cached_chunk = ci;
        }
        if set.contains(buf[(pos % CHUNK_LEN as u64) as usize]) {
            out.push(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitPackedBuilder;

    fn sample_vec(len: usize, bits: u32, seed: u64) -> (Vec<u64>, BitPackedVec) {
        let w = BitWidth::new(bits).unwrap();
        let values: Vec<u64> = (0..len)
            .map(|i| {
                (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    >> 17)
                    & w.mask()
            })
            .collect();
        let mut b = BitPackedBuilder::new(w);
        for &v in &values {
            b.push(v);
        }
        (values.clone(), b.finish())
    }

    fn naive_search(values: &[u64], from: u64, to: u64, set: &VidSet) -> Vec<u64> {
        (from..to).filter(|&i| set.contains(values[i as usize])).collect()
    }

    #[test]
    fn eq_matches_naive_across_widths() {
        for bits in [0u32, 1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 21, 32, 33, 64] {
            let (values, vec) = sample_vec(300, bits, u64::from(bits) + 1);
            // Probe both present and absent vids.
            let mut probes: Vec<u64> = values.iter().take(5).copied().collect();
            probes.push(BitWidth::new(bits).unwrap().mask() / 2 + 1);
            probes.push(0);
            for vid in probes {
                let set = VidSet::Single(vid);
                let mut got = Vec::new();
                search(&vec, 0, vec.len(), &set, &mut got);
                assert_eq!(got, naive_search(&values, 0, vec.len(), &set), "bits={bits} vid={vid}");
            }
        }
    }

    #[test]
    fn range_and_set_predicates_match_naive() {
        let (values, vec) = sample_vec(500, 6, 42);
        for set in [
            VidSet::range(3, 17),
            VidSet::range(0, 63),
            VidSet::from_vids(vec![1, 5, 9, 44]),
            VidSet::from_vids(vec![2, 3, 4, 6, 7, 8]),
            VidSet::from_vids(values.iter().take(20).copied().collect()),
        ] {
            let mut got = Vec::new();
            search(&vec, 0, vec.len(), &set, &mut got);
            assert_eq!(got, naive_search(&values, 0, vec.len(), &set), "{set:?}");
        }
    }

    #[test]
    fn sub_range_search_trims_boundary_chunks() {
        let (values, vec) = sample_vec(400, 5, 7);
        let set = VidSet::range(0, 15);
        for (from, to) in [(0u64, 1u64), (63, 65), (1, 399), (120, 121), (64, 128), (399, 400)] {
            let mut got = Vec::new();
            search(&vec, from, to, &set, &mut got);
            assert_eq!(got, naive_search(&values, from, to, &set), "{from}..{to}");
        }
    }

    #[test]
    fn search_at_rows_matches_naive() {
        let (values, vec) = sample_vec(300, 8, 3);
        let rows: Vec<u64> = (0..300).step_by(7).collect();
        let set = VidSet::range(0, 100);
        let mut got = Vec::new();
        search_at_rows(&vec, &rows, &set, &mut got);
        let expect: Vec<u64> = rows
            .iter()
            .copied()
            .filter(|&r| set.contains(values[r as usize]))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn zero_width_vectors() {
        let (_, vec) = sample_vec(100, 0, 1);
        let mut got = Vec::new();
        search(&vec, 10, 20, &VidSet::Single(0), &mut got);
        assert_eq!(got, (10..20).collect::<Vec<u64>>());
        got.clear();
        search(&vec, 10, 20, &VidSet::Single(1), &mut got);
        assert!(got.is_empty());
    }

    #[test]
    fn swar_zero_lane_detection() {
        // 8-bit lanes.
        assert!(has_zero_lane(0x11_22_00_44_55_66_77_88, 8));
        assert!(!has_zero_lane(0x11_22_33_44_55_66_77_88, 8));
        // High-bit-set lanes must not be false positives.
        assert!(!has_zero_lane(0x80_80_80_80_80_80_80_80, 8));
        assert!(has_zero_lane(0x80_80_80_80_80_80_80_00, 8));
        // 4-bit lanes.
        assert!(has_zero_lane(0xFFFF_FFFF_FFFF_FF0F, 4));
        assert!(!has_zero_lane(0x1111_1111_9999_FFFF, 4));
    }

    #[test]
    fn search_bitmap_matches_positions() {
        let (values, vec) = sample_vec(300, 5, 9);
        let set = VidSet::range(3, 12);
        let mut words = Vec::new();
        search_bitmap(&vec, 0, 300, &set, &mut words);
        assert_eq!(words.len(), 5);
        let mut positions = Vec::new();
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                positions.push(wi as u64 * 64 + w.trailing_zeros() as u64);
                w &= w - 1;
            }
        }
        assert_eq!(positions, naive_search(&values, 0, 300, &set));
        // Trailing bits beyond `to` are cleared.
        search_bitmap(&vec, 0, 70, &VidSet::range(0, 31), &mut words);
        assert_eq!(words.len(), 2);
        assert_eq!(words[1] >> 6, 0);
    }

    #[test]
    fn bitmap_position_trimming() {
        let mut out = Vec::new();
        push_bitmap_positions(u64::MAX, 64, 70, 74, &mut out);
        assert_eq!(out, vec![70, 71, 72, 73]);
        out.clear();
        push_bitmap_positions(u64::MAX, 64, 0, 64, &mut out);
        assert!(out.is_empty());
        out.clear();
        push_bitmap_positions(u64::MAX, 64, 200, 300, &mut out);
        assert!(out.is_empty());
    }
}
