//! Uniform n-bit packed vectors.
//!
//! A [`BitPackedVec`] stores `len` values, each `n` bits wide, as a sequence
//! of 64-value chunks (see [`crate::chunk`]). This is the in-memory form of
//! the paper's *data vector*: the fully-resident baseline keeps one
//! `BitPackedVec` per column fragment, and the paged variant persists the
//! same chunks across a page chain.

use crate::chunk::{
    self, bytes_per_chunk, chunk_count, decode_chunk, decode_slot, encode_chunk, words_per_chunk,
    CHUNK_LEN,
};
use crate::BitWidth;

/// An immutable vector of `len` values packed at a uniform bit width.
///
/// Storage is chunk-granular: the trailing partial chunk (if any) is padded
/// with zero values so that every chunk occupies exactly
/// [`chunk::words_per_chunk`] words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPackedVec {
    width: BitWidth,
    len: u64,
    words: Vec<u64>,
}

impl BitPackedVec {
    /// Packs `values` at the smallest width that fits their maximum.
    pub fn from_values(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        Self::from_values_with_width(values, BitWidth::for_max_value(max))
    }

    /// Packs `values` at an explicit width.
    ///
    /// # Panics
    /// Panics (debug) if any value exceeds the width's maximum.
    pub fn from_values_with_width(values: &[u64], width: BitWidth) -> Self {
        let mut b = BitPackedBuilder::new(width);
        for &v in values {
            b.push(v);
        }
        b.finish()
    }

    /// Reconstructs a vector from raw chunk words (e.g. read back from
    /// pages). `words.len()` must equal `chunk_count(len) * words_per_chunk`.
    pub fn from_words(width: BitWidth, len: u64, words: Vec<u64>) -> crate::Result<Self> {
        let expect = chunk_count(len) as usize * words_per_chunk(width);
        if words.len() != expect {
            return Err(crate::EncodingError::CorruptBlock {
                reason: format!(
                    "bitpacked vector: expected {expect} words for len {len} at {width}, got {}",
                    words.len()
                ),
            });
        }
        Ok(BitPackedVec { width, len, words })
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the vector holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The uniform bit width.
    #[inline]
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Number of chunks (including the trailing padded chunk).
    #[inline]
    pub fn chunk_count(&self) -> u64 {
        chunk_count(self.len)
    }

    /// All backing words, chunk after chunk.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The words of chunk `ci`.
    #[inline]
    pub fn chunk_words(&self, ci: u64) -> &[u64] {
        let n = words_per_chunk(self.width);
        let start = ci as usize * n;
        &self.words[start..start + n]
    }

    /// Heap size in bytes (what the resource manager accounts for).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Decodes the value at position `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    #[inline]
    pub fn get(&self, pos: u64) -> u64 {
        assert!(pos < self.len, "position {pos} out of bounds (len {})", self.len);
        if self.width.bits() == 0 {
            return 0;
        }
        decode_slot(
            self.chunk_words(chunk::chunk_of(pos)),
            self.width,
            chunk::slot_of(pos),
        )
    }

    /// Decodes positions `from..to` into `out` (cleared first).
    ///
    /// This is the resident-column `mget`: chunk-at-a-time decode, trimming
    /// the first and last chunk to the requested range.
    pub fn mget(&self, from: u64, to: u64, out: &mut Vec<u64>) {
        assert!(from <= to && to <= self.len, "mget range {from}..{to} out of bounds");
        out.clear();
        out.reserve((to - from) as usize);
        if from == to {
            return;
        }
        let mut buf = [0u64; CHUNK_LEN];
        let first = chunk::chunk_of(from);
        let last = chunk::chunk_of(to - 1);
        for ci in first..=last {
            decode_chunk(self.chunk_words(ci), self.width, &mut buf);
            let lo = if ci == first { chunk::slot_of(from) } else { 0 };
            let hi = if ci == last { chunk::slot_of(to - 1) + 1 } else { CHUNK_LEN };
            out.extend_from_slice(&buf[lo..hi]);
        }
    }

    /// Iterates over all values.
    pub fn iter(&self) -> BitPackedIter<'_> {
        BitPackedIter { vec: self, pos: 0, buf: [0; CHUNK_LEN], buf_chunk: u64::MAX }
    }
}

/// Iterator over a [`BitPackedVec`], decoding chunk-at-a-time.
pub struct BitPackedIter<'a> {
    vec: &'a BitPackedVec,
    pos: u64,
    buf: [u64; CHUNK_LEN],
    buf_chunk: u64,
}

impl Iterator for BitPackedIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.pos >= self.vec.len {
            return None;
        }
        let ci = chunk::chunk_of(self.pos);
        if ci != self.buf_chunk {
            decode_chunk(self.vec.chunk_words(ci), self.vec.width, &mut self.buf);
            self.buf_chunk = ci;
        }
        let v = self.buf[chunk::slot_of(self.pos)];
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.vec.len - self.pos) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BitPackedIter<'_> {}

/// Incremental builder for a [`BitPackedVec`].
pub struct BitPackedBuilder {
    width: BitWidth,
    len: u64,
    pending: [u64; CHUNK_LEN],
    pending_len: usize,
    words: Vec<u64>,
}

impl BitPackedBuilder {
    /// Creates a builder at the given width.
    pub fn new(width: BitWidth) -> Self {
        BitPackedBuilder { width, len: 0, pending: [0; CHUNK_LEN], pending_len: 0, words: Vec::new() }
    }

    /// Creates a builder sized for `len` values.
    pub fn with_capacity(width: BitWidth, len: u64) -> Self {
        let mut b = Self::new(width);
        b.words
            .reserve(chunk_count(len) as usize * words_per_chunk(width));
        b
    }

    /// Appends one value.
    ///
    /// # Panics
    /// Panics if the value does not fit the width.
    pub fn push(&mut self, v: u64) {
        assert!(
            v <= self.width.max_value(),
            "value {v} does not fit in {}",
            self.width
        );
        self.pending[self.pending_len] = v;
        self.pending_len += 1;
        self.len += 1;
        if self.pending_len == CHUNK_LEN {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        let n = words_per_chunk(self.width);
        let start = self.words.len();
        self.words.resize(start + n, 0);
        encode_chunk(&self.pending, self.width, &mut self.words[start..]);
        self.pending = [0; CHUNK_LEN];
        self.pending_len = 0;
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finalizes the vector, zero-padding the trailing chunk.
    pub fn finish(mut self) -> BitPackedVec {
        if self.pending_len > 0 {
            self.flush_chunk();
        }
        BitPackedVec { width: self.width, len: self.len, words: self.words }
    }
}

/// Bytes required to store `len` values at `width` (chunk-padded). Used by
/// page-chain writers to size pages.
pub fn packed_bytes(width: BitWidth, len: u64) -> usize {
    chunk_count(len) as usize * bytes_per_chunk(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, w: BitWidth) -> Vec<u64> {
        (0..len)
            .map(|i| {
                (0xD134_2543_DE82_EF95u64
                    .wrapping_mul(i as u64 ^ 0xABCD)
                    .rotate_right(i as u32 % 61))
                    & w.mask()
            })
            .collect()
    }

    #[test]
    fn get_matches_source_across_widths_and_lengths() {
        for bits in [0u32, 1, 3, 5, 7, 8, 11, 13, 16, 23, 31, 32, 33, 48, 63, 64] {
            let w = BitWidth::new(bits).unwrap();
            for len in [0usize, 1, 63, 64, 65, 130, 1000] {
                let values = sample(len, w);
                let v = BitPackedVec::from_values_with_width(&values, w);
                assert_eq!(v.len() as usize, len);
                for (i, &expect) in values.iter().enumerate() {
                    assert_eq!(v.get(i as u64), expect, "bits={bits} len={len} i={i}");
                }
                let collected: Vec<u64> = v.iter().collect();
                assert_eq!(collected, values);
            }
        }
    }

    #[test]
    fn mget_subranges() {
        let w = BitWidth::new(9).unwrap();
        let values = sample(500, w);
        let v = BitPackedVec::from_values_with_width(&values, w);
        let mut out = Vec::new();
        for (from, to) in [(0u64, 0u64), (0, 500), (3, 64), (64, 128), (63, 65), (100, 317)] {
            v.mget(from, to, &mut out);
            assert_eq!(out, &values[from as usize..to as usize], "{from}..{to}");
        }
    }

    #[test]
    fn from_values_picks_minimal_width() {
        let v = BitPackedVec::from_values(&[0, 5, 300]);
        assert_eq!(v.width().bits(), 9);
        let v = BitPackedVec::from_values(&[0, 0, 0]);
        assert_eq!(v.width().bits(), 0);
        assert_eq!(v.heap_bytes(), 0);
        assert_eq!(v.get(2), 0);
    }

    #[test]
    fn from_words_validates_length() {
        let w = BitWidth::new(8).unwrap();
        assert!(BitPackedVec::from_words(w, 64, vec![0; 8]).is_ok());
        assert!(BitPackedVec::from_words(w, 64, vec![0; 7]).is_err());
        assert!(BitPackedVec::from_words(w, 65, vec![0; 8]).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_rejects_oversized_value() {
        let mut b = BitPackedBuilder::new(BitWidth::new(3).unwrap());
        b.push(8);
    }

    #[test]
    fn packed_bytes_geometry() {
        let w = BitWidth::new(10).unwrap();
        assert_eq!(packed_bytes(w, 0), 0);
        assert_eq!(packed_bytes(w, 1), 80);
        assert_eq!(packed_bytes(w, 64), 80);
        assert_eq!(packed_bytes(w, 65), 160);
    }
}
