//! Prefix-encoded string value blocks (paper §3.2.1, Fig. 2).
//!
//! Dictionary pages store groups of up to 16 consecutive sorted values as a
//! *value block*. Within a block each value is front-coded against the
//! preceding value: we store the length of the shared prefix, then the
//! suffix. Large values are split into an **on-page** piece (stored literally
//! in the block) and an **off-page** section: a list of logical pointers to
//! pieces stored on separate overflow pages, plus the total value length.
//!
//! Invariant maintained by the builder: an entry's prefix never extends into
//! the *off-page* region of its predecessor, so the first
//! `prefix_len + on-page-suffix-len` bytes of every entry are materializable
//! from the block alone, and reconstructing one value fetches the off-page
//! pieces of **at most one** value — exactly the property the paper relies
//! on in `findByValueID`.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! block  := header entry{count}
//! header := count:u8                                      -- legacy, bit 7 clear
//!         | (count|0x80):u8 restart:u16{(count-1)/4}      -- restart offsets
//! entry  := prefix_len:u16 onpage_len:u32 flags:u8 suffix:[u8;onpage_len]
//!           [ nptr:u16 (page_no:u64 len:u32){nptr} total_len:u64 ]   -- iff flags&1
//! ```
//!
//! **Restart points.** Every [`RESTART_EVERY`]-th entry is stored with
//! `prefix_len == 0` and its block-relative byte offset recorded in the
//! header, so in-block lookup and materialization resume from the nearest
//! restart instead of replaying the front-coding chain from entry 0. Legacy
//! blocks (count byte with bit 7 clear, the format-0/1 page layout) parse
//! unchanged; the old parser rejects restart headers because `count | 0x80`
//! exceeds [`BLOCK_CAP`].
//!
//! **Compressed blocks.** Blocks may hold FSST-compressed keys (the chain's
//! codec descriptor says so; the block layout is byte-agnostic). Compressed
//! bytes do not preserve `memcmp` order, so [`ValueBlockView::find_compressed`]
//! compares compressed bytes for equality (deterministic encoding makes that
//! exact) and decompresses the accumulator only to decide ordering.

use crate::fsst::SymbolTable;
use crate::{EncodingError, Result};

/// Maximum number of values per block.
pub const BLOCK_CAP: usize = 16;

/// Interval between restart points: entries at indices `0, 4, 8, …` are
/// stored with a zero-length prefix so decoding can start there.
pub const RESTART_EVERY: usize = 4;

/// Count-byte flag: a restart-offset header follows the count byte.
const FLAG_RESTARTS: u8 = 0x80;

/// Low bits of the count byte carrying the entry count.
const COUNT_MASK: u8 = 0x7F;

/// Number of restart offsets recorded for a block of `count` entries
/// (entry 0 needs none: it always sits right after the header).
fn restart_slots(count: usize) -> usize {
    count.saturating_sub(1) / RESTART_EVERY
}

/// Encoded header length for a restart-format block of `count` entries.
fn restart_header_len(count: usize) -> usize {
    1 + 2 * restart_slots(count)
}

/// A logical pointer to one off-page piece of a large value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowRef {
    /// Logical page number (within the dictionary's overflow chain) holding
    /// this piece.
    pub page_no: u64,
    /// Length of the piece in bytes.
    pub len: u32,
}

/// One decoded entry of a value block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// Bytes shared with the previous entry's *materializable-on-page* part.
    pub prefix_len: u16,
    /// The on-page piece of the suffix.
    pub onpage: Vec<u8>,
    /// Logical pointers to off-page pieces (empty for small values).
    pub offpage: Vec<OverflowRef>,
    /// Total length of the full value in bytes.
    pub total_len: u64,
}

impl BlockEntry {
    /// Length of the part of this value reconstructible from the block alone.
    fn onpage_materializable(&self) -> usize {
        self.prefix_len as usize + self.onpage.len()
    }
}

/// Builds one value block from consecutive sorted keys.
pub struct ValueBlockBuilder {
    entries: Vec<BlockEntry>,
    /// Previous full key (for prefix computation).
    prev_key: Vec<u8>,
    /// On-page-materializable length of the previous entry.
    prev_onpage: usize,
    /// Encoded length of the entries serialized so far (header excluded).
    entries_len: usize,
}

impl ValueBlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ValueBlockBuilder {
            entries: Vec::new(),
            prev_key: Vec::new(),
            prev_onpage: 0,
            entries_len: 0,
        }
    }

    /// Number of entries pushed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the block holds [`BLOCK_CAP`] entries.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= BLOCK_CAP
    }

    /// Encoded size in bytes of the block built so far.
    pub fn byte_len(&self) -> usize {
        restart_header_len(self.entries.len()) + self.entries_len
    }

    /// Prefix length the entry at `idx` would share with the predecessor
    /// materializing `shared` raw bytes: zero at restart points.
    fn shared_at(&self, idx: usize, key: &[u8]) -> usize {
        if idx.is_multiple_of(RESTART_EVERY) {
            0
        } else {
            common_prefix(&self.prev_key, key)
                .min(self.prev_onpage)
                .min(u16::MAX as usize)
        }
    }

    /// Encoded size the block would have after pushing `key` (ignoring
    /// spill: assumes the whole suffix stays on-page). Used by page writers
    /// to decide when to close a page.
    pub fn projected_len(&self, key: &[u8]) -> usize {
        let idx = self.entries.len();
        let shared = self.shared_at(idx, key);
        restart_header_len(idx + 1) + self.entries_len + 2 + 4 + 1 + (key.len() - shared)
    }

    /// Suffix length `key` would store if pushed next (zero shared bytes at
    /// restart points). Lets page writers budget the entry separately from
    /// the restart-header growth that [`ValueBlockBuilder::projected_len`]
    /// folds in.
    pub fn next_suffix_len(&self, key: &[u8]) -> usize {
        key.len() - self.shared_at(self.entries.len(), key)
    }

    /// Appends a key. `inline_limit` bounds the on-page suffix bytes; the
    /// excess is handed to `alloc_overflow`, which must store the bytes on
    /// overflow pages and return the logical pointers.
    ///
    /// Keys must be pushed in non-decreasing order (dictionary order).
    ///
    /// # Panics
    /// Panics if the block is full or keys are pushed out of order.
    pub fn push(
        &mut self,
        key: &[u8],
        inline_limit: usize,
        alloc_overflow: &mut dyn FnMut(&[u8]) -> Vec<OverflowRef>,
    ) {
        assert!(
            self.entries.is_empty() || self.prev_key.as_slice() <= key,
            "keys must be pushed in sorted order"
        );
        self.push_unordered(key, inline_limit, alloc_overflow);
    }

    /// Like [`ValueBlockBuilder::push`], but without the sorted-order
    /// assertion. Used for blocks of FSST-compressed keys: the *raw* keys
    /// are sorted, but their compressed forms need not be `memcmp`-ordered.
    pub fn push_unordered(
        &mut self,
        key: &[u8],
        inline_limit: usize,
        alloc_overflow: &mut dyn FnMut(&[u8]) -> Vec<OverflowRef>,
    ) {
        assert!(!self.is_full(), "value block is full");
        let shared = self.shared_at(self.entries.len(), key);
        let suffix = &key[shared..];
        let (onpage, offpage) = if suffix.len() > inline_limit {
            (suffix[..inline_limit].to_vec(), alloc_overflow(&suffix[inline_limit..]))
        } else {
            (suffix.to_vec(), Vec::new())
        };
        let entry = BlockEntry {
            prefix_len: shared as u16,
            onpage,
            offpage,
            total_len: key.len() as u64,
        };
        self.entries_len += entry_encoded_len(&entry);
        self.prev_onpage = entry.onpage_materializable();
        self.prev_key.clear();
        self.prev_key.extend_from_slice(key);
        self.entries.push(entry);
    }

    /// Serializes the block.
    ///
    /// # Panics
    /// Panics on an empty block.
    pub fn finish(self) -> Vec<u8> {
        assert!(!self.entries.is_empty(), "cannot encode an empty value block");
        let count = self.entries.len();
        let header = restart_header_len(count);
        let mut body = Vec::with_capacity(self.entries_len);
        let mut offsets = Vec::with_capacity(restart_slots(count));
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 && i % RESTART_EVERY == 0 {
                offsets.push(header + body.len());
            }
            body.extend_from_slice(&e.prefix_len.to_le_bytes());
            body.extend_from_slice(&(e.onpage.len() as u32).to_le_bytes());
            body.push(u8::from(!e.offpage.is_empty()));
            body.extend_from_slice(&e.onpage);
            if !e.offpage.is_empty() {
                body.extend_from_slice(&(e.offpage.len() as u16).to_le_bytes());
                for r in &e.offpage {
                    body.extend_from_slice(&r.page_no.to_le_bytes());
                    body.extend_from_slice(&r.len.to_le_bytes());
                }
                body.extend_from_slice(&e.total_len.to_le_bytes());
            }
        }
        debug_assert_eq!(body.len(), self.entries_len);
        if offsets.iter().any(|&o| o > u16::MAX as usize) {
            // Degenerate giant entries pushed a restart past the u16 offset
            // range: fall back to the legacy header (no restarts). Readers
            // handle both; `byte_len()` merely over-reported a few bytes.
            let mut out = Vec::with_capacity(1 + body.len());
            out.push(count as u8);
            out.extend_from_slice(&body);
            return out;
        }
        let mut out = Vec::with_capacity(header + body.len());
        out.push(count as u8 | FLAG_RESTARTS);
        for o in &offsets {
            out.extend_from_slice(&(*o as u16).to_le_bytes());
        }
        out.extend_from_slice(&body);
        debug_assert_eq!(out.len(), header + self.entries_len);
        out
    }
}

impl Default for ValueBlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

fn entry_encoded_len(e: &BlockEntry) -> usize {
    let mut n = 2 + 4 + 1 + e.onpage.len();
    if !e.offpage.is_empty() {
        n += 2 + e.offpage.len() * 12 + 8;
    }
    n
}

/// Longest common prefix length of two byte strings.
pub fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A decoded value block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueBlock {
    entries: Vec<BlockEntry>,
}

impl ValueBlock {
    /// Parses a block from its wire format, validating structure. Accepts
    /// both the legacy header and the restart-offset header.
    pub fn parse(bytes: &[u8]) -> Result<(ValueBlock, usize)> {
        let mut cur = Cursor { bytes, pos: 0 };
        let first = cur.u8()?;
        let has_restarts = first & FLAG_RESTARTS != 0;
        let count = (first & COUNT_MASK) as usize;
        if count == 0 || count > BLOCK_CAP {
            return Err(corrupt(format!("value block count {count} outside 1..=16")));
        }
        let mut restarts = Vec::new();
        if has_restarts {
            for _ in 0..restart_slots(count) {
                restarts.push(cur.u16()? as usize);
            }
        }
        let mut entries = Vec::with_capacity(count);
        let mut onpage_prev = 0usize;
        for i in 0..count {
            let entry_start = cur.pos;
            let prefix_len = cur.u16()?;
            if has_restarts && i > 0 && i % RESTART_EVERY == 0 {
                let slot = i / RESTART_EVERY - 1;
                if restarts[slot] != entry_start {
                    return Err(corrupt(format!(
                        "restart offset {} for entry {i} does not match its position {entry_start}",
                        restarts[slot]
                    )));
                }
                if prefix_len != 0 {
                    return Err(corrupt(format!("restart entry {i} has nonzero prefix")));
                }
            }
            let onpage_len = cur.u32()? as usize;
            let flags = cur.u8()?;
            if flags > 1 {
                return Err(corrupt(format!("entry {i}: unknown flags {flags:#x}")));
            }
            if i == 0 && prefix_len != 0 {
                return Err(corrupt("first entry has nonzero prefix".into()));
            }
            if i > 0 && prefix_len as usize > onpage_prev {
                return Err(corrupt(format!(
                    "entry {i}: prefix {prefix_len} exceeds predecessor's on-page part {onpage_prev}"
                )));
            }
            let onpage = cur.take(onpage_len)?.to_vec();
            let (offpage, total_len) = if flags & 1 == 1 {
                let nptr = cur.u16()? as usize;
                if nptr == 0 {
                    return Err(corrupt(format!("entry {i}: off-page flag with zero pointers")));
                }
                let mut ptrs = Vec::with_capacity(nptr);
                for _ in 0..nptr {
                    let page_no = cur.u64()?;
                    let len = cur.u32()?;
                    ptrs.push(OverflowRef { page_no, len });
                }
                let total = cur.u64()?;
                let off_sum: u64 = ptrs.iter().map(|r| u64::from(r.len)).sum();
                if total != prefix_len as u64 + onpage_len as u64 + off_sum {
                    return Err(corrupt(format!(
                        "entry {i}: total_len {total} != prefix {prefix_len} + onpage {onpage_len} + offpage {off_sum}"
                    )));
                }
                (ptrs, total)
            } else {
                (Vec::new(), (prefix_len as usize + onpage_len) as u64)
            };
            onpage_prev = prefix_len as usize + onpage_len;
            entries.push(BlockEntry { prefix_len, onpage, offpage, total_len });
        }
        Ok((ValueBlock { entries }, cur.pos))
    }

    /// Number of values in the block.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the block holds no values (never true for parsed blocks).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw entries.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }

    /// Reconstructs the on-page-materializable part of entry `idx`,
    /// replaying the front-coding chain from the nearest preceding entry
    /// with a zero-length prefix (a restart point, or entry 0).
    pub fn materialize_onpage(&self, idx: usize) -> Vec<u8> {
        assert!(idx < self.entries.len());
        let start = (0..=idx).rev().find(|&i| self.entries[i].prefix_len == 0).unwrap();
        let mut acc: Vec<u8> = Vec::new();
        for e in &self.entries[start..=idx] {
            acc.truncate(e.prefix_len as usize);
            acc.extend_from_slice(&e.onpage);
        }
        acc
    }

    /// Reconstructs the complete value of entry `idx`, fetching off-page
    /// pieces (of this one entry only) through `fetch`.
    pub fn materialize(
        &self,
        idx: usize,
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<Vec<u8>> {
        let mut v = self.materialize_onpage(idx);
        for r in &self.entries[idx].offpage {
            let piece = fetch(r)?;
            if piece.len() != r.len as usize {
                return Err(corrupt(format!(
                    "overflow piece on page {} has {} bytes, expected {}",
                    r.page_no,
                    piece.len(),
                    r.len
                )));
            }
            v.extend_from_slice(&piece);
        }
        if v.len() as u64 != self.entries[idx].total_len {
            return Err(corrupt(format!(
                "materialized {} bytes, expected {}",
                v.len(),
                self.entries[idx].total_len
            )));
        }
        Ok(v)
    }

    /// Searches the (sorted) block for `key`, fetching off-page pieces only
    /// when the on-page part is an inconclusive prefix match. Returns the
    /// in-block index on a hit, or `Err(slot)` — the insertion point — on a
    /// miss (mirroring `slice::binary_search`).
    pub fn find(
        &self,
        key: &[u8],
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<std::result::Result<usize, usize>> {
        let mut acc: Vec<u8> = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            acc.truncate(e.prefix_len as usize);
            acc.extend_from_slice(&e.onpage);
            let onpage_cmp = acc.as_slice().cmp(&key[..key.len().min(acc.len())]);
            let ord = if e.offpage.is_empty() {
                acc.as_slice().cmp(key)
            } else if onpage_cmp != std::cmp::Ordering::Equal {
                // The on-page part already differs from key's prefix of the
                // same length; the full value compares the same way.
                onpage_cmp
            } else {
                // On-page part is a prefix of `key` (or equal); must fetch.
                let full = self.materialize(i, fetch)?;
                full.as_slice().cmp(key)
            };
            match ord {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Ok(i)),
                std::cmp::Ordering::Greater => return Ok(Err(i)),
            }
        }
        Ok(Err(self.entries.len()))
    }
}

/// A zero-copy view over an encoded value block: entries are decoded on the
/// fly from the page bytes, with no per-entry allocation. This is the hot
/// read path of the paged dictionary; [`ValueBlock`] (the owning decoder)
/// remains the reference implementation and the two are cross-checked by
/// property tests.
#[derive(Clone, Copy)]
pub struct ValueBlockView<'a> {
    bytes: &'a [u8],
    count: usize,
    has_restarts: bool,
}

/// One entry of a [`ValueBlockView`], borrowing from the page.
pub struct EntryView<'a> {
    /// Bytes shared with the predecessor's on-page-materializable part.
    pub prefix_len: usize,
    /// The on-page piece of the suffix.
    pub onpage: &'a [u8],
    /// Raw bytes of the off-page pointer array (12 bytes per pointer);
    /// empty for fully inline values.
    offpage_raw: &'a [u8],
    /// Total length of the full value.
    pub total_len: u64,
}

impl EntryView<'_> {
    /// Number of off-page pointers.
    pub fn offpage_count(&self) -> usize {
        self.offpage_raw.len() / 12
    }

    /// The `i`-th off-page pointer.
    pub fn offpage(&self, i: usize) -> OverflowRef {
        let b = &self.offpage_raw[i * 12..i * 12 + 12];
        OverflowRef {
            page_no: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            len: u32::from_le_bytes(b[8..12].try_into().unwrap()),
        }
    }

    /// Iterates the off-page pointers.
    pub fn offpage_refs(&self) -> impl Iterator<Item = OverflowRef> + '_ {
        (0..self.offpage_count()).map(|i| self.offpage(i))
    }
}

impl<'a> ValueBlockView<'a> {
    /// Creates a view over a block starting at `bytes[0]`. Only the count
    /// byte is validated here; entry structure is validated as entries are
    /// walked.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        if bytes.is_empty() {
            return Err(corrupt("empty block".into()));
        }
        let has_restarts = bytes[0] & FLAG_RESTARTS != 0;
        let count = (bytes[0] & COUNT_MASK) as usize;
        if count == 0 || count > BLOCK_CAP {
            return Err(corrupt(format!("value block count {count} outside 1..=16")));
        }
        if has_restarts && bytes.len() < restart_header_len(count) {
            return Err(corrupt("truncated restart header".into()));
        }
        Ok(ValueBlockView { bytes, count, has_restarts })
    }

    /// Number of restart points after entry 0 (groups are `RESTART_EVERY`
    /// entries wide; group `g > 0` starts at the recorded offset).
    fn groups(&self) -> usize {
        if self.has_restarts {
            restart_slots(self.count)
        } else {
            0
        }
    }

    /// Encoded header length of this block.
    fn header_len(&self) -> usize {
        if self.has_restarts {
            restart_header_len(self.count)
        } else {
            1
        }
    }

    /// Byte position where group `g` starts (`g == 0` ⇒ right after the
    /// header; `g >= 1` ⇒ the recorded restart offset of entry `g·4`).
    fn group_pos(&self, g: usize) -> usize {
        if g == 0 {
            self.header_len()
        } else {
            let off = 1 + 2 * (g - 1);
            u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap()) as usize
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the block holds no entries (never true after `parse`).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Walks entries `0..=last`, calling `visit` for each. `visit` returns
    /// `true` to continue.
    pub fn walk(
        &self,
        last: usize,
        visit: impl FnMut(usize, &EntryView<'a>) -> bool,
    ) -> Result<()> {
        self.walk_at(self.header_len(), 0, last, visit)
    }

    /// Walks entries `first..=last` starting at byte position `pos` (the
    /// start of entry `first`, which must be entry 0 or a restart point;
    /// its zero prefix is validated on the way).
    fn walk_at(
        &self,
        mut pos: usize,
        first: usize,
        last: usize,
        mut visit: impl FnMut(usize, &EntryView<'a>) -> bool,
    ) -> Result<()> {
        debug_assert!(first <= last && last < self.count);
        for i in first..=last {
            let need = |n: usize, pos: usize| -> Result<()> {
                if pos + n > self.bytes.len() {
                    Err(corrupt(format!("truncated block at entry {i}")))
                } else {
                    Ok(())
                }
            };
            need(7, pos)?;
            let prefix_len =
                u16::from_le_bytes(self.bytes[pos..pos + 2].try_into().unwrap()) as usize;
            let onpage_len =
                u32::from_le_bytes(self.bytes[pos + 2..pos + 6].try_into().unwrap()) as usize;
            let flags = self.bytes[pos + 6];
            pos += 7;
            if i == first && first > 0 && prefix_len != 0 {
                return Err(corrupt(format!("restart entry {i} has nonzero prefix")));
            }
            need(onpage_len, pos)?;
            let onpage = &self.bytes[pos..pos + onpage_len];
            pos += onpage_len;
            let (offpage_raw, total_len) = if flags & 1 == 1 {
                need(2, pos)?;
                let nptr =
                    u16::from_le_bytes(self.bytes[pos..pos + 2].try_into().unwrap()) as usize;
                pos += 2;
                need(nptr * 12 + 8, pos)?;
                let raw = &self.bytes[pos..pos + nptr * 12];
                pos += nptr * 12;
                let total = u64::from_le_bytes(self.bytes[pos..pos + 8].try_into().unwrap());
                pos += 8;
                (raw, total)
            } else {
                (&self.bytes[0..0], (prefix_len + onpage_len) as u64)
            };
            let entry = EntryView { prefix_len, onpage, offpage_raw, total_len };
            if !visit(i, &entry) {
                break;
            }
        }
        Ok(())
    }

    /// Reconstructs the on-page-materializable part of entry `idx` into
    /// `acc` (cleared first) and returns the entry's off-page raw pointer
    /// bytes + total length, so the caller can fetch overflow pieces.
    pub fn materialize_onpage_into(
        &self,
        idx: usize,
        acc: &mut Vec<u8>,
    ) -> Result<(Vec<OverflowRef>, u64)> {
        acc.clear();
        let mut offpage = Vec::new();
        let mut total = 0u64;
        let g = (idx / RESTART_EVERY).min(self.groups());
        self.walk_at(self.group_pos(g), g * RESTART_EVERY, idx, |i, e| {
            acc.truncate(e.prefix_len);
            acc.extend_from_slice(e.onpage);
            if i == idx {
                offpage = e.offpage_refs().collect();
                total = e.total_len;
            }
            true
        })?;
        Ok((offpage, total))
    }

    /// Reconstructs the complete value of entry `idx`, fetching off-page
    /// pieces of that one entry through `fetch`.
    pub fn materialize(
        &self,
        idx: usize,
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<Vec<u8>> {
        let mut acc = Vec::new();
        let (offpage, total) = self.materialize_onpage_into(idx, &mut acc)?;
        for r in &offpage {
            let piece = fetch(r)?;
            if piece.len() != r.len as usize {
                return Err(corrupt(format!(
                    "overflow piece on page {} has {} bytes, expected {}",
                    r.page_no,
                    piece.len(),
                    r.len
                )));
            }
            acc.extend_from_slice(&piece);
        }
        if acc.len() as u64 != total {
            return Err(corrupt(format!("materialized {} bytes, expected {total}", acc.len())));
        }
        Ok(acc)
    }

    /// Materializes entry 0's full value (block routing key) with overflow
    /// fetch only when its on-page part is an inconclusive prefix of `key`;
    /// returns its ordering versus `key`.
    pub fn compare_first(
        &self,
        key: &[u8],
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<std::cmp::Ordering> {
        let mut result = std::cmp::Ordering::Equal;
        let mut needs_fetch = false;
        self.walk(0, |_, e| {
            let onpage = e.onpage; // entry 0 has prefix_len == 0
            let cmp = onpage.cmp(&key[..key.len().min(onpage.len())]);
            if e.offpage_count() == 0 {
                result = onpage.cmp(key);
            } else if cmp != std::cmp::Ordering::Equal {
                result = cmp;
            } else {
                needs_fetch = true;
            }
            false
        })?;
        if needs_fetch {
            let full = self.materialize(0, fetch)?;
            return Ok(full.as_slice().cmp(key));
        }
        Ok(result)
    }

    /// Searches the (sorted) block for `key` without allocating per entry;
    /// semantics match [`ValueBlock::find`].
    pub fn find(
        &self,
        key: &[u8],
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<std::result::Result<usize, usize>> {
        let start = self.seek_group(|onpage, has_offpage| {
            // Conclusively Less than `key`? Restart entries have a zero
            // prefix, so `onpage` is the leading bytes of the full value.
            let cmp = onpage.cmp(&key[..key.len().min(onpage.len())]);
            Ok(if has_offpage {
                cmp == std::cmp::Ordering::Less
            } else {
                onpage.cmp(key) == std::cmp::Ordering::Less
            })
        })?;
        let mut acc: Vec<u8> = Vec::new();
        let mut outcome: std::result::Result<usize, usize> = Err(self.count);
        let mut pending_fetch: Option<usize> = None;
        self.walk_at(self.group_pos(start), start * RESTART_EVERY, self.count - 1, |i, e| {
            acc.truncate(e.prefix_len);
            acc.extend_from_slice(e.onpage);
            let onpage_cmp = acc.as_slice().cmp(&key[..key.len().min(acc.len())]);
            let ord = if e.offpage_count() == 0 {
                acc.as_slice().cmp(key)
            } else if onpage_cmp != std::cmp::Ordering::Equal {
                onpage_cmp
            } else {
                // Must fetch this entry's overflow to decide; defer.
                pending_fetch = Some(i);
                return false;
            };
            match ord {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => {
                    outcome = Ok(i);
                    false
                }
                std::cmp::Ordering::Greater => {
                    outcome = Err(i);
                    false
                }
            }
        })?;
        if let Some(i) = pending_fetch {
            let full = self.materialize(i, fetch)?;
            return Ok(match full.as_slice().cmp(key) {
                std::cmp::Ordering::Equal => Ok(i),
                std::cmp::Ordering::Greater => Err(i),
                std::cmp::Ordering::Less => {
                    // Continue the scan past i with a recursive tail on the
                    // remaining entries: rare path (long shared prefixes of
                    // large values), done via the owning decoder.
                    let (block, _) = ValueBlock::parse(self.bytes)?;
                    block.find(key, fetch)?
                }
            });
        }
        Ok(outcome)
    }

    /// Picks the deepest restart group whose leading entry `is_less` judges
    /// *conclusively* below the probe. Every entry before that group is
    /// then strictly below the probe too (the block is sorted), so searches
    /// may start the front-coding walk at its restart point.
    fn seek_group(
        &self,
        mut is_less: impl FnMut(&[u8], bool) -> Result<bool>,
    ) -> Result<usize> {
        let mut start = 0usize;
        for g in 1..=self.groups() {
            let mut verdict: Result<bool> = Ok(false);
            self.walk_at(self.group_pos(g), g * RESTART_EVERY, g * RESTART_EVERY, |_, e| {
                verdict = is_less(e.onpage, e.offpage_count() > 0);
                false
            })?;
            if verdict? {
                start = g;
            } else {
                break;
            }
        }
        Ok(start)
    }

    /// Orders one FSST-compressed entry (on-page part `acc`) against the
    /// raw probe `key` without fetching overflow pieces. `None` means the
    /// decoded on-page part is an inconclusive proper prefix of `key`.
    fn cmp_compressed_nofetch(
        &self,
        acc: &[u8],
        has_offpage: bool,
        key: &[u8],
        table: &SymbolTable,
    ) -> Result<Option<std::cmp::Ordering>> {
        use std::cmp::Ordering;
        let mut raw = Vec::with_capacity(acc.len() * 2);
        if !has_offpage {
            table.decode_into(acc, &mut raw)?;
            return Ok(Some(raw.as_slice().cmp(key)));
        }
        table.decode_prefix_into(acc, &mut raw)?;
        let min = raw.len().min(key.len());
        Ok(match raw[..min].cmp(&key[..min]) {
            // The decoded on-page part already covers `key`, and the entry
            // continues off-page with at least one more raw byte.
            Ordering::Equal if raw.len() >= key.len() => Some(Ordering::Greater),
            Ordering::Equal => None,
            ord => Some(ord),
        })
    }

    /// Materializes entry 0 of an FSST-compressed block and orders it
    /// against the raw probe `key`, fetching overflow only when the on-page
    /// part is an inconclusive prefix. Compressed counterpart of
    /// [`ValueBlockView::compare_first`].
    pub fn compare_first_compressed(
        &self,
        key: &[u8],
        table: &SymbolTable,
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<std::cmp::Ordering> {
        let mut acc = Vec::new();
        let mut has_offpage = false;
        self.walk(0, |_, e| {
            acc.extend_from_slice(e.onpage); // entry 0 has prefix_len == 0
            has_offpage = e.offpage_count() > 0;
            false
        })?;
        match self.cmp_compressed_nofetch(&acc, has_offpage, key, table)? {
            Some(ord) => Ok(ord),
            None => {
                let full = table.decode(&self.materialize(0, fetch)?)?;
                Ok(full.as_slice().cmp(key))
            }
        }
    }

    /// Searches a block of FSST-compressed entries for the raw probe `key`,
    /// whose deterministic encoding is `enc_key`. Equality is decided on
    /// **compressed** bytes (no decoding on the hit path); ordering — which
    /// compressed bytes do not preserve — decompresses the accumulated
    /// on-page part. Result semantics match [`ValueBlockView::find`] over
    /// the raw key order.
    pub fn find_compressed(
        &self,
        key: &[u8],
        enc_key: &[u8],
        table: &SymbolTable,
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<std::result::Result<usize, usize>> {
        self.find_compressed_from(0, key, enc_key, table, fetch)
    }

    /// [`ValueBlockView::find_compressed`] restricted to entries `from..`;
    /// the continuation used after an overflow fetch resolves to `Less`.
    fn find_compressed_from(
        &self,
        from: usize,
        key: &[u8],
        enc_key: &[u8],
        table: &SymbolTable,
        fetch: &mut dyn FnMut(&OverflowRef) -> Result<Vec<u8>>,
    ) -> Result<std::result::Result<usize, usize>> {
        use std::cmp::Ordering;
        if from >= self.count {
            return Ok(Err(self.count));
        }
        let start = if from == 0 {
            self.seek_group(|onpage, has_offpage| {
                Ok(matches!(
                    self.cmp_compressed_nofetch(onpage, has_offpage, key, table)?,
                    Some(Ordering::Less)
                ))
            })?
        } else {
            (from / RESTART_EVERY).min(self.groups())
        };
        let mut acc: Vec<u8> = Vec::new();
        let mut outcome: std::result::Result<usize, usize> = Err(self.count);
        let mut pending_fetch: Option<usize> = None;
        let mut decode_err: Option<EncodingError> = None;
        self.walk_at(self.group_pos(start), start * RESTART_EVERY, self.count - 1, |i, e| {
            acc.truncate(e.prefix_len);
            acc.extend_from_slice(e.onpage);
            if i < from {
                return true;
            }
            let has_offpage = e.offpage_count() > 0;
            if !has_offpage && acc.as_slice() == enc_key {
                outcome = Ok(i);
                return false;
            }
            let ord = match self.cmp_compressed_nofetch(&acc, has_offpage, key, table) {
                Ok(Some(ord)) => ord,
                Ok(None) => {
                    pending_fetch = Some(i);
                    return false;
                }
                Err(e2) => {
                    decode_err = Some(e2);
                    return false;
                }
            };
            match ord {
                Ordering::Less => true,
                Ordering::Equal => {
                    outcome = Ok(i);
                    false
                }
                Ordering::Greater => {
                    outcome = Err(i);
                    false
                }
            }
        })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        if let Some(i) = pending_fetch {
            let full = table.decode(&self.materialize(i, fetch)?)?;
            return Ok(match full.as_slice().cmp(key) {
                Ordering::Equal => Ok(i),
                Ordering::Greater => Err(i),
                Ordering::Less => self.find_compressed_from(i + 1, key, enc_key, table, fetch)?,
            });
        }
        Ok(outcome)
    }
}

fn corrupt(reason: String) -> EncodingError {
    EncodingError::CorruptBlock { reason }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(corrupt(format!(
                "truncated block: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Test overflow store: allocates a fresh "page" per piece.
    struct OverflowSim {
        pages: HashMap<u64, Vec<u8>>,
        next: u64,
        piece_cap: usize,
    }

    impl OverflowSim {
        fn new(piece_cap: usize) -> Self {
            OverflowSim { pages: HashMap::new(), next: 0, piece_cap }
        }
        fn alloc(&mut self, bytes: &[u8]) -> Vec<OverflowRef> {
            bytes
                .chunks(self.piece_cap)
                .map(|c| {
                    let p = self.next;
                    self.next += 1;
                    self.pages.insert(p, c.to_vec());
                    OverflowRef { page_no: p, len: c.len() as u32 }
                })
                .collect()
        }
        fn fetch(&self) -> impl FnMut(&OverflowRef) -> Result<Vec<u8>> + '_ {
            |r: &OverflowRef| Ok(self.pages[&r.page_no].clone())
        }
    }

    fn build(keys: &[&[u8]], inline_limit: usize, sim: &mut OverflowSim) -> Vec<u8> {
        let mut b = ValueBlockBuilder::new();
        for k in keys {
            b.push(k, inline_limit, &mut |bytes| sim.alloc(bytes));
        }
        b.finish()
    }

    #[test]
    fn roundtrip_small_strings() {
        let keys: Vec<&[u8]> = vec![b"apple", b"applesauce", b"apply", b"banana", b"band"];
        let mut sim = OverflowSim::new(8);
        let bytes = build(&keys, 1024, &mut sim);
        let (block, consumed) = ValueBlock::parse(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(block.len(), 5);
        // Prefix compression actually happened.
        assert_eq!(block.entries()[1].prefix_len, 5); // "apple" ∩ "applesauce"
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(block.materialize(i, &mut sim.fetch()).unwrap(), *k);
        }
    }

    #[test]
    fn roundtrip_large_strings_with_overflow() {
        let big1: Vec<u8> = std::iter::repeat(b"xyz".iter().copied()).flatten().take(500).collect();
        let mut big2 = big1.clone();
        big2.extend_from_slice(b"~tail-differs");
        let keys: Vec<&[u8]> = vec![b"aaa", &big1, &big2, b"zz"];
        let mut sim = OverflowSim::new(64);
        let bytes = build(&keys, 16, &mut sim);
        let (block, _) = ValueBlock::parse(&bytes).unwrap();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(block.materialize(i, &mut sim.fetch()).unwrap(), *k, "entry {i}");
        }
        // big2's prefix against big1 is capped at big1's on-page part:
        // fetching big2 must not require big1's overflow pages.
        let e2 = &block.entries()[2];
        assert!(e2.prefix_len as usize <= block.entries()[1].prefix_len as usize + block.entries()[1].onpage.len());
    }

    #[test]
    fn find_hits_and_misses() {
        let keys: Vec<&[u8]> = vec![b"cat", b"catalog", b"dog", b"dove"];
        let mut sim = OverflowSim::new(8);
        let bytes = build(&keys, 1024, &mut sim);
        let (block, _) = ValueBlock::parse(&bytes).unwrap();
        let mut fetch = sim.fetch();
        assert_eq!(block.find(b"cat", &mut fetch).unwrap(), Ok(0));
        assert_eq!(block.find(b"dog", &mut fetch).unwrap(), Ok(2));
        assert_eq!(block.find(b"dove", &mut fetch).unwrap(), Ok(3));
        assert_eq!(block.find(b"aardvark", &mut fetch).unwrap(), Err(0));
        assert_eq!(block.find(b"cata", &mut fetch).unwrap(), Err(1));
        assert_eq!(block.find(b"zebra", &mut fetch).unwrap(), Err(4));
    }

    #[test]
    fn find_on_large_strings_fetches_only_when_prefix_matches() {
        let mut big: Vec<u8> = b"big-".to_vec();
        big.extend((0..300u32).flat_map(|i| i.to_le_bytes()));
        let keys: Vec<&[u8]> = vec![b"a", &big];
        let mut sim = OverflowSim::new(32);
        let bytes = build(&keys, 8, &mut sim);
        let (block, _) = ValueBlock::parse(&bytes).unwrap();
        let mut fetched = 0usize;
        {
            let mut counting_fetch = |r: &OverflowRef| {
                fetched += 1;
                Ok(sim.pages[&r.page_no].clone())
            };
            // Key that diverges within the on-page part: no fetch needed.
            assert_eq!(block.find(b"zzz", &mut counting_fetch).unwrap(), Err(2));
        }
        assert_eq!(fetched, 0);
        // Exact match on the big key requires fetching its pieces.
        assert_eq!(block.find(&big, &mut sim.fetch()).unwrap(), Ok(1));
    }

    #[test]
    fn parse_rejects_corruption() {
        let keys: Vec<&[u8]> = vec![b"alpha", b"beta"];
        let mut sim = OverflowSim::new(8);
        let bytes = build(&keys, 1024, &mut sim);
        // Truncation.
        assert!(ValueBlock::parse(&bytes[..bytes.len() - 1]).is_err());
        // Zero count.
        let mut z = bytes.clone();
        z[0] = 0;
        assert!(ValueBlock::parse(&z).is_err());
        // Count above capacity.
        z[0] = 17;
        assert!(ValueBlock::parse(&z).is_err());
        // Nonzero prefix on the first entry.
        let mut p = bytes.clone();
        p[1] = 3;
        assert!(ValueBlock::parse(&p).is_err());
    }

    #[test]
    fn duplicate_keys_are_allowed() {
        // Dictionaries are deduplicated, but separator blocks may legally
        // carry equal adjacent keys; the builder accepts non-decreasing.
        let keys: Vec<&[u8]> = vec![b"same", b"same"];
        let mut sim = OverflowSim::new(8);
        let bytes = build(&keys, 1024, &mut sim);
        let (block, _) = ValueBlock::parse(&bytes).unwrap();
        assert_eq!(block.materialize(1, &mut sim.fetch()).unwrap(), b"same");
    }

    #[test]
    fn projected_len_matches_actual_growth() {
        let mut sim = OverflowSim::new(8);
        let mut b = ValueBlockBuilder::new();
        b.push(b"prefix-one", 1024, &mut |x| sim.alloc(x));
        let projected = b.projected_len(b"prefix-two");
        b.push(b"prefix-two", 1024, &mut |x| sim.alloc(x));
        assert_eq!(b.byte_len(), projected);
        assert_eq!(b.finish().len(), projected);
    }

    #[test]
    fn projected_len_matches_across_restart_boundaries() {
        let mut sim = OverflowSim::new(8);
        let mut b = ValueBlockBuilder::new();
        for i in 0..BLOCK_CAP {
            let key = format!("restart-growth-{i:02}").into_bytes();
            let projected = b.projected_len(&key);
            b.push(&key, 1024, &mut |x| sim.alloc(x));
            assert_eq!(b.byte_len(), projected, "entry {i}");
        }
        let expected = b.byte_len();
        assert_eq!(b.finish().len(), expected);
    }

    #[test]
    fn restart_entries_have_zero_prefix_and_recorded_offsets() {
        let keys: Vec<Vec<u8>> =
            (0..BLOCK_CAP).map(|i| format!("shared-prefix-{i:02}").into_bytes()).collect();
        let mut sim = OverflowSim::new(8);
        let mut b = ValueBlockBuilder::new();
        for k in &keys {
            b.push(k, 1024, &mut |x| sim.alloc(x));
        }
        let bytes = b.finish();
        assert_eq!(bytes[0], BLOCK_CAP as u8 | 0x80);
        let (block, consumed) = ValueBlock::parse(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        for (i, e) in block.entries().iter().enumerate() {
            if i % RESTART_EVERY == 0 {
                assert_eq!(e.prefix_len, 0, "entry {i} is a restart");
            } else {
                assert!(e.prefix_len > 0, "entry {i} front-codes");
            }
        }
        let mut fetch = sim.fetch();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(&block.materialize(i, &mut fetch).unwrap(), k);
            assert_eq!(block.find(k, &mut fetch).unwrap(), Ok(i));
        }
    }

    #[test]
    fn legacy_blocks_without_restart_header_still_parse() {
        let keys: Vec<Vec<u8>> =
            (0..BLOCK_CAP).map(|i| format!("legacy-key-{i:02}").into_bytes()).collect();
        let mut sim = OverflowSim::new(8);
        let mut b = ValueBlockBuilder::new();
        for k in &keys {
            b.push(k, 1024, &mut |x| sim.alloc(x));
        }
        let bytes = b.finish();
        // Reconstruct the legacy wire form: plain count byte, no offsets.
        let header = 1 + 2 * ((BLOCK_CAP - 1) / RESTART_EVERY);
        let mut legacy = vec![BLOCK_CAP as u8];
        legacy.extend_from_slice(&bytes[header..]);
        let (block, consumed) = ValueBlock::parse(&legacy).unwrap();
        assert_eq!(consumed, legacy.len());
        let view = ValueBlockView::parse(&legacy).unwrap();
        let mut fetch = sim.fetch();
        let mut fetch2 = sim.fetch();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(&block.materialize(i, &mut fetch).unwrap(), k);
            assert_eq!(&view.materialize(i, &mut fetch2).unwrap(), k);
            assert_eq!(view.find(k, &mut fetch2).unwrap(), Ok(i));
        }
    }
}

#[cfg(test)]
mod view_tests {
    use super::*;
    use std::collections::HashMap;

    fn build_random(
        keys: &[Vec<u8>],
        inline_limit: usize,
    ) -> (Vec<u8>, HashMap<u64, Vec<u8>>) {
        let mut pages = HashMap::new();
        let mut next = 0u64;
        let mut b = ValueBlockBuilder::new();
        for k in keys {
            b.push(k, inline_limit, &mut |bytes: &[u8]| {
                bytes
                    .chunks(16)
                    .map(|c| {
                        let p = next;
                        next += 1;
                        pages.insert(p, c.to_vec());
                        OverflowRef { page_no: p, len: c.len() as u32 }
                    })
                    .collect()
            });
        }
        (b.finish(), pages)
    }

    #[test]
    fn view_agrees_with_owned_decoder() {
        let mut keys: Vec<Vec<u8>> = (0..14u32)
            .map(|i| {
                let mut k = format!("entry-{i:02}-").into_bytes();
                k.extend(std::iter::repeat_n(b'y', (i as usize * 13) % 90));
                k
            })
            .collect();
        keys.sort();
        keys.dedup();
        let (bytes, pages) = build_random(&keys, 12);
        let (owned, _) = ValueBlock::parse(&bytes).unwrap();
        let view = ValueBlockView::parse(&bytes).unwrap();
        assert_eq!(owned.len(), view.len());
        let mut fetch_o = |r: &OverflowRef| Ok(pages[&r.page_no].clone());
        let mut fetch_v = |r: &OverflowRef| Ok(pages[&r.page_no].clone());
        for i in 0..keys.len() {
            assert_eq!(
                owned.materialize(i, &mut fetch_o).unwrap(),
                view.materialize(i, &mut fetch_v).unwrap(),
                "entry {i}"
            );
        }
        // Probes: every key, plus misses around them.
        for k in &keys {
            assert_eq!(
                owned.find(k, &mut fetch_o).unwrap(),
                view.find(k, &mut fetch_v).unwrap()
            );
            let mut miss = k.clone();
            miss.push(0);
            assert_eq!(
                owned.find(&miss, &mut fetch_o).unwrap(),
                view.find(&miss, &mut fetch_v).unwrap()
            );
        }
        assert_eq!(
            owned.find(b"", &mut fetch_o).unwrap(),
            view.find(b"", &mut fetch_v).unwrap()
        );
        assert_eq!(
            owned.find(b"zzzz", &mut fetch_o).unwrap(),
            view.find(b"zzzz", &mut fetch_v).unwrap()
        );
        // compare_first agrees with materializing entry 0.
        let first = owned.materialize(0, &mut fetch_o).unwrap();
        for probe in [&keys[0], &keys[2], &b"a".to_vec()] {
            assert_eq!(
                view.compare_first(probe, &mut fetch_v).unwrap(),
                first.as_slice().cmp(probe)
            );
        }
    }

    #[test]
    fn view_rejects_garbage() {
        assert!(ValueBlockView::parse(&[]).is_err());
        assert!(ValueBlockView::parse(&[0]).is_err());
        assert!(ValueBlockView::parse(&[17]).is_err());
        // Truncated entry payload.
        let v = ValueBlockView::parse(&[1, 0, 0, 200, 0, 0, 0, 0]).unwrap();
        assert!(v.walk(0, |_, _| true).is_err());
        // Restart flag with a truncated offset array.
        assert!(ValueBlockView::parse(&[16 | 0x80, 9]).is_err());
    }

    #[test]
    fn materialization_resumes_at_restart_points_not_entry_zero() {
        let keys: Vec<Vec<u8>> =
            (0..BLOCK_CAP).map(|i| format!("restart-jump-{i:02}").into_bytes()).collect();
        let (bytes, pages) = build_random(&keys, 1024);
        // Locate the recorded restart offsets for groups 1 and 2.
        let g1 = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
        let g2 = u16::from_le_bytes(bytes[3..5].try_into().unwrap()) as usize;
        // Destroy the bytes of group 1 (entries 4..8). Entries in groups 0,
        // 2 and 3 must still materialize and probe correctly, proving the
        // walk starts at the nearest restart instead of entry 0.
        let mut smashed = bytes.clone();
        smashed[g1..g2].fill(0);
        let view = ValueBlockView::parse(&smashed).unwrap();
        let mut fetch = |r: &OverflowRef| Ok(pages[&r.page_no].clone());
        for i in (0..4).chain(8..BLOCK_CAP) {
            assert_eq!(&view.materialize(i, &mut fetch).unwrap(), &keys[i], "entry {i}");
        }
        let got = view.materialize(5, &mut fetch);
        assert!(got.is_err() || got.unwrap() != keys[5]);
    }

    #[test]
    fn compressed_blocks_probe_in_the_compressed_domain() {
        use crate::fsst::SymbolTable;
        let keys: Vec<Vec<u8>> = (0..BLOCK_CAP)
            .map(|i| format!("http://example.com/catalog/item/{i:02}?lang=en").into_bytes())
            .collect();
        let table = SymbolTable::train(&keys);
        let mut pages = std::collections::HashMap::new();
        let mut next = 0u64;
        let mut b = ValueBlockBuilder::new();
        for k in &keys {
            // Raw keys are sorted; their FSST forms need not be.
            b.push_unordered(&table.encode(k), 1024, &mut |bytes: &[u8]| {
                bytes
                    .chunks(16)
                    .map(|c| {
                        let p = next;
                        next += 1;
                        pages.insert(p, c.to_vec());
                        OverflowRef { page_no: p, len: c.len() as u32 }
                    })
                    .collect()
            });
        }
        let bytes = b.finish();
        let view = ValueBlockView::parse(&bytes).unwrap();
        let mut fetch = |r: &OverflowRef| Ok(pages[&r.page_no].clone());
        for (i, k) in keys.iter().enumerate() {
            // Hits compare compressed bytes; materialized values decompress.
            assert_eq!(
                view.find_compressed(k, &table.encode(k), &table, &mut fetch).unwrap(),
                Ok(i)
            );
            let raw = table.decode(&view.materialize(i, &mut fetch).unwrap()).unwrap();
            assert_eq!(&raw, k);
        }
        // Misses land on the raw-order insertion point.
        for probe in [
            b"http://example.com/catalog/item/03z".to_vec(),
            b"aaaa".to_vec(),
            b"zzzz".to_vec(),
            b"http://example.com/catalog/item/".to_vec(),
        ] {
            let expected = keys.partition_point(|k| k.as_slice() < probe.as_slice());
            assert_eq!(
                view.find_compressed(&probe, &table.encode(&probe), &table, &mut fetch).unwrap(),
                Err(expected),
                "probe {:?}",
                String::from_utf8_lossy(&probe)
            );
            assert_eq!(
                view.compare_first_compressed(&probe, &table, &mut fetch).unwrap(),
                keys[0].cmp(&probe),
            );
        }
    }

    #[test]
    fn compressed_blocks_with_overflow_fetch_only_when_inconclusive() {
        use crate::fsst::SymbolTable;
        let keys: Vec<Vec<u8>> = (0..8u32)
            .map(|i| {
                let mut k = format!("warehouse/region-{i:02}/").into_bytes();
                k.extend(std::iter::repeat_n(b'x', 120));
                k.extend(format!("-tail{i:02}").into_bytes());
                k
            })
            .collect();
        let table = SymbolTable::train(&keys);
        let mut pages = std::collections::HashMap::new();
        let mut next = 0u64;
        let mut b = ValueBlockBuilder::new();
        for k in &keys {
            b.push_unordered(&table.encode(k), 12, &mut |bytes: &[u8]| {
                bytes
                    .chunks(16)
                    .map(|c| {
                        let p = next;
                        next += 1;
                        pages.insert(p, c.to_vec());
                        OverflowRef { page_no: p, len: c.len() as u32 }
                    })
                    .collect()
            });
        }
        let bytes = b.finish();
        let view = ValueBlockView::parse(&bytes).unwrap();
        // Probe diverging inside the on-page compressed prefix: no fetch.
        let mut fetched = 0usize;
        {
            let mut counting = |r: &OverflowRef| {
                fetched += 1;
                Ok(pages[&r.page_no].clone())
            };
            let probe = b"zzz".to_vec();
            assert_eq!(
                view.find_compressed(&probe, &table.encode(&probe), &table, &mut counting)
                    .unwrap(),
                Err(keys.len())
            );
        }
        assert_eq!(fetched, 0, "conclusive on-page divergence must not fetch overflow");
        // Exact hits still resolve (fetch allowed where needed).
        let mut fetch = |r: &OverflowRef| Ok(pages[&r.page_no].clone());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                view.find_compressed(k, &table.encode(k), &table, &mut fetch).unwrap(),
                Ok(i),
                "entry {i}"
            );
        }
    }
}
