//! Order-preserving byte encoding of typed values.
//!
//! Main-fragment dictionaries are order-preserving: value identifiers are
//! assigned in the sort order of the values (§2). Encoding every supported
//! type to a byte string whose `memcmp` order equals the value order lets a
//! single dictionary layout (prefix-encoded byte-string blocks) serve
//! INTEGER, DECIMAL, DOUBLE and CHAR/VARCHAR columns alike, and makes the
//! separator helper dictionary (`ipDict_Value`) a plain byte-string index.
//!
//! Encodings are also *decodable*: the dictionary must materialize original
//! values during late materialization.

/// Encodes a signed 64-bit integer; lexicographic byte order equals numeric
/// order (sign bit flipped, big-endian).
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Inverse of [`encode_i64`].
pub fn decode_i64(b: &[u8]) -> crate::Result<i64> {
    let arr: [u8; 8] = b.try_into().map_err(|_| crate::EncodingError::CorruptBlock {
        reason: format!("i64 key must be 8 bytes, got {}", b.len()),
    })?;
    Ok((u64::from_be_bytes(arr) ^ (1u64 << 63)) as i64)
}

/// Encodes a signed 128-bit fixed-point decimal (the value scaled to an
/// integer, e.g. cents); byte order equals numeric order.
pub fn encode_i128(v: i128) -> [u8; 16] {
    ((v as u128) ^ (1u128 << 127)).to_be_bytes()
}

/// Inverse of [`encode_i128`].
pub fn decode_i128(b: &[u8]) -> crate::Result<i128> {
    let arr: [u8; 16] = b.try_into().map_err(|_| crate::EncodingError::CorruptBlock {
        reason: format!("i128 key must be 16 bytes, got {}", b.len()),
    })?;
    Ok((u128::from_be_bytes(arr) ^ (1u128 << 127)) as i128)
}

/// Encodes an `f64` in IEEE-754 total order (negative values reversed by
/// flipping all bits; positives get the sign bit set). NaNs sort above all
/// numbers; `-0.0` sorts below `+0.0`.
pub fn encode_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits & (1u64 << 63) != 0 { !bits } else { bits | (1u64 << 63) };
    flipped.to_be_bytes()
}

/// Inverse of [`encode_f64`].
pub fn decode_f64(b: &[u8]) -> crate::Result<f64> {
    let arr: [u8; 8] = b.try_into().map_err(|_| crate::EncodingError::CorruptBlock {
        reason: format!("f64 key must be 8 bytes, got {}", b.len()),
    })?;
    let flipped = u64::from_be_bytes(arr);
    let bits = if flipped & (1u64 << 63) != 0 { flipped & !(1u64 << 63) } else { !flipped };
    Ok(f64::from_bits(bits))
}

/// Strings encode as their UTF-8 bytes; byte order is the canonical string
/// order for this engine.
pub fn encode_str(s: &str) -> &[u8] {
    s.as_bytes()
}

/// Inverse of [`encode_str`].
pub fn decode_str(b: &[u8]) -> crate::Result<String> {
    String::from_utf8(b.to_vec()).map_err(|e| crate::EncodingError::CorruptBlock {
        reason: format!("invalid utf-8 in string key: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(decode_i64(&encode_i64(v)).unwrap(), v);
        }
    }

    #[test]
    fn i128_order_preserved() {
        let vals = [i128::MIN, -12345678901234567890, -1, 0, 7, i128::MAX];
        for w in vals.windows(2) {
            assert!(encode_i128(w[0]) < encode_i128(w[1]));
        }
        for v in vals {
            assert_eq!(decode_i128(&encode_i128(v)).unwrap(), v);
        }
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(encode_f64(w[0]) < encode_f64(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            let back = decode_f64(&encode_f64(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN sorts above +inf and round-trips bit-exactly.
        assert!(encode_f64(f64::NAN) > encode_f64(f64::INFINITY));
        assert!(decode_f64(&encode_f64(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn wrong_lengths_are_corrupt() {
        assert!(decode_i64(&[0; 7]).is_err());
        assert!(decode_i128(&[0; 15]).is_err());
        assert!(decode_f64(&[0; 9]).is_err());
        assert!(decode_str(&[0xFF, 0xFE]).is_err());
    }
}
