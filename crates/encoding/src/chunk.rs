//! Chunk geometry: fixed groups of 64 identifiers.
//!
//! The paper splits paged vectors into *chunks of exactly 64 identifiers*
//! (§3.1.1). At width `n`, a chunk occupies exactly `n` 64-bit words
//! (64 · n bits), so every chunk is an integral number of bytes regardless of
//! `n`, and no value ever spans a chunk boundary. Pages store an integral
//! number of chunks, which is what makes mapping a row position to a logical
//! page number pure arithmetic.

use crate::BitWidth;

/// Number of values per chunk. Fixed by the on-page format.
pub const CHUNK_LEN: usize = 64;

/// Number of 64-bit words one chunk occupies at width `w` (equals `w.bits()`).
#[inline]
pub fn words_per_chunk(w: BitWidth) -> usize {
    w.bits() as usize
}

/// Number of bytes one chunk occupies at width `w`.
#[inline]
pub fn bytes_per_chunk(w: BitWidth) -> usize {
    words_per_chunk(w) * 8
}

/// Index of the chunk containing position `pos`.
#[inline]
pub fn chunk_of(pos: u64) -> u64 {
    pos / CHUNK_LEN as u64
}

/// Slot of position `pos` within its chunk.
#[inline]
pub fn slot_of(pos: u64) -> usize {
    (pos % CHUNK_LEN as u64) as usize
}

/// Number of chunks needed to hold `len` values (last chunk may be partial
/// logically, but always occupies full chunk storage).
#[inline]
pub fn chunk_count(len: u64) -> u64 {
    len.div_ceil(CHUNK_LEN as u64)
}

/// Decodes one value from a chunk stored as `n` words.
///
/// `words` must contain exactly `words_per_chunk(w)` words; `slot < 64`.
#[inline]
pub fn decode_slot(words: &[u64], w: BitWidth, slot: usize) -> u64 {
    let n = w.bits() as usize;
    if n == 0 {
        return 0;
    }
    debug_assert_eq!(words.len(), n);
    debug_assert!(slot < CHUNK_LEN);
    let bit = slot * n;
    let word = bit / 64;
    let shift = (bit % 64) as u32;
    let mut v = words[word] >> shift;
    let taken = 64 - shift as usize;
    if taken < n {
        v |= words[word + 1] << (64 - shift);
    }
    v & w.mask()
}

/// Decodes a full chunk of 64 values into `out`.
///
/// `words.len()` must equal `words_per_chunk(w)`.
pub fn decode_chunk(words: &[u64], w: BitWidth, out: &mut [u64; CHUNK_LEN]) {
    let n = w.bits() as usize;
    if n == 0 {
        out.fill(0);
        return;
    }
    debug_assert_eq!(words.len(), n);
    match n {
        1 => decode_chunk_pow2::<1>(words, out),
        2 => decode_chunk_pow2::<2>(words, out),
        4 => decode_chunk_pow2::<4>(words, out),
        8 => decode_chunk_pow2::<8>(words, out),
        16 => decode_chunk_pow2::<16>(words, out),
        32 => decode_chunk_pow2::<32>(words, out),
        64 => out.copy_from_slice(words),
        _ => decode_chunk_generic(words, n, out),
    }
}

/// Decode for widths that divide 64: each word holds `64 / N` whole values,
/// so the inner loop has no cross-word carries, constant shifts and no
/// bounds checks — it autovectorizes.
fn decode_chunk_pow2<const N: usize>(words: &[u64], out: &mut [u64; CHUNK_LEN]) {
    let per_word = 64 / N;
    let mask = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
    for (&word, slots) in words.iter().zip(out.chunks_exact_mut(per_word)) {
        for (lane, slot) in slots.iter_mut().enumerate() {
            *slot = (word >> (lane * N)) & mask;
        }
    }
}

/// Generic decode: walks the chunk's words once, carrying straddled bits.
fn decode_chunk_generic(words: &[u64], n: usize, out: &mut [u64; CHUNK_LEN]) {
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut acc: u128 = 0;
    let mut acc_bits: usize = 0;
    let mut next_word = 0usize;
    for slot in out.iter_mut() {
        if acc_bits < n {
            acc |= (words[next_word] as u128) << acc_bits;
            next_word += 1;
            acc_bits += 64;
        }
        *slot = (acc as u64) & mask;
        acc >>= n;
        acc_bits -= n;
    }
}

/// Encodes 64 values into a chunk of `words_per_chunk(w)` words.
///
/// Values must fit in `w` bits; `out` must be zeroed (or will be fully
/// overwritten) and exactly `words_per_chunk(w)` long.
pub fn encode_chunk(values: &[u64; CHUNK_LEN], w: BitWidth, out: &mut [u64]) {
    let n = w.bits() as usize;
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len(), n);
    out.fill(0);
    for (slot, &v) in values.iter().enumerate() {
        debug_assert!(v <= w.max_value(), "value {v} exceeds {w}");
        let bit = slot * n;
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        out[word] |= v << shift;
        let taken = 64 - shift as usize;
        if taken < n {
            out[word + 1] |= v >> (64 - shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(w: BitWidth, values: &[u64; CHUNK_LEN]) {
        let mut words = vec![0u64; words_per_chunk(w)];
        encode_chunk(values, w, &mut words);
        let mut out = [0u64; CHUNK_LEN];
        decode_chunk(&words, w, &mut out);
        assert_eq!(&out, values, "chunk roundtrip at {w}");
        for (slot, &expect) in values.iter().enumerate() {
            assert_eq!(decode_slot(&words, w, slot), expect, "slot {slot} at {w}");
        }
    }

    #[test]
    fn roundtrip_all_widths() {
        for bits in 0..=64u32 {
            let w = BitWidth::new(bits).unwrap();
            let mut values = [0u64; CHUNK_LEN];
            for (i, v) in values.iter_mut().enumerate() {
                // Deterministic pseudo-random pattern clipped to the width.
                *v = (0x9E37_79B9_7F4A_7C15u64
                    .wrapping_mul(i as u64 + 1)
                    .rotate_left(i as u32))
                    & w.mask();
            }
            roundtrip(w, &values);
        }
    }

    #[test]
    fn roundtrip_extremes() {
        for bits in 1..=64u32 {
            let w = BitWidth::new(bits).unwrap();
            let values = [w.max_value(); CHUNK_LEN];
            roundtrip(w, &values);
            let values = [0u64; CHUNK_LEN];
            roundtrip(w, &values);
        }
    }

    #[test]
    fn zero_width_decodes_zeroes() {
        let mut out = [7u64; CHUNK_LEN];
        decode_chunk(&[], BitWidth::ZERO, &mut out);
        assert!(out.iter().all(|&v| v == 0));
        assert_eq!(decode_slot(&[], BitWidth::ZERO, 63), 0);
    }

    #[test]
    fn geometry() {
        assert_eq!(bytes_per_chunk(BitWidth::new(5).unwrap()), 40);
        assert_eq!(chunk_of(0), 0);
        assert_eq!(chunk_of(63), 0);
        assert_eq!(chunk_of(64), 1);
        assert_eq!(slot_of(65), 1);
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(64), 1);
        assert_eq!(chunk_count(65), 2);
    }
}
