//! Encoding primitives for piecewise columnar storage.
//!
//! This crate implements the byte-level building blocks described in
//! *Page As You Go: Piecewise Columnar Access In SAP HANA* (SIGMOD 2016):
//!
//! * **Uniform n-bit compression** ([`bitpack::BitPackedVec`]): every value
//!   identifier in a data vector is packed with the same number of bits `n`,
//!   chosen as the number of bits needed for the largest identifier.
//! * **Chunks of exactly 64 identifiers** ([`chunk`]): a chunk is `n` 64-bit
//!   words, so chunks are byte-integral for every `n` and a value never spans
//!   a chunk boundary. Pages store an integral number of chunks, which makes
//!   the row-position → page mapping pure arithmetic.
//! * **Vectorized scan primitives** ([`scan`]): word-parallel (SWAR)
//!   equality / range / in-set predicates evaluated chunk-at-a-time,
//!   producing one 64-bit match bitmap per chunk.
//! * **Prefix-encoded string value blocks** ([`prefix`]): groups of up to 16
//!   consecutive dictionary strings, front-coded against the preceding string
//!   in the block, with on-page/off-page splitting for large strings.
//! * **Order-preserving key encoding** ([`okey`]): maps typed values
//!   (integer, decimal, double, string) to byte strings whose `memcmp` order
//!   equals the value order, so a single dictionary layout serves all types.

#![deny(missing_docs)]
// The one crate in the workspace allowed to contain unsafe code, confined
// to [`unaligned`] (raw unaligned word loads on the decode hot path) and
// exercised under Miri in CI. Everything else keeps `#![forbid(unsafe_code)]`.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitpack;
pub mod bitwidth;
pub mod chunk;
pub mod dispatch;
pub mod fsst;
pub mod kernels;
pub mod okey;
pub mod pef;
pub mod prefix;
pub mod scan;
#[allow(unsafe_code)]
pub mod unaligned;
pub mod vidset;

pub use bitpack::{BitPackedBuilder, BitPackedVec};
pub use bitwidth::BitWidth;
pub use chunk::CHUNK_LEN;
pub use kernels::{KernelPredicate, WidthKernels};
pub use vidset::VidSet;

/// Errors produced when decoding persisted encodings from (possibly
/// corrupted) bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// A persisted block failed structural validation.
    CorruptBlock {
        /// Human-readable description of the structural violation.
        reason: String,
    },
    /// A bit width outside the supported `0..=64` range was requested.
    InvalidBitWidth(u32),
}

impl std::fmt::Display for EncodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodingError::CorruptBlock { reason } => write!(f, "corrupt block: {reason}"),
            EncodingError::InvalidBitWidth(n) => write!(f, "invalid bit width: {n}"),
        }
    }
}

impl std::error::Error for EncodingError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, EncodingError>;
