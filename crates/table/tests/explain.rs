//! EXPLAIN ANALYZE integration: the annotated plan, span tree, and page
//! provenance of real queries, reconciled against the registry.

use payg_core::{DataType, LoadPolicy, PageConfig, ScanOptions, ScanPath, Value, ValuePredicate};
use payg_obs::SpanKind;
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore};
use payg_table::{ColumnSpec, PartitionSpec, Projection, Query, Schema, Table};
use std::sync::Arc;

fn paged_table(indexed: bool, rows: i64) -> Table {
    let id = if indexed {
        ColumnSpec::indexed("id", DataType::Integer)
    } else {
        ColumnSpec::new("id", DataType::Integer)
    };
    let schema =
        Schema::new(vec![id, ColumnSpec::new("region", DataType::Varchar)]).unwrap();
    let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        schema,
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    for i in 0..rows {
        t.insert(vec![Value::Integer(i), Value::Varchar(format!("region-{}", i % 5))]).unwrap();
    }
    t.delta_merge_all().unwrap();
    t
}

#[test]
fn cold_parallel_scan_reports_plan_actuals_and_spans() {
    let mut t = paged_table(false, 600);
    t.set_scan_options(ScanOptions::with_workers(4));
    // Unindexed point filter: a parallel data-vector scan. `id` is inserted
    // in order, so page summaries prune every non-overlapping page.
    let q = Query::filtered(
        "id",
        ValuePredicate::Between(Value::Integer(100), Value::Integer(140)),
        Projection::RowIds,
    );

    // Freshly merged pages are not resident: the first run is cold.
    let (result, cold) = t.explain_analyze(&q).unwrap();
    match result {
        payg_table::QueryResult::RowIds(ids) => assert_eq!(ids.len(), 41),
        other => panic!("expected row ids, got {other:?}"),
    }
    assert_eq!(cold.partitions.len(), 1);
    assert_eq!(cold.partitions[0].path, ScanPath::DecodeThenScan);
    assert!(cold.profile.cold_loads > 0, "first run loads pages: {:?}", cold.profile);
    assert!(cold.profile.dispatch_width > 0, "kernel dispatched: {:?}", cold.profile);
    cold.check_consistency().expect("cold event log reconciles with the registry delta");

    // The span tree: one query root, scan-partition children under it.
    let root = cold.spans.iter().find(|s| s.id == cold.root).expect("root span recorded");
    assert_eq!(root.kind, SpanKind::Query);
    assert_eq!(root.parent, 0);
    let parts: Vec<_> =
        cold.spans.iter().filter(|s| s.kind == SpanKind::ScanPartition).collect();
    assert!(!parts.is_empty(), "parallel scan opened partition spans");
    let tree = cold.tree();
    assert!(parts.iter().all(|s| tree.contains(&s.id)), "partitions parent into the tree");
    assert!(cold.spans.iter().all(|s| s.end_ns >= s.start_ns));

    // The filter column's data chain is annotated with the cold traffic.
    let data = cold.partitions[0]
        .chains
        .iter()
        .find(|c| c.column == "id" && c.role == "data")
        .expect("filter column's data chain listed");
    assert!(data.actuals.pins > 0, "data pages pinned: {:?}", data.actuals);
    assert!(data.actuals.cold_loads > 0, "data pages loaded cold: {:?}", data.actuals);

    // Page provenance: with the cold-path I/O stage on, this query's tree
    // initiated the coalesced batches that served it (nothing to join —
    // the pool is otherwise idle).
    if t.pool().io_stage_active() {
        assert!(cold.batches_initiated > 0, "cold staged scan issues batches");
        assert_eq!(cold.batches_joined, 0, "no concurrent query to join");
        assert!(cold.profile.io_batches >= cold.batches_initiated);
    }

    // Warm sequential re-run: same result, no cold loads, warm pins
    // instead — and the sequential iterator counts the pages the summary
    // pruned (the parallel planner skips them before workers ever look).
    t.set_scan_options(ScanOptions::default());
    let (result2, warm) = t.explain_analyze(&q).unwrap();
    match result2 {
        payg_table::QueryResult::RowIds(ids) => assert_eq!(ids.len(), 41),
        other => panic!("expected row ids, got {other:?}"),
    }
    assert_eq!(warm.profile.cold_loads, 0, "second run is warm: {:?}", warm.profile);
    assert!(warm.profile.warm_hits > 0);
    assert!(warm.profile.pages_pruned > 0, "sorted ids prune pages: {:?}", warm.profile);
    warm.check_consistency().expect("warm event log reconciles too");

    // Renderings carry the load-bearing facts.
    let text = cold.to_text();
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains("partition 0: path=DecodeThenScan"), "{text}");
    assert!(text.contains("id/data"), "{text}");
    assert!(text.contains("query(0)"), "{text}");
    assert!(text.contains("scan-partition"), "{text}");
    let json = cold.to_json();
    assert!(json.contains("\"plan\""), "{json}");
    assert!(json.contains("\"spans\""), "{json}");
    assert!(json.contains("\"batches_initiated\""), "{json}");
    let trace = cold.to_chrome_trace();
    assert!(trace.starts_with('[') && trace.ends_with(']'), "{trace}");
    assert!(trace.contains("\"ph\": \"X\""), "{trace}");
    assert!(trace.contains("\"name\": \"scan-partition\""), "{trace}");
}

#[test]
fn compressed_domain_plan_shows_chunk_dispatch() {
    let t = paged_table(true, 500);
    // Indexed point probe under PEF postings: the plan says compressed
    // domain, and the execution records the dispatch decision as a span.
    let q = Query::filtered("id", ValuePredicate::Eq(Value::Integer(123)), Projection::RowIds);
    assert_eq!(t.scan_plan(&q).unwrap(), vec![ScanPath::CompressedDomain]);
    let (result, ea) = t.explain_analyze(&q).unwrap();
    match result {
        payg_table::QueryResult::RowIds(ids) => assert_eq!(ids, vec![123]),
        other => panic!("expected row ids, got {other:?}"),
    }
    assert_eq!(ea.partitions[0].path, ScanPath::CompressedDomain);
    let dispatch: Vec<_> =
        ea.spans.iter().filter(|s| s.kind == SpanKind::ChunkDispatch).collect();
    assert!(!dispatch.is_empty(), "index traversal records its dispatch");
    assert!(
        dispatch.iter().all(|s| s.detail == 1),
        "PEF point probe dispatches compressed-domain: {dispatch:?}"
    );
    let index = ea.partitions[0]
        .chains
        .iter()
        .find(|c| c.column == "id" && c.role == "index")
        .expect("index chain listed for the filter column");
    assert!(index.actuals.pins > 0, "posting pages pinned: {:?}", index.actuals);
    ea.check_consistency().expect("event log reconciles with the registry delta");
    assert!(ea.to_text().contains("path=CompressedDomain"));
}

#[test]
fn explain_restores_tracer_state_and_handles_errors() {
    let t = paged_table(false, 100);
    let tracer = t.registry().tracer().clone();
    assert!(!tracer.enabled(), "tracer starts disabled");
    let q = Query::full(Projection::Count);
    let (result, ea) = t.explain_analyze(&q).unwrap();
    assert_eq!(result.count(), 100);
    assert!(!tracer.enabled(), "disabled state restored after explain");
    assert!(ea.spans.iter().any(|s| s.id == ea.root));

    // Unknown column: the error surfaces and the tracer state still
    // restores (no stuck-enabled recorder).
    let bad = Query::filtered("nope", ValuePredicate::Eq(Value::Integer(1)), Projection::Count);
    assert!(t.explain_analyze(&bad).is_err());
    assert!(!tracer.enabled());

    // A pre-enabled tracer stays enabled.
    tracer.enable();
    let _ = t.explain_analyze(&q).unwrap();
    assert!(tracer.enabled(), "explicitly-enabled tracer left on");
}
