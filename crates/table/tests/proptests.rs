//! Property-based tests for the table layer: delta merge and aging moves
//! preserve the visible row multiset; queries agree with brute force.

use payg_core::{DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore};
use payg_table::{
    ColumnSpec, PartitionRange, PartitionSpec, Projection, Query, Row, Schema, Table,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnSpec::new("id", DataType::Integer),
        ColumnSpec::new("tag", DataType::Varchar),
        ColumnSpec::new("temp", DataType::Integer),
    ])
    .unwrap()
    .with_primary_key("id")
    .unwrap()
    .with_partition_column("temp")
    .unwrap()
}

fn table(policy: LoadPolicy) -> Table {
    let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
    Table::create(
        pool,
        PageConfig::tiny(),
        schema(),
        vec![
            PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100))),
            {
                let mut c = PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(100)));
                c.load_policy = policy;
                c
            },
        ],
    )
    .unwrap()
}

fn row(id: i64, tag: u8, temp: i64) -> Row {
    vec![Value::Integer(id), Value::Varchar(format!("tag-{tag}")), Value::Integer(temp)]
}

/// Canonical multiset of visible rows, keyed by id.
fn visible(t: &Table) -> BTreeMap<i64, (String, i64)> {
    let rows = t.execute(&Query::full(Projection::All)).unwrap().into_rows();
    rows.into_iter()
        .map(|r| match (&r[0], &r[1], &r[2]) {
            (Value::Integer(id), Value::Varchar(tag), Value::Integer(temp)) => {
                (*id, (tag.clone(), *temp))
            }
            other => panic!("{other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Inserts followed by any interleaving of delta merges never lose or
    /// duplicate rows, on either storage policy.
    #[test]
    fn merges_preserve_visible_rows(
        rows in prop::collection::vec((0i64..5_000, 0u8..6, 0i64..200), 1..120),
        merge_points in prop::collection::vec(any::<bool>(), 1..120),
        policy_paged in any::<bool>(),
    ) {
        let policy = if policy_paged { LoadPolicy::PageLoadable } else { LoadPolicy::FullyResident };
        let t = table(policy);
        let mut expected: BTreeMap<i64, (String, i64)> = BTreeMap::new();
        for (i, &(id, tag, temp)) in rows.iter().enumerate() {
            // Make ids unique so the multiset is a map: disjoint per-row
            // ranges of width 5000.
            let id = i as i64 * 5_000 + id;
            t.insert(row(id, tag, temp)).unwrap();
            expected.insert(id, (format!("tag-{tag}"), temp));
            if merge_points.get(i).copied().unwrap_or(false) {
                t.delta_merge_all().unwrap();
            }
        }
        prop_assert_eq!(visible(&t), expected.clone());
        t.delta_merge_all().unwrap();
        prop_assert_eq!(visible(&t), expected);
    }

    /// Updates to the partition column relocate rows without losing any,
    /// and queries find the updated values afterwards.
    #[test]
    fn partition_moves_preserve_rows(
        seeds in prop::collection::vec((0u8..6, 0i64..200), 5..60),
        move_to_cold in prop::collection::vec(any::<bool>(), 5..60),
        merge_between in any::<bool>(),
    ) {
        let t = table(LoadPolicy::PageLoadable);
        for (i, &(tag, temp)) in seeds.iter().enumerate() {
            t.insert(row(i as i64, tag, temp)).unwrap();
        }
        if merge_between {
            t.delta_merge_all().unwrap();
        }
        let mut expected = visible(&t);
        for (i, &mv) in move_to_cold.iter().enumerate() {
            if !mv || i >= seeds.len() {
                continue;
            }
            let id = i as i64;
            let new_temp = 5i64; // cold range
            let n = t
                .update_rows(
                    "id",
                    &ValuePredicate::Eq(Value::Integer(id)),
                    "temp",
                    &Value::Integer(new_temp),
                )
                .unwrap();
            prop_assert_eq!(n, 1);
            expected.get_mut(&id).unwrap().1 = new_temp;
        }
        prop_assert_eq!(visible(&t), expected.clone());
        t.delta_merge_all().unwrap();
        prop_assert_eq!(visible(&t), expected);
    }

    /// Every filter shape agrees with brute-force evaluation over the rows.
    #[test]
    fn queries_agree_with_brute_force(
        seeds in prop::collection::vec((0u8..6, 0i64..200), 10..80),
        probe_tag in 0u8..6,
        lo in 0i64..200,
        span in 0i64..80,
    ) {
        let t = table(LoadPolicy::PageLoadable);
        let mut raw: Vec<Row> = Vec::new();
        for (i, &(tag, temp)) in seeds.iter().enumerate() {
            let r = row(i as i64, tag, temp);
            raw.push(r.clone());
            t.insert(r).unwrap();
        }
        t.delta_merge_all().unwrap();
        for pred in [
            ValuePredicate::Eq(Value::Varchar(format!("tag-{probe_tag}"))),
            ValuePredicate::StartsWith("tag-".into()),
            ValuePredicate::StartsWith(format!("tag-{probe_tag}")),
        ] {
            let q = Query::filtered("tag", pred.clone(), Projection::Count);
            let expect = raw.iter().filter(|r| pred.matches(&r[1])).count() as u64;
            prop_assert_eq!(t.execute(&q).unwrap().count(), expect, "{:?}", pred);
        }
        let pred = ValuePredicate::Between(Value::Integer(lo), Value::Integer(lo + span));
        let q = Query::filtered("temp", pred.clone(), Projection::Count);
        let expect = raw.iter().filter(|r| pred.matches(&r[2])).count() as u64;
        prop_assert_eq!(t.execute(&q).unwrap().count(), expect);
    }
}
