//! Online delta-merge chaos: seeded fault storms kill the merge at every
//! injected step while reader threads run fixed queries against live
//! sessions.
//!
//! The contract under test is the serving layer's trichotomy: every read
//! returns the exact answer (merges never change answers, only layout) or
//! one clean typed error — never a wrong answer, a panic, a leaked pin, a
//! leaked page chain, or stranded budget. An aborted merge leaves the
//! frozen version serving; a retried merge succeeds once the faults lift.
//! A failing seed reproduces with
//! `PAYG_CHAOS_SEED=<seed> cargo test -p payg-table --test merge_chaos`.

use payg_core::{PageConfig, Value, ValuePredicate};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, FaultPlan, FaultyStore, MemStore, PageStore};
use payg_table::{
    ColumnSpec, PartitionRange, PartitionSpec, Projection, Query, QueryResult, Schema, Table,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Seeds to storm with: the CI matrix pins one via `PAYG_CHAOS_SEED`; a
/// plain local run covers a small default set.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("PAYG_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("PAYG_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2, 3, 4],
    }
}

fn orders_schema() -> Schema {
    // No indexed columns: the adaptive index would build fresh chains
    // during reads and break the chain-set leak accounting below.
    Schema::new(vec![
        ColumnSpec::new("id", payg_core::DataType::Integer),
        ColumnSpec::new("status", payg_core::DataType::Varchar),
        ColumnSpec::new("close_date", payg_core::DataType::Integer),
    ])
    .unwrap()
    .with_primary_key("id")
    .unwrap()
    .with_partition_column("close_date")
    .unwrap()
}

fn status_of(i: i64) -> &'static str {
    if i % 3 == 0 {
        "open"
    } else {
        "closed"
    }
}

fn order(i: i64) -> Vec<Value> {
    vec![
        Value::Integer(i),
        Value::Varchar(status_of(i).into()),
        Value::Integer(100 + i),
    ]
}

/// A two-partition table over a [`FaultyStore`]; every inserted row routes
/// hot (`close_date >= 100`).
fn faulty_table() -> (Table, Arc<FaultyStore<MemStore>>, ResourceManager) {
    let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn PageStore>, resman.clone());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        orders_schema(),
        vec![
            PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100))),
            PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(100))),
        ],
    )
    .unwrap();
    (t, store, resman)
}

/// The fixed reader workload with its exact expected answers for a table
/// holding rows `0..rows` (any main/delta split).
fn fixed_queries(rows: i64) -> Vec<(Query, QueryResult)> {
    let open = (0..rows).filter(|&i| status_of(i) == "open").count() as u64;
    let sum: i64 = (10..rows.min(60)).sum();
    vec![
        (Query::full(Projection::Count), QueryResult::Count(rows as u64)),
        (
            Query::filtered(
                "status",
                ValuePredicate::Eq(Value::Varchar("open".into())),
                Projection::Count,
            ),
            QueryResult::Count(open),
        ),
        (
            Query::filtered(
                "id",
                ValuePredicate::Between(Value::Integer(10), Value::Integer(59)),
                Projection::Sum("id".into()),
            ),
            QueryResult::Sum(Value::Integer(sum)),
        ),
    ]
}

fn chain_set(store: &FaultyStore<MemStore>) -> BTreeSet<u64> {
    store.chains().into_iter().map(|c| c.0).collect()
}

/// Runs the fixed workload once; every query must return its exact answer.
fn assert_exact(t: &Table, rows: i64, context: &str) {
    for (q, want) in fixed_queries(rows) {
        let got = t.execute(&q).unwrap_or_else(|e| panic!("{context}: query failed: {e}"));
        assert_eq!(got, want, "{context}: wrong answer");
    }
}

/// Kills the merge deterministically at each write step in turn: every
/// abort must leave the frozen version serving exact answers with the
/// chain set untouched (the side build reclaimed itself), and the retried
/// merge under a clean store must succeed and land at the steady-state
/// chain count.
#[test]
fn a_merge_killed_at_every_write_step_aborts_cleanly() {
    let (t, store, _resman) = faulty_table();
    let mut rows: i64 = 0;
    for i in 0..60 {
        t.insert(order(i)).unwrap();
        rows += 1;
    }
    t.delta_merge_all().unwrap();
    let steady = store.chains().len();

    let mut aborts = 0;
    for step in 1..=10u64 {
        // Dirty the partition so the merge has work to do.
        t.insert(order(rows)).unwrap();
        rows += 1;
        let before = chain_set(&store);

        store.set_plan(FaultPlan::EveryNthWrite(step));
        let merged = t.delta_merge_all();
        store.set_plan(FaultPlan::None);

        if merged.is_err() {
            aborts += 1;
            // Aborted: the side build must have reclaimed every chain it
            // created, and the frozen version keeps answering exactly.
            assert_eq!(
                chain_set(&store),
                before,
                "step {step}: aborted side build leaked or lost chains"
            );
            assert_exact(&t, rows, &format!("step {step}: after abort"));
            t.delta_merge_all()
                .unwrap_or_else(|e| panic!("step {step}: clean retry failed: {e}"));
        }
        // Merged (either first try survived the fault phase or the retry
        // ran): steady state — replaced mains retired one for one.
        assert_eq!(
            store.chains().len(),
            steady,
            "step {step}: chain count drifted after a successful merge"
        );
        assert_exact(&t, rows, &format!("step {step}: after merge"));
        t.pool().assert_no_live_pins("merge kill sweep");
    }
    assert!(aborts >= 5, "the sweep must actually kill merges (got {aborts} aborts)");
}

/// Seeded read/corrupt/write storms while 4 reader threads execute the
/// fixed workload through live sessions and the writer keeps attempting
/// merges: every read is exact or a clean error; recovery leaves no leaked
/// pins, chains, or budget; the retried merge succeeds.
#[test]
fn seeded_storms_with_concurrent_readers_never_corrupt_an_answer() {
    const ROWS: i64 = 200;
    for seed in chaos_seeds() {
        let (t, store, resman) = faulty_table();
        for i in 0..150 {
            t.insert(order(i)).unwrap();
        }
        t.delta_merge_all().unwrap();
        let steady = store.chains().len();
        // A delta backlog so the storm's merges have real work.
        for i in 150..ROWS {
            t.insert(order(i)).unwrap();
        }
        assert_exact(&t, ROWS, &format!("seed {seed}: pre-storm"));
        t.unload_all();
        let budget_baseline = resman.stats().total_bytes;

        store.set_plan(FaultPlan::Seeded { seed, p_read: 0.08, p_corrupt: 0.04, p_write: 0.12 });
        std::thread::scope(|s| {
            for reader in 0..4 {
                let t = &t;
                s.spawn(move || {
                    let queries = fixed_queries(ROWS);
                    for round in 0..30 {
                        let Ok(session) = t.session() else { continue };
                        for (q, want) in &queries {
                            // An Err is an injected fault surfacing as a
                            // typed error: the clean arm of the trichotomy.
                            if let Ok(got) = session.execute(q) {
                                assert_eq!(
                                    &got, want,
                                    "seed {seed} reader {reader} round {round}: \
                                     a storm read returned a wrong answer"
                                );
                            }
                        }
                    }
                });
            }
            let t = &t;
            s.spawn(move || {
                // The merge is killed wherever the seed lands a write
                // fault; aborts are expected, wedging is not.
                for _ in 0..6 {
                    let _ = t.delta_merge_all();
                }
            });
        });

        // Recovery: faults lifted, caches and quarantine drained — the
        // retried merge must succeed and every invariant must hold.
        store.set_plan(FaultPlan::None);
        t.pool().clear();
        t.pool().clear_quarantine();
        t.delta_merge_all().unwrap_or_else(|e| panic!("seed {seed}: recovery merge: {e}"));
        assert_exact(&t, ROWS, &format!("seed {seed}: post-recovery"));
        t.pool().assert_no_live_pins("storm quiesce");
        assert_eq!(
            store.chains().len(),
            steady,
            "seed {seed}: chains leaked across aborted merges"
        );
        t.unload_all();
        assert_eq!(
            resman.stats().total_bytes,
            budget_baseline,
            "seed {seed}: stranded resman budget after recovery"
        );
    }
}

/// A snapshot pinned across the whole storm stays on its version: same
/// answer before, during, and after a successful merge, and its retired
/// main's chains survive until the pin drops.
#[test]
fn a_snapshot_pinned_across_the_storm_is_stable() {
    let (t, store, _resman) = faulty_table();
    for i in 0..80 {
        t.insert(order(i)).unwrap();
    }
    t.delta_merge_all().unwrap();
    let steady = store.chains().len();
    for i in 80..100 {
        t.insert(order(i)).unwrap();
    }

    let pinned = t.session().unwrap();
    let before = pinned.visible_rows();
    assert_eq!(before, 100);

    for seed in chaos_seeds() {
        store.set_plan(FaultPlan::Seeded { seed, p_read: 0.1, p_corrupt: 0.0, p_write: 0.2 });
        let _ = t.delta_merge_all();
        store.set_plan(FaultPlan::None);
    }
    t.delta_merge_all().unwrap();

    // The pin held its version through aborted and successful merges.
    assert_eq!(pinned.visible_rows(), before, "pinned snapshot drifted");
    assert!(
        store.chains().len() > steady,
        "retired main chains must survive while the snapshot pins them"
    );
    drop(pinned);
    assert_eq!(store.chains().len(), steady, "retirement ran once the pin dropped");
    assert_exact(&t, 100, "after pin release");
}
