//! The partitioned columnar table.

use crate::delta::DeltaFragment;
use crate::fragment::MainFragment;
use crate::partition::{PartitionId, PartitionSpec};
use crate::schema::{Row, Schema};
use crate::{TableError, TableResult};
use payg_core::{PageConfig, ScanOptions, Value, ValuePredicate};
use payg_storage::BufferPool;

/// One partition: spec + main fragment + delta fragment.
pub struct Partition {
    spec: PartitionSpec,
    main: MainFragment,
    delta: DeltaFragment,
}

impl Partition {
    /// The partition's configuration.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The read-optimized fragment.
    pub fn main(&self) -> &MainFragment {
        &self.main
    }

    /// The write-optimized fragment.
    pub fn delta(&self) -> &DeltaFragment {
        &self.delta
    }

    /// Visible rows across both fragments.
    pub fn visible_rows(&self) -> u64 {
        self.main.visible_rows() + self.delta.visible_rows()
    }
}

/// A partitioned columnar table (paper §2, §4).
pub struct Table {
    schema: Schema,
    pool: BufferPool,
    config: PageConfig,
    partitions: Vec<Partition>,
    scan_options: ScanOptions,
}

impl Table {
    /// Creates a table with the given partitions. Multi-partition tables
    /// require a partition column in the schema.
    pub fn create(
        pool: BufferPool,
        config: PageConfig,
        schema: Schema,
        specs: Vec<PartitionSpec>,
    ) -> TableResult<Self> {
        if specs.is_empty() {
            return Err(TableError::Invalid("a table needs at least one partition".into()));
        }
        if specs.len() > 1 && schema.partition_column().is_none() {
            return Err(TableError::Invalid(
                "multi-partition tables need a partition column".into(),
            ));
        }
        config.validate().map_err(TableError::Invalid)?;
        let mut table = Table {
            schema,
            pool,
            config,
            partitions: Vec::new(),
            scan_options: ScanOptions::sequential(),
        };
        for spec in specs {
            table.add_partition(spec)?;
        }
        Ok(table)
    }

    /// Adds a partition (`ADD PARTITION`, §4.2): constant-time, no data
    /// reorganization — the new partition starts with empty fragments.
    pub fn add_partition(&mut self, spec: PartitionSpec) -> TableResult<PartitionId> {
        let main = MainFragment::build(
            &self.pool,
            &self.config,
            &self.schema,
            &[],
            spec.load_policy,
            spec.disposition,
        )?;
        self.partitions.push(Partition {
            spec,
            main,
            delta: DeltaFragment::new(&self.schema),
        });
        Ok(PartitionId(self.partitions.len() - 1))
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The buffer pool backing this table.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The observability registry every layer under this table reports into
    /// (the pool's, which is the resource manager's).
    pub fn registry(&self) -> &payg_obs::Registry {
        self.pool.registry()
    }

    /// The partitions in order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// How this table's queries scan main fragments (default: sequential).
    pub fn scan_options(&self) -> ScanOptions {
        self.scan_options
    }

    /// Sets the parallelism budget for this table's query scans. Results are
    /// bit-identical to sequential execution; only the wall-clock changes.
    pub fn set_scan_options(&mut self, opts: ScanOptions) {
        self.scan_options = opts;
    }

    /// Visible rows across all partitions and fragments.
    pub fn visible_rows(&self) -> u64 {
        self.partitions.iter().map(|p| p.visible_rows()).sum()
    }

    /// Routes a row to its partition by the partition-column value.
    pub fn route(&self, row: &Row) -> TableResult<PartitionId> {
        let value = match self.schema.partition_column() {
            Some(c) => &row[c],
            None => return Ok(PartitionId(0)),
        };
        self.partitions
            .iter()
            .position(|p| p.spec.range.accepts(value))
            .map(PartitionId)
            .ok_or_else(|| TableError::NoPartitionForRow(value.to_string()))
    }

    /// Inserts a row: validated, routed, appended to the target partition's
    /// delta (new data always lands in a delta first, §4.2).
    pub fn insert(&mut self, row: Row) -> TableResult<()> {
        self.schema.check_row(&row)?;
        let PartitionId(p) = self.route(&row)?;
        self.partitions[p].delta.append(&row);
        Ok(())
    }

    /// Inserts many rows.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> TableResult<u64> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delta merge of one partition (§2): all visible rows from the old
    /// main and the delta move into a freshly built main fragment — every
    /// structure (data vector, dictionary, inverted index, and for
    /// page-loadable columns their page chains) is rebuilt — and the delta
    /// resets to empty.
    pub fn delta_merge(&mut self, pid: PartitionId) -> TableResult<()> {
        let p = &mut self.partitions[pid.0];
        if p.delta.is_empty() && p.main.visible_rows() == p.main.rows() {
            return Ok(()); // nothing to merge, nothing deleted
        }
        let mut rows = p.main.visible_row_values()?;
        rows.extend(p.delta.visible_row_values(&self.schema)?);
        let new_main = MainFragment::build(
            &self.pool,
            &self.config,
            &self.schema,
            &rows,
            p.spec.load_policy,
            p.spec.disposition,
        )?;
        p.main = new_main;
        p.delta = DeltaFragment::new(&self.schema);
        Ok(())
    }

    /// Delta merge of every partition.
    pub fn delta_merge_all(&mut self) -> TableResult<()> {
        for p in 0..self.partitions.len() {
            self.delta_merge(PartitionId(p))?;
        }
        Ok(())
    }

    /// The aging/update DML: for every visible row matching `pred` on
    /// `filter_col`, sets `set_col` to `new_value`. No in-place update —
    /// the original row is deleted and the updated row re-inserted through
    /// normal routing, so updates to the partition column *move* rows
    /// between partitions (into the target's delta). Returns the number of
    /// rows updated.
    pub fn update_rows(
        &mut self,
        filter_col: &str,
        pred: &ValuePredicate,
        set_col: &str,
        new_value: &Value,
    ) -> TableResult<u64> {
        let fcol = self.schema.column_index(filter_col)?;
        let scol = self.schema.column_index(set_col)?;
        new_value
            .check_type(self.schema.columns()[scol].data_type)
            .map_err(TableError::Core)?;
        let mut moved_rows: Vec<Row> = Vec::new();
        for p in 0..self.partitions.len() {
            if !self.partitions[p].spec.range.may_match_on(fcol, self.schema.partition_column(), pred)
            {
                continue;
            }
            // Main fragment matches.
            let main_rows = self.partitions[p].main.find_rows(fcol, pred)?;
            for rpos in main_rows {
                let mut row = self.partitions[p].main.row(rpos)?;
                row[scol] = new_value.clone();
                self.partitions[p].main.delete(rpos);
                moved_rows.push(row);
            }
            // Delta fragment matches.
            let delta_rows = self.partitions[p].delta.find_rows(fcol, pred, &self.schema)?;
            for rpos in delta_rows {
                let mut row = self.partitions[p].delta.row(rpos, &self.schema)?;
                row[scol] = new_value.clone();
                self.partitions[p].delta.delete(rpos);
                moved_rows.push(row);
            }
        }
        let n = moved_rows.len() as u64;
        for row in moved_rows {
            self.insert(row)?;
        }
        Ok(n)
    }

    /// Changes a partition's accepted range (the periodic hot-boundary
    /// shift of an aging setup). Existing rows are not touched; call
    /// [`Table::relocate_misplaced`] to move them.
    pub fn set_partition_range(&mut self, pid: PartitionId, range: crate::PartitionRange) {
        self.partitions[pid.0].spec.range = range;
    }

    /// Moves every visible row whose partition-column value routes to a
    /// different partition (after a boundary shift or `ADD PARTITION`) into
    /// that partition's delta, exactly like the update-driven move of
    /// §4.2. Returns the number of rows moved.
    pub fn relocate_misplaced(&mut self) -> TableResult<u64> {
        let Some(tcol) = self.schema.partition_column() else { return Ok(0) };
        let mut moved: Vec<Row> = Vec::new();
        for pi in 0..self.partitions.len() {
            // Main fragment.
            let main_rows = self.partitions[pi].main.rows();
            for rpos in 0..main_rows {
                if !self.partitions[pi].main.is_visible(rpos) {
                    continue;
                }
                let temp = self.partitions[pi].main.value(rpos, tcol)?;
                if !self.partitions[pi].spec.range.accepts(&temp) {
                    let row = self.partitions[pi].main.row(rpos)?;
                    self.partitions[pi].main.delete(rpos);
                    moved.push(row);
                }
            }
            // Delta fragment.
            let delta_rows = self.partitions[pi].delta.rows();
            for rpos in 0..delta_rows {
                if !self.partitions[pi].delta.is_visible(rpos) {
                    continue;
                }
                let temp = self.partitions[pi].delta.value(rpos, tcol, &self.schema)?;
                if !self.partitions[pi].spec.range.accepts(&temp) {
                    let row = self.partitions[pi].delta.row(rpos, &self.schema)?;
                    self.partitions[pi].delta.delete(rpos);
                    moved.push(row);
                }
            }
        }
        let n = moved.len() as u64;
        for row in moved {
            self.insert(row)?;
        }
        Ok(n)
    }

    /// Unloads every resident column and drops all unpinned pool frames —
    /// the experiments' cold-restart simulation.
    pub fn unload_all(&self) {
        for p in &self.partitions {
            p.main.unload();
        }
        self.pool.clear();
    }
}

impl crate::partition::PartitionRange {
    /// [`crate::partition::PartitionRange::may_match`] guarded on the filter
    /// actually being the partition column.
    pub(crate) fn may_match_on(
        &self,
        filter_col: usize,
        partition_col: Option<usize>,
        pred: &ValuePredicate,
    ) -> bool {
        match partition_col {
            Some(pc) if pc == filter_col => self.may_match(pred),
            _ => true,
        }
    }
}


impl Table {
    /// Reassembles a table from restored parts (catalog restore).
    pub(crate) fn from_parts(
        schema: Schema,
        pool: BufferPool,
        config: PageConfig,
        partitions: Vec<Partition>,
    ) -> Self {
        Table { schema, pool, config, partitions, scan_options: ScanOptions::sequential() }
    }

    /// The table's page configuration.
    pub fn page_config(&self) -> &PageConfig {
        &self.config
    }
}

impl Partition {
    /// Reassembles a partition from restored parts (catalog restore).
    pub(crate) fn from_parts(spec: PartitionSpec, main: MainFragment, delta: DeltaFragment) -> Self {
        Partition { spec, main, delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionRange;
    use crate::schema::ColumnSpec;
    use payg_core::{DataType, LoadPolicy};
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;
    use std::sync::Arc;

    fn pool() -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
    }

    fn orders_schema() -> Schema {
        Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("status", DataType::Varchar),
            ColumnSpec::new("close_date", DataType::Integer),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
        .with_partition_column("close_date")
        .unwrap()
    }

    fn aged_table() -> Table {
        // close_date >= 100 → hot; < 100 → cold.
        let mut t = Table::create(
            pool(),
            PageConfig::tiny(),
            orders_schema(),
            vec![
                PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100))),
                PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(100))),
            ],
        )
        .unwrap();
        for i in 0..50 {
            t.insert(vec![
                Value::Integer(i),
                Value::Varchar("open".into()),
                Value::Integer(100 + i),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_routes_by_partition_column() {
        let mut t = aged_table();
        assert_eq!(t.partitions()[0].visible_rows(), 50);
        assert_eq!(t.partitions()[1].visible_rows(), 0);
        t.insert(vec![Value::Integer(99), Value::Varchar("closed".into()), Value::Integer(5)])
            .unwrap();
        assert_eq!(t.partitions()[1].visible_rows(), 1);
    }

    #[test]
    fn rows_outside_every_partition_are_rejected() {
        let mut t = Table::create(
            pool(),
            PageConfig::tiny(),
            orders_schema(),
            vec![PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100)))],
        )
        .unwrap();
        let r = t.insert(vec![Value::Integer(1), Value::Varchar("x".into()), Value::Integer(5)]);
        assert!(matches!(r, Err(TableError::NoPartitionForRow(_))));
    }

    #[test]
    fn delta_merge_moves_rows_to_main() {
        let mut t = aged_table();
        assert_eq!(t.partitions()[0].delta().visible_rows(), 50);
        assert_eq!(t.partitions()[0].main().rows(), 0);
        t.delta_merge(PartitionId(0)).unwrap();
        assert_eq!(t.partitions()[0].delta().visible_rows(), 0);
        assert_eq!(t.partitions()[0].main().visible_rows(), 50);
        // Values survive the merge, and the main dictionary is sorted, so
        // lookups work.
        assert_eq!(t.partitions()[0].main().value(0, 0).unwrap(), Value::Integer(0));
        let rows = t.partitions()[0]
            .main()
            .find_rows(1, &ValuePredicate::Eq(Value::Varchar("open".into())))
            .unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn update_on_partition_column_moves_rows_to_cold_delta() {
        let mut t = aged_table();
        t.delta_merge_all().unwrap();
        // Age orders with id < 10: set close_date to 1 (cold range).
        let moved = t
            .update_rows(
                "id",
                &ValuePredicate::Between(Value::Integer(0), Value::Integer(9)),
                "close_date",
                &Value::Integer(1),
            )
            .unwrap();
        assert_eq!(moved, 10);
        // Rows are now invisible in hot main, present in cold delta.
        assert_eq!(t.partitions()[0].visible_rows(), 40);
        assert_eq!(t.partitions()[1].delta().visible_rows(), 10);
        assert_eq!(t.visible_rows(), 50);
        // After merging the cold partition they land in page-loadable main.
        t.delta_merge(PartitionId(1)).unwrap();
        assert_eq!(t.partitions()[1].main().visible_rows(), 10);
        assert_eq!(
            t.partitions()[1].main().column(0).policy(),
            LoadPolicy::PageLoadable
        );
        // And the next hot merge physically drops the deleted rows.
        t.delta_merge(PartitionId(0)).unwrap();
        assert_eq!(t.partitions()[0].main().rows(), 40);
    }

    #[test]
    fn repeated_merges_are_stable() {
        let mut t = aged_table();
        t.delta_merge_all().unwrap();
        let before = t.visible_rows();
        t.delta_merge_all().unwrap();
        t.delta_merge_all().unwrap();
        assert_eq!(t.visible_rows(), before);
    }

    #[test]
    fn multi_partition_requires_partition_column() {
        let schema = Schema::new(vec![ColumnSpec::new("a", DataType::Integer)]).unwrap();
        let r = Table::create(
            pool(),
            PageConfig::tiny(),
            schema,
            vec![
                PartitionSpec::hot("h", PartitionRange::AtLeast(Value::Integer(0))),
                PartitionSpec::cold("c", PartitionRange::Below(Value::Integer(0))),
            ],
        );
        assert!(matches!(r, Err(TableError::Invalid(_))));
    }
}
