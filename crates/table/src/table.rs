//! The partitioned columnar table, served through a version chain.
//!
//! Every structural state of the table — per-partition `{main, frozen
//! deltas, active delta}` — is an immutable [`crate::version::TableVersion`]
//! published atomically. Readers enter through [`Table::session`] (`&self`,
//! cheap Arc clone) and evaluate against their pinned version; writers
//! append to the active delta cell; [`Table::delta_merge`] freezes the
//! delta, builds the replacement main fragment off to the side, and
//! publishes the result without ever blocking a reader (§2, §8 — queries
//! keep running during the merge).

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionPermit};
use crate::delta::DeltaFragment;
use crate::fragment::MainFragment;
use crate::partition::{PartitionId, PartitionSpec};
use crate::schema::{Row, Schema};
use crate::version::{
    DeltaCell, MainHandle, Partition, PartitionVersion, TableVersion, VersionChain,
};
use crate::{TableError, TableResult};
use payg_core::{PageConfig, ScanOptions, Value, ValuePredicate};
use payg_obs::{names, Gauge, Histogram, SpanKind};
use payg_storage::BufferPool;
use std::sync::{Arc, Mutex};

/// A partitioned columnar table (paper §2, §4).
pub struct Table {
    schema: Schema,
    pool: BufferPool,
    config: PageConfig,
    chain: VersionChain,
    /// One merge lock per partition: serializes merges (and the cross-
    /// partition DML that must not interleave with them) without ever
    /// being taken by readers.
    merge_locks: Vec<Arc<Mutex<()>>>,
    admission: AdmissionController,
    scan_options: ScanOptions,
    versions_live: Gauge,
    merge_ns: Histogram,
}

/// A read session pinned to one table version (`Table::session()`).
///
/// The snapshot observes the table exactly as it stood at session start:
/// main fragments are pinned (a merge publishing a replacement does not
/// retire this one's page chains while the snapshot lives), and the delta
/// is clipped to the rows present at session time. Dropping the snapshot
/// releases the admission slot and, when it was the last holder of a
/// replaced version, triggers retirement of that version's page chains.
pub struct Snapshot<'a> {
    table: &'a Table,
    version: Arc<TableVersion>,
    parts: Vec<Partition>,
    _permit: AdmissionPermit<'a>,
}

impl Snapshot<'_> {
    /// The pinned version's ordinal (diagnostics; monotonically increasing).
    pub fn version_no(&self) -> u64 {
        self.version.vno
    }

    /// The partitions as of this snapshot.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// The scan parallelism the owning table was configured with.
    pub fn scan_options(&self) -> ScanOptions {
        self.table.scan_options()
    }

    /// The owning table's observability registry.
    pub fn registry(&self) -> &payg_obs::Registry {
        self.table.registry()
    }

    /// Visible rows across all partitions, as of this snapshot.
    pub fn visible_rows(&self) -> u64 {
        self.parts.iter().map(|p| p.visible_rows()).sum()
    }
}

impl Table {
    /// Creates a table with the given partitions. Multi-partition tables
    /// require a partition column in the schema.
    pub fn create(
        pool: BufferPool,
        config: PageConfig,
        schema: Schema,
        specs: Vec<PartitionSpec>,
    ) -> TableResult<Self> {
        if specs.is_empty() {
            return Err(TableError::Invalid("a table needs at least one partition".into()));
        }
        if specs.len() > 1 && schema.partition_column().is_none() {
            return Err(TableError::Invalid(
                "multi-partition tables need a partition column".into(),
            ));
        }
        config.validate().map_err(TableError::Invalid)?;
        let versions_live = pool.registry().gauge(names::TABLE_VERSIONS_LIVE);
        let merge_ns = pool.registry().histogram(names::TABLE_MERGE_NS);
        let admission = AdmissionController::new(AdmissionConfig::default(), pool.registry());
        let mut table = Table {
            chain: VersionChain::new(TableVersion::new(0, Vec::new(), versions_live.clone())),
            schema,
            pool,
            config,
            merge_locks: Vec::new(),
            admission,
            scan_options: ScanOptions::sequential(),
            versions_live,
            merge_ns,
        };
        for spec in specs {
            table.add_partition(spec)?;
        }
        Ok(table)
    }

    /// Adds a partition (`ADD PARTITION`, §4.2): constant-time, no data
    /// reorganization — the new partition starts with empty fragments.
    pub fn add_partition(&mut self, spec: PartitionSpec) -> TableResult<PartitionId> {
        let main = MainFragment::build(
            &self.pool,
            &self.config,
            &self.schema,
            &[],
            spec.load_policy,
            spec.disposition,
        )?;
        let schema = &self.schema;
        let live = self.versions_live.clone();
        self.chain.publish(move |cur| {
            let mut parts: Vec<PartitionVersion> =
                cur.partitions.iter().map(|p| p.share()).collect();
            parts.push(PartitionVersion {
                spec,
                main: MainHandle::new(main),
                frozen: Vec::new(),
                active: Arc::new(DeltaCell::new(schema)),
            });
            TableVersion::new(cur.vno + 1, parts, live)
        });
        self.merge_locks.push(Arc::new(Mutex::new(())));
        Ok(PartitionId(self.merge_locks.len() - 1))
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The buffer pool backing this table.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The observability registry every layer under this table reports into
    /// (the pool's, which is the resource manager's).
    pub fn registry(&self) -> &payg_obs::Registry {
        self.pool.registry()
    }

    /// Opens a read session: pins the current version under an admission
    /// slot. `&self` — sessions never block on a running merge. Fails with
    /// [`TableError::Overloaded`] when the admission queue is saturated.
    pub fn session(&self) -> TableResult<Snapshot<'_>> {
        let permit = self.admission.acquire()?;
        let version = self.chain.current();
        let parts = pin_parts(&version);
        Ok(Snapshot { table: self, version, parts, _permit: permit })
    }

    /// Replaces the admission policy (and resets its counters' handles).
    pub fn set_admission(&mut self, config: AdmissionConfig) {
        self.admission = AdmissionController::new(config, self.pool.registry());
    }

    /// The active admission policy.
    pub fn admission_config(&self) -> AdmissionConfig {
        self.admission.config()
    }

    /// The partitions of the *current* version, pinned. Point-in-time:
    /// two calls may observe different versions — queries needing one
    /// coherent view should go through [`Table::session`].
    pub fn partitions(&self) -> Vec<Partition> {
        pin_parts(&self.chain.current())
    }

    /// How this table's queries scan main fragments (default: sequential).
    pub fn scan_options(&self) -> ScanOptions {
        self.scan_options
    }

    /// Sets the parallelism budget for this table's query scans. Results are
    /// bit-identical to sequential execution; only the wall-clock changes.
    pub fn set_scan_options(&mut self, opts: ScanOptions) {
        self.scan_options = opts;
    }

    /// Visible rows across all partitions and fragments (current version).
    pub fn visible_rows(&self) -> u64 {
        self.partitions().iter().map(|p| p.visible_rows()).sum()
    }

    /// Routes a row to its partition by the partition-column value.
    pub fn route(&self, row: &Row) -> TableResult<PartitionId> {
        let version = self.chain.current();
        self.route_in(&version, row)
    }

    fn route_in(&self, version: &TableVersion, row: &Row) -> TableResult<PartitionId> {
        let value = match self.schema.partition_column() {
            Some(c) => &row[c],
            None => return Ok(PartitionId(0)),
        };
        version
            .partitions
            .iter()
            .position(|p| p.spec.range.accepts(value))
            .map(PartitionId)
            .ok_or_else(|| TableError::NoPartitionForRow(value.to_string()))
    }

    /// Inserts a row: validated, routed, appended to the target partition's
    /// active delta (new data always lands in a delta first, §4.2). `&self`:
    /// writers and readers coexist; a writer racing a merge's freeze step
    /// retries against the freshly published active cell.
    pub fn insert(&self, row: Row) -> TableResult<()> {
        self.schema.check_row(&row)?;
        loop {
            let version = self.chain.current();
            let PartitionId(p) = self.route_in(&version, &row)?;
            let mut cell = version.partitions[p].active.lock();
            if cell.sealed {
                // A merge sealed this cell between our version read and the
                // lock; the successor version (with a fresh active cell) is
                // published under the same critical section, so the retry
                // sees it immediately.
                continue;
            }
            cell.frag.append(&row);
            return Ok(());
        }
    }

    /// Inserts many rows.
    pub fn insert_all(&self, rows: impl IntoIterator<Item = Row>) -> TableResult<u64> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delta merge of one partition (§2), online and abortable:
    ///
    /// 1. **Freeze** — the active delta cell is sealed in place and a
    ///    version with it on the frozen list (plus a fresh active cell) is
    ///    published. Readers never see a half-frozen state; writers append
    ///    to the new cell.
    /// 2. **Side build** — the replacement main fragment (old main's
    ///    visible rows + every frozen cell's visible rows) is built into
    ///    fresh page chains. Queries keep executing against the published
    ///    version throughout.
    /// 3. **Publish** — the version with the new main (frozen list empty)
    ///    replaces the current one, and the old main fragment is flagged
    ///    for retirement: its page chains are discarded when the last
    ///    snapshot holding it drops.
    ///
    /// A build failure (storage fault, budget, corruption) aborts between
    /// steps 2 and 3: the frozen-delta version keeps serving — no rows are
    /// lost, reads stay exact — the side-built chains are reclaimed by the
    /// builders' cleanup guards, and a retried merge picks the frozen cells
    /// up again.
    pub fn delta_merge(&self, pid: PartitionId) -> TableResult<()> {
        let lock = Arc::clone(&self.merge_locks[pid.0]);
        let _guard = match lock.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let _span = self.registry().tracer().span(SpanKind::Merge, pid.0 as u64);
        let started = std::time::Instant::now();

        // Anything to merge? (Clean main, no frozen backlog, empty delta.)
        {
            let v = self.chain.current();
            let pv = &v.partitions[pid.0];
            let main = pv.main.frag();
            let dirty = !pv.frozen.is_empty()
                || pv.active.rows() > 0
                || main.visible_rows() != main.rows();
            if !dirty {
                return Ok(());
            }
        }

        // Step 1: freeze. Seal the active cell (when it has rows) and
        // publish the frozen state. Sealing happens under the publish lock,
        // so a writer that observes `sealed` finds the successor version
        // as soon as it re-reads the chain.
        let live = self.versions_live.clone();
        let schema = &self.schema;
        let frozen_version = self.chain.publish(|cur| {
            let pv = &cur.partitions[pid.0];
            let mut frozen = pv.frozen.clone();
            let mut active = Arc::clone(&pv.active);
            {
                let mut st = pv.active.lock();
                if st.frag.rows() > 0 {
                    st.sealed = true;
                    drop(st);
                    frozen.push(Arc::clone(&pv.active));
                    active = Arc::new(DeltaCell::new(schema));
                }
            }
            let mut parts: Vec<PartitionVersion> =
                cur.partitions.iter().map(|p| p.share()).collect();
            parts[pid.0] = PartitionVersion {
                spec: pv.spec.clone(),
                main: Arc::clone(&pv.main),
                frozen,
                active,
            };
            TableVersion::new(cur.vno + 1, parts, live)
        });

        // Step 2: side build. No table lock is held; faults abort here and
        // the frozen version keeps serving.
        let pv = &frozen_version.partitions[pid.0];
        let build_input = (|| -> TableResult<Vec<Row>> {
            let mut rows = pv.main.frag().visible_row_values()?;
            for cell in &pv.frozen {
                rows.extend(cell.lock().frag.visible_row_values(&self.schema)?);
            }
            Ok(rows)
        })();
        let built = build_input.and_then(|rows| {
            MainFragment::build(
                &self.pool,
                &self.config,
                &self.schema,
                &rows,
                pv.spec.load_policy,
                pv.spec.disposition,
            )
        });
        let new_main = match built {
            Ok(m) => m,
            Err(e) => {
                self.merge_ns.record(started.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };

        // Step 3: publish the merged version; retire the replaced main.
        let live = self.versions_live.clone();
        let pool = self.pool.clone();
        self.chain.publish(move |cur| {
            let pv = &cur.partitions[pid.0];
            pv.main.schedule_retire(&pool);
            let mut parts: Vec<PartitionVersion> =
                cur.partitions.iter().map(|p| p.share()).collect();
            parts[pid.0] = PartitionVersion {
                spec: pv.spec.clone(),
                main: MainHandle::new(new_main),
                frozen: Vec::new(),
                active: Arc::clone(&pv.active),
            };
            TableVersion::new(cur.vno + 1, parts, live)
        });
        self.merge_ns.record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Delta merge of every partition.
    pub fn delta_merge_all(&self) -> TableResult<()> {
        for p in 0..self.merge_locks.len() {
            self.delta_merge(PartitionId(p))?;
        }
        Ok(())
    }

    /// The aging/update DML: for every visible row matching `pred` on
    /// `filter_col`, sets `set_col` to `new_value`. No in-place update —
    /// the original row is deleted and the updated row re-inserted through
    /// normal routing, so updates to the partition column *move* rows
    /// between partitions (into the target's delta). Returns the number of
    /// rows updated.
    ///
    /// Runs under every partition's merge lock (it must not interleave
    /// with a merge's freeze/build window). Row visibility is read
    /// committed: an open snapshot observes the deletions as they land.
    pub fn update_rows(
        &self,
        filter_col: &str,
        pred: &ValuePredicate,
        set_col: &str,
        new_value: &Value,
    ) -> TableResult<u64> {
        let fcol = self.schema.column_index(filter_col)?;
        let scol = self.schema.column_index(set_col)?;
        new_value
            .check_type(self.schema.columns()[scol].data_type)
            .map_err(TableError::Core)?;
        let _guards = self.all_merge_locks();
        let version = self.chain.current();
        let mut moved_rows: Vec<Row> = Vec::new();
        for pv in &version.partitions {
            if !pv.spec.range.may_match_on(fcol, self.schema.partition_column(), pred) {
                continue;
            }
            // Main fragment matches.
            let main = pv.main.frag();
            for rpos in main.find_rows(fcol, pred)? {
                let mut row = main.row(rpos)?;
                row[scol] = new_value.clone();
                main.delete(rpos);
                moved_rows.push(row);
            }
            // Delta matches: frozen cells (awaiting merge) and the active cell.
            for cell in pv.frozen.iter().chain(std::iter::once(&pv.active)) {
                let mut st = cell.lock();
                for rpos in st.frag.find_rows(fcol, pred, &self.schema)? {
                    let mut row = st.frag.row(rpos, &self.schema)?;
                    row[scol] = new_value.clone();
                    st.frag.delete(rpos);
                    moved_rows.push(row);
                }
            }
        }
        drop(version);
        let n = moved_rows.len() as u64;
        for row in moved_rows {
            self.insert(row)?;
        }
        Ok(n)
    }

    /// Changes a partition's accepted range (the periodic hot-boundary
    /// shift of an aging setup). Existing rows are not touched; call
    /// [`Table::relocate_misplaced`] to move them.
    pub fn set_partition_range(&mut self, pid: PartitionId, range: crate::PartitionRange) {
        let live = self.versions_live.clone();
        self.chain.publish(move |cur| {
            let mut parts: Vec<PartitionVersion> =
                cur.partitions.iter().map(|p| p.share()).collect();
            parts[pid.0].spec.range = range;
            TableVersion::new(cur.vno + 1, parts, live)
        });
    }

    /// Moves every visible row whose partition-column value routes to a
    /// different partition (after a boundary shift or `ADD PARTITION`) into
    /// that partition's delta, exactly like the update-driven move of
    /// §4.2. Returns the number of rows moved. Runs under every partition's
    /// merge lock, like [`Table::update_rows`].
    pub fn relocate_misplaced(&self) -> TableResult<u64> {
        let Some(tcol) = self.schema.partition_column() else { return Ok(0) };
        let _guards = self.all_merge_locks();
        let version = self.chain.current();
        let mut moved: Vec<Row> = Vec::new();
        for pv in &version.partitions {
            // Main fragment.
            let main = pv.main.frag();
            for rpos in 0..main.rows() {
                if !main.is_visible(rpos) {
                    continue;
                }
                let temp = main.value(rpos, tcol)?;
                if !pv.spec.range.accepts(&temp) {
                    let row = main.row(rpos)?;
                    main.delete(rpos);
                    moved.push(row);
                }
            }
            // Delta cells.
            for cell in pv.frozen.iter().chain(std::iter::once(&pv.active)) {
                let mut st = cell.lock();
                for rpos in 0..st.frag.rows() {
                    if !st.frag.is_visible(rpos) {
                        continue;
                    }
                    let temp = st.frag.value(rpos, tcol, &self.schema)?;
                    if !pv.spec.range.accepts(&temp) {
                        let row = st.frag.row(rpos, &self.schema)?;
                        st.frag.delete(rpos);
                        moved.push(row);
                    }
                }
            }
        }
        drop(version);
        let n = moved.len() as u64;
        for row in moved {
            self.insert(row)?;
        }
        Ok(n)
    }

    /// Unloads every resident column of the *current* version and drops all
    /// unpinned pool frames — the experiments' cold-restart simulation.
    /// Routed through the version chain: a retired-but-still-snapshot-held
    /// main fragment is not touched, so a concurrent scan on an old
    /// snapshot never loses a chain it is about to pin.
    pub fn unload_all(&self) {
        let version = self.chain.current();
        for pv in &version.partitions {
            pv.main.frag().unload();
        }
        self.pool.clear();
    }

    /// Every partition's merge lock, taken in partition order (the one
    /// sanctioned order; merges take a single one, so no cycle exists).
    fn all_merge_locks(&self) -> Vec<std::sync::MutexGuard<'_, ()>> {
        self.merge_locks
            .iter()
            .map(|l| match l.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            })
            .collect()
    }
}

/// Pins every partition of `version` at its current append watermark.
fn pin_parts(version: &TableVersion) -> Vec<Partition> {
    version.partitions.iter().map(|pv| Partition::pin(pv, pv.active.rows())).collect()
}

impl crate::partition::PartitionRange {
    /// [`crate::partition::PartitionRange::may_match`] guarded on the filter
    /// actually being the partition column.
    pub(crate) fn may_match_on(
        &self,
        filter_col: usize,
        partition_col: Option<usize>,
        pred: &ValuePredicate,
    ) -> bool {
        match partition_col {
            Some(pc) if pc == filter_col => self.may_match(pred),
            _ => true,
        }
    }
}

impl Table {
    /// Reassembles a table from restored parts (catalog restore).
    pub(crate) fn from_parts(
        schema: Schema,
        pool: BufferPool,
        config: PageConfig,
        restored: Vec<(PartitionSpec, MainFragment, DeltaFragment)>,
    ) -> Self {
        let versions_live = pool.registry().gauge(names::TABLE_VERSIONS_LIVE);
        let merge_ns = pool.registry().histogram(names::TABLE_MERGE_NS);
        let admission = AdmissionController::new(AdmissionConfig::default(), pool.registry());
        let merge_locks = restored.iter().map(|_| Arc::new(Mutex::new(()))).collect();
        let partitions: Vec<PartitionVersion> = restored
            .into_iter()
            .map(|(spec, main, delta)| PartitionVersion {
                spec,
                main: MainHandle::new(main),
                frozen: Vec::new(),
                active: Arc::new(DeltaCell::from_fragment(delta)),
            })
            .collect();
        Table {
            chain: VersionChain::new(TableVersion::new(0, partitions, versions_live.clone())),
            schema,
            pool,
            config,
            merge_locks,
            admission,
            scan_options: ScanOptions::sequential(),
            versions_live,
            merge_ns,
        }
    }

    /// The table's page configuration.
    pub fn page_config(&self) -> &PageConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionRange;
    use crate::schema::ColumnSpec;
    use payg_core::{DataType, LoadPolicy};
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;
    use std::sync::Arc;

    fn pool() -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
    }

    fn orders_schema() -> Schema {
        Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("status", DataType::Varchar),
            ColumnSpec::new("close_date", DataType::Integer),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
        .with_partition_column("close_date")
        .unwrap()
    }

    fn aged_table() -> Table {
        // close_date >= 100 → hot; < 100 → cold.
        let t = Table::create(
            pool(),
            PageConfig::tiny(),
            orders_schema(),
            vec![
                PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100))),
                PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(100))),
            ],
        )
        .unwrap();
        for i in 0..50 {
            t.insert(vec![
                Value::Integer(i),
                Value::Varchar("open".into()),
                Value::Integer(100 + i),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_routes_by_partition_column() {
        let t = aged_table();
        assert_eq!(t.partitions()[0].visible_rows(), 50);
        assert_eq!(t.partitions()[1].visible_rows(), 0);
        t.insert(vec![Value::Integer(99), Value::Varchar("closed".into()), Value::Integer(5)])
            .unwrap();
        assert_eq!(t.partitions()[1].visible_rows(), 1);
    }

    #[test]
    fn rows_outside_every_partition_are_rejected() {
        let t = Table::create(
            pool(),
            PageConfig::tiny(),
            orders_schema(),
            vec![PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100)))],
        )
        .unwrap();
        let r = t.insert(vec![Value::Integer(1), Value::Varchar("x".into()), Value::Integer(5)]);
        assert!(matches!(r, Err(TableError::NoPartitionForRow(_))));
    }

    #[test]
    fn delta_merge_moves_rows_to_main() {
        let t = aged_table();
        assert_eq!(t.partitions()[0].delta().visible_rows(), 50);
        assert_eq!(t.partitions()[0].main().rows(), 0);
        t.delta_merge(PartitionId(0)).unwrap();
        assert_eq!(t.partitions()[0].delta().visible_rows(), 0);
        assert_eq!(t.partitions()[0].main().visible_rows(), 50);
        // Values survive the merge, and the main dictionary is sorted, so
        // lookups work.
        assert_eq!(t.partitions()[0].main().value(0, 0).unwrap(), Value::Integer(0));
        let rows = t.partitions()[0]
            .main()
            .find_rows(1, &ValuePredicate::Eq(Value::Varchar("open".into())))
            .unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn update_on_partition_column_moves_rows_to_cold_delta() {
        let t = aged_table();
        t.delta_merge_all().unwrap();
        // Age orders with id < 10: set close_date to 1 (cold range).
        let moved = t
            .update_rows(
                "id",
                &ValuePredicate::Between(Value::Integer(0), Value::Integer(9)),
                "close_date",
                &Value::Integer(1),
            )
            .unwrap();
        assert_eq!(moved, 10);
        // Rows are now invisible in hot main, present in cold delta.
        assert_eq!(t.partitions()[0].visible_rows(), 40);
        assert_eq!(t.partitions()[1].delta().visible_rows(), 10);
        assert_eq!(t.visible_rows(), 50);
        // After merging the cold partition they land in page-loadable main.
        t.delta_merge(PartitionId(1)).unwrap();
        assert_eq!(t.partitions()[1].main().visible_rows(), 10);
        assert_eq!(
            t.partitions()[1].main().column(0).policy(),
            LoadPolicy::PageLoadable
        );
        // And the next hot merge physically drops the deleted rows.
        t.delta_merge(PartitionId(0)).unwrap();
        assert_eq!(t.partitions()[0].main().rows(), 40);
    }

    #[test]
    fn repeated_merges_are_stable() {
        let t = aged_table();
        t.delta_merge_all().unwrap();
        let before = t.visible_rows();
        t.delta_merge_all().unwrap();
        t.delta_merge_all().unwrap();
        assert_eq!(t.visible_rows(), before);
    }

    #[test]
    fn multi_partition_requires_partition_column() {
        let schema = Schema::new(vec![ColumnSpec::new("a", DataType::Integer)]).unwrap();
        let r = Table::create(
            pool(),
            PageConfig::tiny(),
            schema,
            vec![
                PartitionSpec::hot("h", PartitionRange::AtLeast(Value::Integer(0))),
                PartitionSpec::cold("c", PartitionRange::Below(Value::Integer(0))),
            ],
        );
        assert!(matches!(r, Err(TableError::Invalid(_))));
    }

    #[test]
    fn snapshot_is_stable_across_a_merge() {
        let t = aged_table();
        let before_merge = t.session().unwrap();
        assert_eq!(before_merge.partitions()[0].delta().visible_rows(), 50);
        assert_eq!(before_merge.partitions()[0].main().rows(), 0);

        t.delta_merge_all().unwrap();

        // The pinned snapshot still observes the pre-merge layout…
        assert_eq!(before_merge.partitions()[0].delta().visible_rows(), 50);
        assert_eq!(before_merge.partitions()[0].main().rows(), 0);
        assert_eq!(before_merge.visible_rows(), 50);
        // …while a fresh session sees the merged one, with the same answer.
        let after_merge = t.session().unwrap();
        assert!(after_merge.version_no() > before_merge.version_no());
        assert_eq!(after_merge.partitions()[0].delta().visible_rows(), 0);
        assert_eq!(after_merge.partitions()[0].main().visible_rows(), 50);
        assert_eq!(after_merge.visible_rows(), 50);
    }

    #[test]
    fn snapshot_clips_concurrent_inserts() {
        let t = aged_table();
        let s = t.session().unwrap();
        assert_eq!(s.visible_rows(), 50);
        t.insert(vec![Value::Integer(90), Value::Varchar("new".into()), Value::Integer(200)])
            .unwrap();
        // Appended after the snapshot's watermark: invisible to it.
        assert_eq!(s.visible_rows(), 50);
        assert_eq!(t.session().unwrap().visible_rows(), 51);
    }

    #[test]
    fn retired_main_chains_are_dropped_after_last_snapshot() {
        let t = aged_table();
        t.delta_merge_all().unwrap();
        let store = t.pool().store().clone();
        let chains_before = store.chains().len();
        let pinned = t.session().unwrap();

        // Rewrite some rows and merge: the hot partition's main is rebuilt.
        t.update_rows(
            "id",
            &ValuePredicate::Eq(Value::Integer(3)),
            "status",
            &Value::Varchar("closed".into()),
        )
        .unwrap();
        t.delta_merge_all().unwrap();
        // While the pre-merge snapshot lives, the old chains must survive
        // and stay readable. Deletes are read-committed (the shared bitmap
        // shows through) while the replacement insert is clipped by the
        // snapshot watermark, so the pinned view reads 49.
        assert!(store.chains().len() > chains_before);
        assert_eq!(pinned.visible_rows(), 49);
        drop(pinned);
        // Last holder gone → retirement ran; chain count returns to the
        // steady state (new mains replaced the old ones one for one).
        assert_eq!(store.chains().len(), chains_before);
        assert_eq!(t.visible_rows(), 50);
    }

    #[test]
    fn versions_live_gauge_tracks_chain() {
        let t = aged_table();
        let gauge = t.registry().gauge(names::TABLE_VERSIONS_LIVE);
        let baseline = gauge.get();
        let s = t.session().unwrap();
        t.delta_merge_all().unwrap();
        // The snapshot pins its version; merges published more.
        assert!(gauge.get() >= baseline);
        drop(s);
        assert!(gauge.get() >= 1, "current version is always live");
    }
}
