//! Table-layer errors.

use payg_core::CoreError;

/// Errors surfaced by the table engine.
#[derive(Debug)]
pub enum TableError {
    /// A column-structure failure.
    Core(CoreError),
    /// A column name not present in the schema.
    UnknownColumn(String),
    /// A row whose arity does not match the schema.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values in the offered row.
        got: usize,
    },
    /// No partition accepts the row's partition-column value.
    NoPartitionForRow(String),
    /// A schema or partitioning misconfiguration.
    Invalid(String),
    /// Admission control rejected the session: the table is saturated and
    /// the bounded wait queue overflowed or the wait timed out.
    Overloaded,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Core(e) => write!(f, "column: {e}"),
            TableError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            TableError::NoPartitionForRow(v) => {
                write!(f, "no partition accepts partition-column value {v}")
            }
            TableError::Invalid(msg) => write!(f, "invalid table configuration: {msg}"),
            TableError::Overloaded => {
                write!(f, "table overloaded: session admission queue full or wait timed out")
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for TableError {
    fn from(e: CoreError) -> Self {
        TableError::Core(e)
    }
}

/// Result alias for table operations.
pub type TableResult<T> = Result<T, TableError>;
