//! Range partitioning (paper §4.2).
//!
//! Aging-aware tables are range partitioned on the temperature column: one
//! hot partition (default columns) plus cold partitions added with
//! `ADD PARTITION` (page-loadable columns, typically a higher unload
//! priority). Partition ranges compare on the order-preserving byte keys,
//! so any column type can partition.

use payg_core::{LoadPolicy, Value, ValuePredicate};
use payg_resman::Disposition;

/// Identifies a partition within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub usize);

/// The value range a partition accepts (on the partition column).
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionRange {
    /// Accepts everything (unpartitioned tables' single partition).
    All,
    /// Accepts values `< bound` (typical cold partition: old dates).
    Below(Value),
    /// Accepts values `>= bound` (typical hot partition: recent dates).
    AtLeast(Value),
    /// Accepts `lo <= value < hi`.
    Between(Value, Value),
}

impl PartitionRange {
    /// True when the partition accepts `value`.
    pub fn accepts(&self, value: &Value) -> bool {
        let k = value.to_key();
        match self {
            PartitionRange::All => true,
            PartitionRange::Below(b) => k < b.to_key(),
            PartitionRange::AtLeast(b) => k >= b.to_key(),
            PartitionRange::Between(lo, hi) => k >= lo.to_key() && k < hi.to_key(),
        }
    }

    /// True when some value matching `pred` could live in this partition —
    /// used to prune partitions when the filter is on the partition column
    /// ("only the columns of relevant partitions are touched", §4.1).
    pub fn may_match(&self, pred: &ValuePredicate) -> bool {
        match pred {
            ValuePredicate::Eq(v) => self.accepts(v),
            ValuePredicate::In(vs) => vs.iter().any(|v| self.accepts(v)),
            // Prefix predicates on the partition column are rare; stay
            // conservative (no pruning) rather than reason about key ranges.
            ValuePredicate::StartsWith(_) => true,
            ValuePredicate::Between(lo, hi) => {
                let (plo, phi) = (lo.to_key(), hi.to_key());
                if plo > phi {
                    return false;
                }
                match self {
                    PartitionRange::All => true,
                    PartitionRange::Below(b) => plo < b.to_key(),
                    PartitionRange::AtLeast(b) => phi >= b.to_key(),
                    PartitionRange::Between(lo2, hi2) => {
                        plo < hi2.to_key() && phi >= lo2.to_key()
                    }
                }
            }
        }
    }
}

/// Configuration of one partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Human-readable name ("hot", "cold-2024", …).
    pub name: String,
    /// Accepted partition-column range.
    pub range: PartitionRange,
    /// Load policy of this partition's main-fragment columns.
    pub load_policy: LoadPolicy,
    /// Eviction disposition for fully-resident columns of this partition
    /// (cold default columns get a cheaper-to-evict disposition).
    pub disposition: Disposition,
}

impl PartitionSpec {
    /// A hot partition: fully resident, ordinary disposition.
    pub fn hot(name: impl Into<String>, range: PartitionRange) -> Self {
        PartitionSpec {
            name: name.into(),
            range,
            load_policy: LoadPolicy::FullyResident,
            disposition: Disposition::MidTerm,
        }
    }

    /// A cold partition: page loadable.
    pub fn cold(name: impl Into<String>, range: PartitionRange) -> Self {
        PartitionSpec {
            name: name.into(),
            range,
            load_policy: LoadPolicy::PageLoadable,
            disposition: Disposition::ShortTerm,
        }
    }

    /// A single catch-all partition for unpartitioned tables.
    pub fn single(load_policy: LoadPolicy) -> Self {
        PartitionSpec {
            name: "default".into(),
            range: PartitionRange::All,
            load_policy,
            disposition: Disposition::MidTerm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_accept_correctly() {
        let below = PartitionRange::Below(Value::Integer(10));
        assert!(below.accepts(&Value::Integer(9)));
        assert!(!below.accepts(&Value::Integer(10)));
        let atleast = PartitionRange::AtLeast(Value::Integer(10));
        assert!(atleast.accepts(&Value::Integer(10)));
        assert!(!atleast.accepts(&Value::Integer(9)));
        let between = PartitionRange::Between(Value::Integer(5), Value::Integer(10));
        assert!(between.accepts(&Value::Integer(5)));
        assert!(between.accepts(&Value::Integer(9)));
        assert!(!between.accepts(&Value::Integer(10)));
        assert!(PartitionRange::All.accepts(&Value::Varchar("anything".into())));
    }

    #[test]
    fn pruning_on_predicates() {
        let cold = PartitionRange::Below(Value::Integer(100));
        let hot = PartitionRange::AtLeast(Value::Integer(100));
        let eq_cold = ValuePredicate::Eq(Value::Integer(50));
        assert!(cold.may_match(&eq_cold));
        assert!(!hot.may_match(&eq_cold));
        let range_both = ValuePredicate::Between(Value::Integer(90), Value::Integer(110));
        assert!(cold.may_match(&range_both));
        assert!(hot.may_match(&range_both));
        let range_hot = ValuePredicate::Between(Value::Integer(100), Value::Integer(110));
        assert!(!cold.may_match(&range_hot));
        assert!(hot.may_match(&range_hot));
        let empty = ValuePredicate::Between(Value::Integer(10), Value::Integer(5));
        assert!(!cold.may_match(&empty));
        let in_pred = ValuePredicate::In(vec![Value::Integer(99), Value::Integer(150)]);
        assert!(cold.may_match(&in_pred));
        assert!(hot.may_match(&in_pred));
    }
}
