//! Admission control for read sessions.
//!
//! The serving layer degrades gracefully under overload instead of wedging:
//! a semaphore bounds concurrent sessions, a bounded wait queue absorbs
//! bursts, and a timeout converts starvation into the typed
//! [`crate::TableError::Overloaded`] error. Exported metrics:
//! `table_sessions_active` (gauge), `table_sessions_queued` (counter of
//! waits that had to queue), `table_sessions_rejected` (counter of queue
//! overflows and timeouts).

use payg_obs::{names, Counter, Gauge, Registry};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Admission policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Sessions served concurrently before new arrivals queue.
    pub max_sessions: usize,
    /// Arrivals allowed to wait for a slot; beyond this, immediate
    /// rejection with [`crate::TableError::Overloaded`].
    pub max_queued: usize,
    /// How long a queued arrival waits before giving up.
    pub timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        // Generous defaults: single-threaded callers and ordinary test
        // workloads never queue, let alone get rejected.
        AdmissionConfig {
            max_sessions: 64,
            max_queued: 64,
            timeout: Duration::from_secs(5),
        }
    }
}

struct AdmissionState {
    active: usize,
    queued: usize,
}

/// Semaphore + bounded wait queue guarding session entry.
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
    freed: Condvar,
    sessions_active: Gauge,
    sessions_queued: Counter,
    sessions_rejected: Counter,
}

impl AdmissionController {
    /// A controller reporting into `registry`.
    pub(crate) fn new(config: AdmissionConfig, registry: &Registry) -> Self {
        AdmissionController {
            config,
            state: Mutex::new(AdmissionState { active: 0, queued: 0 }),
            freed: Condvar::new(),
            sessions_active: registry.gauge(names::TABLE_SESSIONS_ACTIVE),
            sessions_queued: registry.counter(names::TABLE_SESSIONS_QUEUED),
            sessions_rejected: registry.counter(names::TABLE_SESSIONS_REJECTED),
        }
    }

    /// The active policy.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Acquires a session slot, queueing (bounded, with timeout) when the
    /// table is saturated. `Err` is always [`crate::TableError::Overloaded`].
    pub(crate) fn acquire(&self) -> crate::TableResult<AdmissionPermit<'_>> {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if st.active < self.config.max_sessions {
            st.active += 1;
            self.sessions_active.set(st.active as u64);
            return Ok(AdmissionPermit { controller: self });
        }
        if st.queued >= self.config.max_queued {
            self.sessions_rejected.inc();
            return Err(crate::TableError::Overloaded);
        }
        st.queued += 1;
        self.sessions_queued.inc();
        let deadline = std::time::Instant::now() + self.config.timeout;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                st.queued -= 1;
                self.sessions_rejected.inc();
                return Err(crate::TableError::Overloaded);
            }
            let (guard, _timeout) = match self.freed.wait_timeout(st, deadline - now) {
                Ok(r) => r,
                Err(p) => {
                    let (g, t) = p.into_inner();
                    (g, t)
                }
            };
            st = guard;
            if st.active < self.config.max_sessions {
                st.queued -= 1;
                st.active += 1;
                self.sessions_active.set(st.active as u64);
                return Ok(AdmissionPermit { controller: self });
            }
        }
    }

    fn release(&self) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        st.active -= 1;
        self.sessions_active.set(st.active as u64);
        drop(st);
        self.freed.notify_one();
    }
}

/// RAII session slot: dropping it frees the slot and wakes one waiter.
pub(crate) struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.controller.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableError;

    fn controller(max_sessions: usize, max_queued: usize, timeout_ms: u64) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig {
                max_sessions,
                max_queued,
                timeout: Duration::from_millis(timeout_ms),
            },
            &Registry::new(),
        )
    }

    #[test]
    fn grants_up_to_capacity_then_queues_then_rejects() {
        let c = controller(2, 0, 10);
        let a = c.acquire().unwrap();
        let b = c.acquire().unwrap();
        // Queue capacity is zero: third arrival is rejected immediately.
        assert!(matches!(c.acquire(), Err(TableError::Overloaded)));
        drop(a);
        let _c2 = c.acquire().unwrap();
        drop(b);
    }

    #[test]
    fn queued_arrival_gets_slot_when_one_frees() {
        let c = std::sync::Arc::new(controller(1, 1, 2_000));
        let held = c.acquire().unwrap();
        let c2 = std::sync::Arc::clone(&c);
        let waiter = std::thread::spawn(move || c2.acquire().map(|_| ()));
        // Give the waiter time to enqueue, then free the slot.
        while c.state.lock().unwrap().queued == 0 {
            std::thread::yield_now();
        }
        drop(held);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn queued_arrival_times_out_as_overloaded() {
        let c = controller(1, 4, 20);
        let _held = c.acquire().unwrap();
        let r = c.acquire();
        assert!(matches!(r, Err(TableError::Overloaded)));
        assert_eq!(c.sessions_rejected.get(), 1);
    }
}
