//! Versioned serving: snapshot-stable reads across an online delta merge.
//!
//! The paper's main/delta design (§2, §8) assumes queries keep running while
//! a delta merge rebuilds the main fragment. This module provides the
//! machinery: an immutable, Arc'd [`TableVersion`] per table generation and
//! an atomic version chain the table publishes new generations through.
//!
//! Lifecycle of one partition's fragments across a merge:
//!
//! ```text
//!   V      : main=M0, frozen=[],  active=D0   ← readers pinned here keep M0+D0
//!   seal   : D0.sealed = true (in place — V's readers still see D0's rows)
//!   V+1    : main=M0, frozen=[D0], active=D1  ← writers append to D1
//!   build  : M1 := merge(M0.visible, D0.visible)   (off to the side)
//!   V+2    : main=M1, frozen=[],  active=D1   ← M0 flagged for retirement
//!   retire : when the last snapshot holding M0 drops, M0's page chains are
//!            discarded from the pool and the backing store (never while a
//!            scan can still pin them — the Arc refcount is the epoch).
//! ```
//!
//! An aborted merge stops after `V+1`: the sealed delta stays frozen (its
//! rows remain fully visible), the side-built chains are reclaimed by the
//! builders' cleanup guards, and a retried merge picks the frozen cell up
//! again. No version ever exposes a half-merged state.
//!
//! Row deletes (`update_rows`, `relocate_misplaced`) are read-committed, not
//! snapshot-isolated: they flip visibility bitmaps shared by all versions.
//! Structural changes — fragment replacement, chain retirement — are the
//! snapshot-stable part, which is what concurrent scans need to never pin a
//! dropped chain or observe a half-published merge.

use crate::delta::DeltaFragment;
use crate::fragment::MainFragment;
use crate::partition::PartitionSpec;
use crate::schema::{Row, Schema};
use crate::TableResult;
use payg_core::{Value, ValuePredicate};
use payg_obs::Gauge;
use payg_storage::{BufferPool, ChainId};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// Interior state of one delta cell.
pub(crate) struct DeltaCellState {
    /// The append-order fragment.
    pub frag: DeltaFragment,
    /// Set (in place, under the lock) when a merge freezes this cell. A
    /// sealed cell accepts no more appends; writers that lose the race
    /// reload the current version and retry against the fresh active cell.
    pub sealed: bool,
}

/// One delta fragment behind a lock, shared by every version that references
/// it. Sealing happens *in place* so snapshots pinned before the seal keep
/// reading the same cell (clipped to their admission watermark).
pub(crate) struct DeltaCell {
    state: Mutex<DeltaCellState>,
}

impl DeltaCell {
    pub(crate) fn new(schema: &Schema) -> Self {
        DeltaCell {
            state: Mutex::new(DeltaCellState { frag: DeltaFragment::new(schema), sealed: false }),
        }
    }

    /// Wraps a restored fragment (catalog restore) as an unsealed cell.
    pub(crate) fn from_fragment(frag: DeltaFragment) -> Self {
        DeltaCell { state: Mutex::new(DeltaCellState { frag, sealed: false }) }
    }

    /// Locks the cell. Appends, seals, deletes, and snapshot reads all go
    /// through here; the critical sections are short (no I/O under the lock).
    pub(crate) fn lock(&self) -> MutexGuard<'_, DeltaCellState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Rows ever appended (including deleted) — the append watermark.
    pub(crate) fn rows(&self) -> u64 {
        self.lock().frag.rows()
    }
}

/// The retirement plan attached to a main fragment once a merge replaces it:
/// every page chain the fragment owns, to be discarded when the last
/// snapshot drops.
struct RetirePlan {
    pool: BufferPool,
    chains: Vec<u64>,
}

/// A main fragment plus its deferred retirement. Versions and snapshots
/// share the handle via `Arc`; the strong count is the epoch — when it
/// reaches zero no scan can ever pin the fragment's pages again, so `Drop`
/// discards the chains from the pool and the backing store.
pub(crate) struct MainHandle {
    frag: MainFragment,
    retire: OnceLock<RetirePlan>,
}

impl MainHandle {
    pub(crate) fn new(frag: MainFragment) -> Arc<Self> {
        Arc::new(MainHandle { frag, retire: OnceLock::new() })
    }

    pub(crate) fn frag(&self) -> &MainFragment {
        &self.frag
    }

    /// Flags this fragment's chains for discard-on-last-drop. Called by the
    /// merge publish step, exactly once, after the replacement version is
    /// live. Restored (catalog) fragments whose chains outlive the process
    /// are simply never flagged.
    pub(crate) fn schedule_retire(&self, pool: &BufferPool) {
        let chains = self
            .frag
            .columns()
            .iter()
            .flat_map(|c| c.chains().into_iter().map(|(_, id)| id))
            .collect();
        let _ = self.retire.set(RetirePlan { pool: pool.clone(), chains });
    }
}

impl Drop for MainHandle {
    fn drop(&mut self) {
        if let Some(plan) = self.retire.take() {
            for chain in plan.chains {
                plan.pool.discard_chain(ChainId(chain));
            }
        }
    }
}

/// One partition inside one table version.
pub(crate) struct PartitionVersion {
    pub spec: PartitionSpec,
    pub main: Arc<MainHandle>,
    /// Sealed delta cells awaiting (or re-awaiting, after an abort) merge,
    /// oldest first. Their rows are fully visible to every snapshot.
    pub frozen: Vec<Arc<DeltaCell>>,
    /// The cell writers append to.
    pub active: Arc<DeltaCell>,
}

impl PartitionVersion {
    /// A shallow copy sharing every fragment (the publish-step clone).
    pub(crate) fn share(&self) -> Self {
        PartitionVersion {
            spec: self.spec.clone(),
            main: Arc::clone(&self.main),
            frozen: self.frozen.clone(),
            active: Arc::clone(&self.active),
        }
    }
}

/// An immutable generation of the whole table: per-partition fragment sets.
/// Readers hold one via [`Snapshot`]; the table swaps the current one
/// atomically under the version-chain lock.
pub(crate) struct TableVersion {
    pub vno: u64,
    pub partitions: Vec<PartitionVersion>,
    /// Decremented on drop: exported as `table_versions_live`.
    live: Gauge,
}

impl TableVersion {
    pub(crate) fn new(vno: u64, partitions: Vec<PartitionVersion>, live: Gauge) -> Arc<Self> {
        live.add(1);
        Arc::new(TableVersion { vno, partitions, live })
    }
}

impl Drop for TableVersion {
    fn drop(&mut self) {
        self.live.sub(1);
    }
}

/// The atomic version chain: the single mutable cell of the serving layer.
/// Publishes replace the whole `Arc` under a short write lock; readers clone
/// it under a read lock (no allocation, no waiting on merges).
pub(crate) struct VersionChain {
    current: RwLock<Arc<TableVersion>>,
}

impl VersionChain {
    pub(crate) fn new(initial: Arc<TableVersion>) -> Self {
        VersionChain { current: RwLock::new(initial) }
    }

    /// The current version (cheap Arc clone).
    pub(crate) fn current(&self) -> Arc<TableVersion> {
        match self.current.read() {
            Ok(g) => Arc::clone(&g),
            Err(p) => Arc::clone(&p.into_inner()),
        }
    }

    /// Atomically replaces the current version with one derived from it.
    /// The closure runs under the publish lock, so the derivation sees a
    /// stable predecessor and no two publishes interleave.
    pub(crate) fn publish<F>(&self, derive: F) -> Arc<TableVersion>
    where
        F: FnOnce(&TableVersion) -> Arc<TableVersion>,
    {
        let mut cur = match self.current.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let next = derive(&cur);
        *cur = Arc::clone(&next);
        next
    }
}

/// A read-only view of one partition's delta as of a snapshot: the frozen
/// cells in full plus the active cell clipped to the snapshot's append
/// watermark, flattened into one contiguous row-position space (so query
/// row ids stay stable across seals and merges).
pub struct DeltaView {
    slices: Vec<DeltaSlice>,
}

struct DeltaSlice {
    cell: Arc<DeltaCell>,
    /// Rows of the cell visible to this snapshot (frozen cells: all rows;
    /// the active cell: the watermark at snapshot time).
    clip: u64,
    /// This slice's first row position in the flattened space.
    base: u64,
}

impl DeltaView {
    pub(crate) fn new(pv: &PartitionVersion, active_mark: u64) -> Self {
        let mut slices = Vec::with_capacity(pv.frozen.len() + 1);
        let mut base = 0;
        for cell in &pv.frozen {
            let clip = cell.rows();
            slices.push(DeltaSlice { cell: Arc::clone(cell), clip, base });
            base += clip;
        }
        slices.push(DeltaSlice { cell: Arc::clone(&pv.active), clip: active_mark, base });
        DeltaView { slices }
    }

    fn locate(&self, rpos: u64) -> Option<(&DeltaSlice, u64)> {
        self.slices
            .iter()
            .find(|s| rpos >= s.base && rpos < s.base + s.clip)
            .map(|s| (s, rpos - s.base))
    }

    /// Total rows in view (including deleted).
    pub fn rows(&self) -> u64 {
        self.slices.iter().map(|s| s.clip).sum()
    }

    /// Visible (non-deleted) rows in view.
    pub fn visible_rows(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| {
                let st = s.cell.lock();
                (0..s.clip).filter(|&r| st.frag.is_visible(r)).count() as u64
            })
            .sum()
    }

    /// True when the view holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// True when `rpos` is visible.
    pub fn is_visible(&self, rpos: u64) -> bool {
        match self.locate(rpos) {
            Some((s, local)) => s.cell.lock().frag.is_visible(local),
            None => false,
        }
    }

    /// The value at (`rpos`, `col`).
    pub fn value(&self, rpos: u64, col: usize, schema: &Schema) -> TableResult<Value> {
        let (s, local) = self.locate(rpos).ok_or_else(|| {
            crate::TableError::Invalid(format!("delta row {rpos} out of snapshot range"))
        })?;
        s.cell.lock().frag.value(local, col, schema)
    }

    /// Materializes a whole row.
    pub fn row(&self, rpos: u64, schema: &Schema) -> TableResult<Row> {
        let (s, local) = self.locate(rpos).ok_or_else(|| {
            crate::TableError::Invalid(format!("delta row {rpos} out of snapshot range"))
        })?;
        s.cell.lock().frag.row(local, schema)
    }

    /// Visible row positions matching `pred` on `col`, ascending in the
    /// flattened space.
    pub fn find_rows(
        &self,
        col: usize,
        pred: &ValuePredicate,
        schema: &Schema,
    ) -> TableResult<Vec<u64>> {
        let mut out = Vec::new();
        for s in &self.slices {
            let st = s.cell.lock();
            for local in st.frag.find_rows(col, pred, schema)? {
                if local < s.clip {
                    out.push(s.base + local);
                }
            }
        }
        Ok(out)
    }

    /// Materializes every visible row in view.
    pub fn visible_row_values(&self, schema: &Schema) -> TableResult<Vec<Row>> {
        let mut out = Vec::new();
        for s in &self.slices {
            let st = s.cell.lock();
            for r in 0..s.clip {
                if st.frag.is_visible(r) {
                    out.push(st.frag.row(r, schema)?);
                }
            }
        }
        Ok(out)
    }

    /// Heap bytes of the viewed cells (shared, not exclusively owned).
    pub fn heap_bytes(&self) -> usize {
        self.slices.iter().map(|s| s.cell.lock().frag.heap_bytes()).sum()
    }
}

/// A snapshot handle to one partition: spec, pinned main fragment, and the
/// delta view as of the owning snapshot. This is the public face of a
/// partition — the direct `{main, delta}` pair of the single-caller era,
/// now pinned to a version.
pub struct Partition {
    spec: PartitionSpec,
    main: Arc<MainHandle>,
    delta: DeltaView,
}

impl Partition {
    pub(crate) fn pin(pv: &PartitionVersion, active_mark: u64) -> Self {
        Partition {
            spec: pv.spec.clone(),
            main: Arc::clone(&pv.main),
            delta: DeltaView::new(pv, active_mark),
        }
    }

    /// The partition's configuration.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The read-optimized fragment, pinned: a running merge replaces the
    /// table's current main but never this one, and its page chains are not
    /// retired while this handle is alive.
    pub fn main(&self) -> &MainFragment {
        self.main.frag()
    }

    /// The write-optimized side as of the snapshot: frozen cells plus the
    /// active delta clipped to the snapshot's watermark.
    pub fn delta(&self) -> &DeltaView {
        &self.delta
    }

    /// Visible rows across both fragments.
    pub fn visible_rows(&self) -> u64 {
        self.main_frag().visible_rows() + self.delta_view().visible_rows()
    }

    /// Crate-internal accessor (the `snapshot-escape` lint reserves the
    /// `.main()` spelling for code outside `crates/table/src`).
    pub(crate) fn main_frag(&self) -> &MainFragment {
        self.main.frag()
    }

    /// Crate-internal accessor, as [`Partition::main_frag`].
    pub(crate) fn delta_view(&self) -> &DeltaView {
        &self.delta
    }
}
