//! Observability: per-table / per-partition / per-column statistics.
//!
//! The paper's evaluation turns on exactly these numbers — rows per
//! fragment, storage mode per column, dictionary cardinalities — so the
//! engine exposes them as a first-class snapshot (HANA surfaces the same
//! through its monitoring views).

use crate::table::Table;
use payg_core::column::ColumnRead;
use payg_core::{DataType, LoadPolicy};

/// Statistics of one column within a partition's main fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Value type.
    pub data_type: DataType,
    /// Storage mode actually in effect.
    pub load_policy: LoadPolicy,
    /// Distinct values in the main fragment.
    pub cardinality: u64,
    /// Whether an inverted index currently exists (an adaptive index
    /// reports `false` until it is built).
    pub has_index: bool,
}

/// Statistics of one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// Partition name.
    pub name: String,
    /// The partition's default load policy.
    pub load_policy: LoadPolicy,
    /// Rows in the main fragment (including deleted).
    pub main_rows: u64,
    /// Rows hidden by pending deletions (gone at the next merge).
    pub main_deleted: u64,
    /// Visible rows in the delta fragment.
    pub delta_rows: u64,
    /// Heap bytes of the (always-resident) delta fragment.
    pub delta_bytes: usize,
    /// Per-column statistics.
    pub columns: Vec<ColumnStats>,
}

/// A point-in-time snapshot of a table's layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Visible rows across all partitions and fragments.
    pub visible_rows: u64,
    /// Per-partition statistics.
    pub partitions: Vec<PartitionStats>,
}

impl Table {
    /// Collects a statistics snapshot. Cheap: no pages load (all numbers
    /// come from metadata and the resident delta). One pinned version: the
    /// numbers are internally consistent even during a merge.
    pub fn table_stats(&self) -> TableStats {
        let parts = self.partitions();
        let visible_rows = parts.iter().map(|p| p.visible_rows()).sum();
        let partitions = parts
            .iter()
            .map(|p| PartitionStats {
                name: p.spec().name.clone(),
                load_policy: p.spec().load_policy,
                main_rows: p.main_frag().rows(),
                main_deleted: p.main_frag().rows() - p.main_frag().visible_rows(),
                delta_rows: p.delta_view().visible_rows(),
                delta_bytes: p.delta_view().heap_bytes(),
                columns: self
                    .schema()
                    .columns()
                    .iter()
                    .zip(p.main_frag().columns())
                    .map(|(spec, col)| ColumnStats {
                        name: spec.name.clone(),
                        data_type: spec.data_type,
                        load_policy: col.policy(),
                        cardinality: col.cardinality(),
                        has_index: col.has_index(),
                    })
                    .collect(),
            })
            .collect();
        TableStats { visible_rows, partitions }
    }
}

impl std::fmt::Display for TableStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "table: {} visible rows, {} partition(s)", self.visible_rows, self.partitions.len())?;
        for p in &self.partitions {
            writeln!(
                f,
                "  partition {:10} [{}] main {} rows ({} deleted), delta {} rows ({} B)",
                p.name,
                match p.load_policy {
                    LoadPolicy::FullyResident => "resident",
                    LoadPolicy::PageLoadable => "paged",
                },
                p.main_rows,
                p.main_deleted,
                p.delta_rows,
                p.delta_bytes,
            )?;
            for c in &p.columns {
                writeln!(
                    f,
                    "    {:24} {:8} {:8} card {:8}{}",
                    c.name,
                    format!("{:?}", c.data_type),
                    match c.load_policy {
                        LoadPolicy::FullyResident => "resident",
                        LoadPolicy::PageLoadable => "paged",
                    },
                    c.cardinality,
                    if c.has_index { "  [indexed]" } else { "" },
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionRange, PartitionSpec};
    use crate::schema::{ColumnSpec, Schema};
    use payg_core::{PageConfig, Value, ValuePredicate};
    use payg_resman::ResourceManager;
    use payg_storage::{BufferPool, MemStore};
    use std::sync::Arc;

    #[test]
    fn stats_reflect_fragments_policies_and_dml() {
        let schema = Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("temp", DataType::Integer),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
        .with_partition_column("temp")
        .unwrap();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema,
            vec![
                PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(10))),
                PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(10))),
            ],
        )
        .unwrap();
        for i in 0..100i64 {
            t.insert(vec![Value::Integer(i), Value::Integer(50)]).unwrap();
        }
        t.delta_merge_all().unwrap();
        let s = t.table_stats();
        assert_eq!(s.visible_rows, 100);
        assert_eq!(s.partitions[0].main_rows, 100);
        assert_eq!(s.partitions[0].main_deleted, 0);
        assert_eq!(s.partitions[0].columns[0].cardinality, 100);
        assert!(s.partitions[0].columns[0].has_index, "pk column indexed");
        assert!(!s.partitions[0].columns[1].has_index);
        assert_eq!(s.partitions[1].main_rows, 0);
        assert_eq!(s.partitions[1].load_policy, LoadPolicy::PageLoadable);

        // DML shows up as deletions + delta rows until the next merge.
        t.update_rows(
            "id",
            &ValuePredicate::Between(Value::Integer(0), Value::Integer(9)),
            "temp",
            &Value::Integer(1),
        )
        .unwrap();
        let s = t.table_stats();
        assert_eq!(s.partitions[0].main_deleted, 10);
        assert_eq!(s.partitions[1].delta_rows, 10);
        assert!(s.partitions[1].delta_bytes > 0);
        assert_eq!(s.visible_rows, 100);
        t.delta_merge_all().unwrap();
        let s = t.table_stats();
        assert_eq!(s.partitions[0].main_rows, 90);
        assert_eq!(s.partitions[1].main_rows, 10);
        assert_eq!(s.partitions[1].columns[1].load_policy, LoadPolicy::PageLoadable);
        let text = s.to_string();
        assert!(text.contains("partition hot"));
        assert!(text.contains("[indexed]"));
    }
}
