//! The write-optimized delta fragment (paper §2).
//!
//! Changes never modify rows in place: inserts append to the delta. Each
//! delta column keeps an **unsorted** dictionary — identifiers are assigned
//! in arrival order, because keeping delta dictionaries sorted on every
//! insert would be too costly — plus the per-row identifier vector. Scans on
//! the delta therefore first scan the (small) dictionary to find matching
//! identifiers, then scan the identifier vector. Delta fragments are always
//! memory resident (the regular delta merge keeps them small).

use crate::bitmap::RowBitmap;
use crate::schema::{Row, Schema};
use crate::{TableError, TableResult};
use payg_core::{Value, ValuePredicate};
use payg_encoding::VidSet;
use std::collections::HashMap;

/// One delta column: unsorted dictionary + append-order identifier vector.
#[derive(Debug, Default)]
pub struct DeltaColumn {
    /// Keys in identifier order (arrival order, NOT sorted).
    keys: Vec<Vec<u8>>,
    /// key → identifier.
    lookup: HashMap<Vec<u8>, u64>,
    /// Per-row identifiers.
    vids: Vec<u64>,
}

impl DeltaColumn {
    fn append(&mut self, v: &Value) {
        let key = v.to_key();
        let vid = match self.lookup.get(&key) {
            Some(&vid) => vid,
            None => {
                let vid = self.keys.len() as u64;
                self.keys.push(key.clone());
                self.lookup.insert(key, vid);
                vid
            }
        };
        self.vids.push(vid);
    }

    /// The value of row `rpos`.
    pub fn value(&self, rpos: u64, ty: payg_core::DataType) -> TableResult<Value> {
        let vid = self.vids[rpos as usize];
        Value::from_key(ty, &self.keys[vid as usize]).map_err(TableError::Core)
    }

    /// Identifiers matching a predicate, found by scanning the dictionary.
    fn matching_vids(&self, pred: &ValuePredicate, ty: payg_core::DataType) -> TableResult<VidSet> {
        let mut vids = Vec::new();
        for (vid, key) in self.keys.iter().enumerate() {
            let v = Value::from_key(ty, key).map_err(TableError::Core)?;
            if pred.matches(&v) {
                vids.push(vid as u64);
            }
        }
        Ok(VidSet::from_vids(vids))
    }

    /// Heap bytes (delta fragments are always fully resident).
    pub fn heap_bytes(&self) -> usize {
        self.vids.len() * 8
            + self.keys.iter().map(|k| k.capacity() + 48).sum::<usize>()
            + self.lookup.len() * 48
    }
}

/// The delta fragment of one partition: one [`DeltaColumn`] per schema
/// column, plus a deleted-row bitmap for visibility.
pub struct DeltaFragment {
    columns: Vec<DeltaColumn>,
    deleted: RowBitmap,
    rows: u64,
}

impl DeltaFragment {
    /// An empty delta for `schema`.
    pub fn new(schema: &Schema) -> Self {
        DeltaFragment {
            columns: (0..schema.arity()).map(|_| DeltaColumn::default()).collect(),
            deleted: RowBitmap::new(),
            rows: 0,
        }
    }

    /// Appends a validated row; returns its delta row position.
    pub fn append(&mut self, row: &Row) -> u64 {
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.append(v);
        }
        let rpos = self.rows;
        self.rows += 1;
        rpos
    }

    /// Total rows ever appended (including deleted).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Visible (non-deleted) rows.
    pub fn visible_rows(&self) -> u64 {
        self.rows - self.deleted.count()
    }

    /// True when the fragment holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Marks a row deleted (it stays physically present until delta merge).
    pub fn delete(&mut self, rpos: u64) {
        debug_assert!(rpos < self.rows);
        self.deleted.set(rpos);
    }

    /// True when `rpos` is visible.
    pub fn is_visible(&self, rpos: u64) -> bool {
        !self.deleted.get(rpos)
    }

    /// The value at (`rpos`, `col`).
    pub fn value(&self, rpos: u64, col: usize, schema: &Schema) -> TableResult<Value> {
        self.columns[col].value(rpos, schema.columns()[col].data_type)
    }

    /// Materializes a whole visible row.
    pub fn row(&self, rpos: u64, schema: &Schema) -> TableResult<Row> {
        (0..schema.arity()).map(|c| self.value(rpos, c, schema)).collect()
    }

    /// Visible row positions matching `pred` on column `col` (ascending).
    pub fn find_rows(
        &self,
        col: usize,
        pred: &ValuePredicate,
        schema: &Schema,
    ) -> TableResult<Vec<u64>> {
        let ty = schema.columns()[col].data_type;
        let set = self.columns[col].matching_vids(pred, ty)?;
        if set.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self.columns[col]
            .vids
            .iter()
            .enumerate()
            .filter(|&(rpos, vid)| set.contains(*vid) && !self.deleted.get(rpos as u64))
            .map(|(rpos, _)| rpos as u64)
            .collect())
    }

    /// Materializes every visible row (for delta merge).
    pub fn visible_row_values(&self, schema: &Schema) -> TableResult<Vec<Row>> {
        (0..self.rows)
            .filter(|&r| !self.deleted.get(r))
            .map(|r| self.row(r, schema))
            .collect()
    }

    /// Heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum::<usize>() + self.deleted.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSpec;
    use payg_core::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("name", DataType::Varchar),
        ])
        .unwrap()
    }

    fn populated() -> (Schema, DeltaFragment) {
        let s = schema();
        let mut d = DeltaFragment::new(&s);
        for (id, name) in [(5, "echo"), (1, "alpha"), (3, "alpha"), (2, "bravo")] {
            d.append(&vec![Value::Integer(id), Value::Varchar(name.into())]);
        }
        (s, d)
    }

    #[test]
    fn append_and_read_back() {
        let (s, d) = populated();
        assert_eq!(d.rows(), 4);
        assert_eq!(d.value(0, 1, &s).unwrap(), Value::Varchar("echo".into()));
        assert_eq!(d.value(3, 0, &s).unwrap(), Value::Integer(2));
        assert_eq!(
            d.row(1, &s).unwrap(),
            vec![Value::Integer(1), Value::Varchar("alpha".into())]
        );
    }

    #[test]
    fn unsorted_dictionary_shares_duplicates() {
        let (_, d) = populated();
        // "alpha" appears twice but is stored once.
        assert_eq!(d.columns[1].keys.len(), 3);
        // Arrival order: echo, alpha, bravo.
        assert_eq!(d.columns[1].keys[0], b"echo");
    }

    #[test]
    fn scans_respect_predicates_and_visibility() {
        let (s, mut d) = populated();
        let eq = ValuePredicate::Eq(Value::Varchar("alpha".into()));
        assert_eq!(d.find_rows(1, &eq, &s).unwrap(), vec![1, 2]);
        let range = ValuePredicate::Between(Value::Integer(2), Value::Integer(5));
        assert_eq!(d.find_rows(0, &range, &s).unwrap(), vec![0, 2, 3]);
        d.delete(2);
        assert_eq!(d.find_rows(1, &eq, &s).unwrap(), vec![1]);
        assert_eq!(d.visible_rows(), 3);
        assert!(!d.is_visible(2));
    }

    #[test]
    fn visible_row_values_skips_deleted() {
        let (s, mut d) = populated();
        d.delete(0);
        d.delete(3);
        let rows = d.visible_row_values(&s).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Integer(1));
        assert_eq!(rows[1][0], Value::Integer(3));
    }
}
