//! EXPLAIN ANALYZE: the static scan plan annotated with what actually
//! happened, reconstructed from the query flight recorder.
//!
//! [`Table::explain_analyze`] runs a query with the pool's [`payg_obs::Tracer`]
//! enabled, under a fresh `query` span. Afterwards it drains the recorder and
//! folds three sources into one report:
//!
//! * the **static plan** — [`Table::scan_plan`] as it stood before execution
//!   (per-partition [`ScanPath`]), annotated per store chain with the pins,
//!   cold loads, waits, I/O traffic and retries the chain actually saw;
//! * the **span tree** — query → scan-partition → page-wait / io-batch /
//!   chunk-dispatch, each with wall-clock nanoseconds and a thread lane;
//! * **page provenance** — which I/O batches this query *initiated* (the
//!   `IoBatchIssued` event's span belongs to the query tree) versus merely
//!   *joined* (its pages rode a coalesced read another query started).
//!
//! The report renders as a text tree ([`ExplainAnalyze::to_text`]), as JSON
//! ([`ExplainAnalyze::to_json`]), and as a Chrome `trace_event` array
//! ([`ExplainAnalyze::to_chrome_trace`]) loadable in `about://tracing`.
//!
//! The recorder is drained on entry and read back on exit, so the report is
//! exact when nothing else drives the same pool concurrently — the same
//! exclusivity [`Table::execute_profiled`] already assumes. The tracer's
//! previous enabled state is restored on return, success or error.

use crate::query::{Query, QueryResult};
use crate::table::Table;
use crate::TableResult;
use payg_core::ScanPath;
use payg_obs::{names, EventKind, ObsSnapshot, PageEvent, ScanProfile, SpanKind, SpanRecord};
use std::collections::{BTreeMap, HashSet};

/// What one store chain actually did during the measured execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainActuals {
    /// The store chain id.
    pub chain: u64,
    /// Pool pins handed out for this chain's pages (`PagePinned`).
    pub pins: u64,
    /// Pages read from the store (`PageLoaded`) — the cold half.
    pub cold_loads: u64,
    /// Pins that blocked behind another thread's in-flight load.
    pub waits: u64,
    /// Fetch requests submitted to the cold-path I/O stage.
    pub io_submitted: u64,
    /// Fetch requests the I/O stage completed.
    pub io_completed: u64,
    /// Load attempts re-issued after a transient fault.
    pub retries: u64,
}

impl ChainActuals {
    /// Pins served by an already-resident frame: pins that neither loaded
    /// nor waited (saturating — a pin both waits and is counted once).
    pub fn warm_pins(&self) -> u64 {
        self.pins.saturating_sub(self.cold_loads + self.waits)
    }

    fn is_zero(&self) -> bool {
        self.pins == 0
            && self.cold_loads == 0
            && self.waits == 0
            && self.io_submitted == 0
            && self.io_completed == 0
            && self.retries == 0
    }
}

/// One chain of one column in the annotated plan.
#[derive(Debug, Clone)]
pub struct ChainExplain {
    /// The column the chain belongs to.
    pub column: String,
    /// The chain's role within the column (`data`, `dict*`, `index`).
    pub role: &'static str,
    /// What the chain actually did.
    pub actuals: ChainActuals,
}

/// One partition of the annotated plan.
#[derive(Debug, Clone)]
pub struct PartitionExplain {
    /// Partition ordinal.
    pub partition: usize,
    /// The static scan path [`Table::scan_plan`] chose before execution.
    pub path: ScanPath,
    /// Chains with observed activity (the filter column's chains are always
    /// listed, active or not, so a fully-pruned partition is visible).
    pub chains: Vec<ChainExplain>,
}

/// The full EXPLAIN ANALYZE report. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// Static plan, one entry per partition, annotated with actuals.
    pub partitions: Vec<PartitionExplain>,
    /// The registry-delta profile of the execution (pages pinned, pruned,
    /// chunks, kernel dispatch width, cold/warm split, io-stage batching).
    pub profile: ScanProfile,
    /// Every span the recorder closed during execution, sorted by id.
    pub spans: Vec<SpanRecord>,
    /// The root `query` span's id.
    pub root: u64,
    /// Every page event the recorder captured during execution, in global
    /// order.
    pub events: Vec<PageEvent>,
    /// I/O batches whose physical read this query's tree initiated.
    pub batches_initiated: u64,
    /// Distinct I/O batches this query's pages rode without initiating
    /// (coalesced reads started on behalf of other work).
    pub batches_joined: u64,
    /// The registry delta spanning the execution (for reconciliation).
    pub delta: ObsSnapshot,
}

impl ExplainAnalyze {
    /// Span ids reachable from the root `query` span (the query's tree).
    /// Spans are id-sorted and parents allocate before children, so one
    /// forward pass resolves the whole tree.
    pub fn tree(&self) -> HashSet<u64> {
        let mut tree = HashSet::new();
        tree.insert(self.root);
        for s in &self.spans {
            if s.parent != 0 && tree.contains(&s.parent) {
                tree.insert(s.id);
            }
        }
        tree
    }

    /// Checks the drained events against the registry delta: every traced
    /// occurrence must reconcile 1:1 with the counter that measures it.
    /// Returns the first mismatch as `Err` — exact only when nothing else
    /// drove the pool during the measured window.
    pub fn check_consistency(&self) -> Result<(), String> {
        let count = |k: EventKind| self.events.iter().filter(|e| e.kind == k).count() as u64;
        let staged_retries =
            self.events.iter().filter(|e| e.kind == EventKind::LoadRetried && e.bytes == 1).count()
                as u64;
        let checks = [
            (names::POOL_LOADS, count(EventKind::PageLoaded)),
            (names::POOL_LOAD_WAITS, count(EventKind::SingleFlightWait)),
            (names::POOL_LOAD_RETRIES, count(EventKind::LoadRetried)),
            (names::POOL_IO_SUBMITTED, count(EventKind::IoSubmitted)),
            (names::POOL_IO_COMPLETIONS, count(EventKind::IoCompleted)),
            // Every physical read is either a coalesced batch or a staged
            // retry's solo re-read.
            (names::POOL_IO_PHYSICAL_READS, count(EventKind::IoBatchIssued) + staged_retries),
            (names::POOL_QUARANTINE_INSERTS, count(EventKind::PageQuarantined)),
        ];
        for (name, traced) in checks {
            let counted = self.delta.counter(name);
            if counted != traced {
                return Err(format!("{name}: registry delta {counted} != {traced} traced events"));
            }
        }
        Ok(())
    }

    /// Renders the report as a text tree (plan first, then the span tree).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let p = &self.profile;
        out.push_str(&format!(
            "EXPLAIN ANALYZE  wall={}  cold={} warm={} pruned={} chunks={} matches={}\n",
            fmt_ns(p.elapsed_ns),
            p.cold_loads,
            p.warm_hits,
            p.pages_pruned,
            p.chunks_scanned,
            p.bitmap_matches
        ));
        for part in &self.partitions {
            out.push_str(&format!(
                "├─ partition {}: path={:?} kernel_width={}\n",
                part.partition, part.path, self.profile.dispatch_width
            ));
            for (i, c) in part.chains.iter().enumerate() {
                let branch = if i + 1 == part.chains.len() { "└─" } else { "├─" };
                let a = &c.actuals;
                out.push_str(&format!(
                    "│   {branch} {}/{} chain#{}: pins={} cold={} warm={} waits={} \
                     io_sub={} io_done={} retries={}\n",
                    c.column,
                    c.role,
                    a.chain,
                    a.pins,
                    a.cold_loads,
                    a.warm_pins(),
                    a.waits,
                    a.io_submitted,
                    a.io_completed,
                    a.retries
                ));
            }
        }
        out.push_str(&format!(
            "├─ io: batches initiated={} joined={} coalesced_pages={} queue_sheds={}\n",
            self.batches_initiated, self.batches_joined, p.io_coalesced_pages, p.io_queue_sheds
        ));
        out.push_str("└─ spans:\n");
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &self.spans {
            children.entry(s.parent).or_default().push(s);
        }
        if let Some(roots) = children.get(&self.root).cloned() {
            if let Some(root) = self.spans.iter().find(|s| s.id == self.root) {
                out.push_str(&format!("   └─ {}\n", fmt_span(root)));
                render_spans(&mut out, &children, &roots, "      ");
            }
        } else if let Some(root) = self.spans.iter().find(|s| s.id == self.root) {
            out.push_str(&format!("   └─ {}\n", fmt_span(root)));
        }
        out
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        for part in &self.partitions {
            let chains: Vec<String> = part
                .chains
                .iter()
                .map(|c| {
                    let a = &c.actuals;
                    format!(
                        "{{\"column\": \"{}\", \"role\": \"{}\", \"chain\": {}, \
                         \"pins\": {}, \"cold_loads\": {}, \"warm_pins\": {}, \"waits\": {}, \
                         \"io_submitted\": {}, \"io_completed\": {}, \"retries\": {}}}",
                        c.column,
                        c.role,
                        a.chain,
                        a.pins,
                        a.cold_loads,
                        a.warm_pins(),
                        a.waits,
                        a.io_submitted,
                        a.io_completed,
                        a.retries
                    )
                })
                .collect();
            parts.push(format!(
                "{{\"partition\": {}, \"path\": \"{:?}\", \"chains\": [{}]}}",
                part.partition,
                part.path,
                chains.join(", ")
            ));
        }
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"id\": {}, \"parent\": {}, \"kind\": \"{}\", \"detail\": {}, \
                     \"tid\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
                    s.id,
                    s.parent,
                    s.kind.name(),
                    s.detail,
                    s.tid,
                    s.start_ns,
                    s.end_ns
                )
            })
            .collect();
        format!(
            "{{\"plan\": [{}], \"profile\": {}, \
             \"io\": {{\"batches_initiated\": {}, \"batches_joined\": {}}}, \
             \"root\": {}, \"spans\": [{}]}}",
            parts.join(", "),
            self.profile.to_json(),
            self.batches_initiated,
            self.batches_joined,
            self.root,
            spans.join(", ")
        )
    }

    /// Renders the span tree as a Chrome `trace_event` JSON array —
    /// complete (`"ph": "X"`) events laned by thread ordinal, timestamps
    /// in microseconds. Save to a file and open in `about://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": \"{}\", \"cat\": \"payg\", \"ph\": \"X\", \
                     \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 1, \"tid\": {}, \
                     \"args\": {{\"id\": {}, \"parent\": {}, \"detail\": {}}}}}",
                    s.kind.name(),
                    s.start_ns / 1_000,
                    s.start_ns % 1_000,
                    s.duration_ns() / 1_000,
                    s.duration_ns() % 1_000,
                    s.tid,
                    s.id,
                    s.parent,
                    s.detail
                )
            })
            .collect();
        format!("[{}]", events.join(", "))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{}.{:02}ms", ns / 1_000_000, (ns % 1_000_000) / 10_000)
    } else {
        format!("{}.{:01}us", ns / 1_000, (ns % 1_000) / 100)
    }
}

fn fmt_span(s: &SpanRecord) -> String {
    format!("{}({}) {} [t{}]", s.kind.name(), s.detail, fmt_ns(s.duration_ns()), s.tid)
}

fn render_spans(
    out: &mut String,
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    nodes: &[&SpanRecord],
    indent: &str,
) {
    for (i, s) in nodes.iter().enumerate() {
        let last = i + 1 == nodes.len();
        out.push_str(&format!("{indent}{} {}\n", if last { "└─" } else { "├─" }, fmt_span(s)));
        if let Some(kids) = children.get(&s.id) {
            let deeper = format!("{indent}{}", if last { "   " } else { "│  " });
            render_spans(out, children, kids, &deeper);
        }
    }
}

impl Table {
    /// Executes `q` with the flight recorder on and returns the result
    /// alongside the full [`ExplainAnalyze`] report. The pool's tracer is
    /// drained on entry (stale events from earlier work are discarded) and
    /// its enabled state is restored on return. Exact when nothing else
    /// drives the same pool concurrently.
    pub fn explain_analyze(&self, q: &Query) -> TableResult<(QueryResult, ExplainAnalyze)> {
        // One snapshot for the whole report: the plan, the execution and
        // the annotation all see the same pinned version even when a merge
        // publishes mid-run.
        let session = self.session()?;
        // The plan as it stands *before* execution — an adaptive index
        // built during the run is an actual, not part of the plan.
        let plan = session.scan_plan(q)?;
        let tracer = self.registry().tracer().clone();
        let was_enabled = tracer.enabled();
        tracer.drain();
        tracer.drain_spans();
        tracer.enable();

        let before = ObsSnapshot::collect(self.registry());
        let started = std::time::Instant::now();
        let root_span = tracer.span(SpanKind::Query, 0);
        let root = root_span.id();
        let result = session.execute(q);
        drop(root_span);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let after = ObsSnapshot::collect(self.registry());

        if !was_enabled {
            tracer.disable();
        }
        let events = tracer.drain();
        let spans = tracer.drain_spans();
        let result = result?;

        let delta = ObsSnapshot::delta(&after, &before);
        let mut profile = ScanProfile::from_delta(&delta);
        profile.elapsed_ns = elapsed_ns;

        let mut report = ExplainAnalyze {
            partitions: Vec::new(),
            profile,
            spans,
            root,
            events,
            batches_initiated: 0,
            batches_joined: 0,
            delta,
        };

        // Provenance: a batch is *initiated* by this query when the
        // IoBatchIssued event is tagged with a span in the query's tree,
        // *joined* when our completions name a batch issued outside it.
        let tree = report.tree();
        let issued_here: HashSet<u64> = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::IoBatchIssued && tree.contains(&e.span))
            .map(|e| e.aux)
            .collect();
        report.batches_initiated = issued_here.len() as u64;
        report.batches_joined = report
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::IoCompleted
                    && tree.contains(&e.span)
                    && e.aux != 0
                    && !issued_here.contains(&e.aux)
            })
            .map(|e| e.aux)
            .collect::<HashSet<u64>>()
            .len() as u64;

        // Per-chain actuals, grouped straight off the event log.
        let mut by_chain: BTreeMap<u64, ChainActuals> = BTreeMap::new();
        for e in &report.events {
            let a = by_chain.entry(e.chain).or_insert(ChainActuals {
                chain: e.chain,
                ..ChainActuals::default()
            });
            match e.kind {
                EventKind::PagePinned => a.pins += 1,
                EventKind::PageLoaded => a.cold_loads += 1,
                EventKind::SingleFlightWait => a.waits += 1,
                EventKind::IoSubmitted => a.io_submitted += 1,
                EventKind::IoCompleted => a.io_completed += 1,
                EventKind::LoadRetried => a.retries += 1,
                _ => {}
            }
        }

        // Annotate the static plan: every active chain of every column,
        // plus the filter column's chains even when idle (a fully-pruned
        // or quarantine-skipped partition should still show its plan row).
        let filter_col = match &q.filter {
            Some((name, _)) => Some(self.schema().column_index(name)?),
            None => None,
        };
        for (pi, p) in session.partitions().iter().enumerate() {
            let mut chains = Vec::new();
            for (ci, spec) in self.schema().columns().iter().enumerate() {
                for (role, chain) in p.main_frag().column(ci).chains() {
                    let actuals = by_chain
                        .get(&chain)
                        .copied()
                        .unwrap_or(ChainActuals { chain, ..ChainActuals::default() });
                    if Some(ci) == filter_col || !actuals.is_zero() {
                        chains.push(ChainExplain { column: spec.name.clone(), role, actuals });
                    }
                }
            }
            report.partitions.push(PartitionExplain { partition: pi, path: plan[pi], chains });
        }

        Ok((result, report))
    }
}
