//! Catalog checkpoints: persist a table's metadata so it can be reopened
//! over the same (durable) page store after a process restart.
//!
//! The page chains of every main-fragment structure already live in the
//! store; what a restart loses is the in-memory metadata — schema,
//! partition specs, and each column's chain references and resident
//! residue. [`Table::checkpoint`] serializes exactly that into a dedicated
//! catalog chain; [`Table::open`] reads it back.
//!
//! Checkpoints require *quiesced* tables: empty deltas and no pending
//! deletions (run [`Table::delta_merge_all`] first). This mirrors HANA's
//! recovery model, where main fragments restore from their persisted pages
//! and deltas replay from the redo log — a log is out of scope here, so the
//! checkpoint is taken at a merge boundary.

use crate::delta::DeltaFragment;
use crate::fragment::MainFragment;
use crate::partition::{PartitionRange, PartitionSpec};
use crate::schema::{ColumnSpec, Schema};
use crate::table::Table;
use crate::{TableError, TableResult};
use payg_core::column::{disposition_from, disposition_tag, Column};
use payg_core::meta::{MetaReader, MetaWriter};
use payg_core::{CoreError, DataType, LoadPolicy, PageConfig, Value};
use payg_storage::{BufferPool, ChainId, PageKey, StorageError};

const CATALOG_MAGIC: &[u8; 8] = b"PAYGCAT1";

fn corrupt(what: &str) -> TableError {
    TableError::Core(CoreError::Storage(StorageError::corrupt(format!("catalog: {what}"))))
}

fn write_value(w: &mut MetaWriter, v: &Value) {
    w.u8(match v.data_type() {
        DataType::Integer => 0,
        DataType::Decimal => 1,
        DataType::Double => 2,
        DataType::Varchar => 3,
    });
    w.bytes(&v.to_key());
}

fn read_value(r: &mut MetaReader) -> TableResult<Value> {
    let ty = match r.u8().map_err(TableError::Core)? {
        0 => DataType::Integer,
        1 => DataType::Decimal,
        2 => DataType::Double,
        3 => DataType::Varchar,
        t => return Err(corrupt(&format!("unknown value type tag {t}"))),
    };
    let key = r.bytes().map_err(TableError::Core)?;
    Value::from_key(ty, &key).map_err(TableError::Core)
}

fn policy_tag(p: LoadPolicy) -> u8 {
    match p {
        LoadPolicy::FullyResident => 0,
        LoadPolicy::PageLoadable => 1,
    }
}

fn policy_from(t: u8) -> TableResult<LoadPolicy> {
    Ok(match t {
        0 => LoadPolicy::FullyResident,
        1 => LoadPolicy::PageLoadable,
        _ => return Err(corrupt(&format!("unknown load policy tag {t}"))),
    })
}

impl Table {
    /// Writes a catalog checkpoint to a fresh chain in the table's store
    /// and returns its id. Fails unless every delta is empty and every main
    /// fragment is deletion-free (run [`Table::delta_merge_all`] first).
    pub fn checkpoint(&self) -> TableResult<ChainId> {
        // One pinned version for the whole checkpoint: validation and
        // serialization see the same fragments.
        let parts = self.partitions();
        for (i, p) in parts.iter().enumerate() {
            if !p.delta_view().is_empty()
                || p.main_frag().visible_rows() != p.main_frag().rows()
            {
                return Err(TableError::Invalid(format!(
                    "checkpoint requires a merged table; partition {i} has pending changes \
                     (run delta_merge_all first)"
                )));
            }
        }
        let mut w = MetaWriter::new();
        // Schema.
        let schema = self.schema();
        w.u64(schema.arity() as u64);
        for c in schema.columns() {
            w.str(&c.name);
            w.u8(match c.data_type {
                DataType::Integer => 0,
                DataType::Decimal => 1,
                DataType::Double => 2,
                DataType::Varchar => 3,
            });
            w.u8(u8::from(c.with_index));
            w.u8(match c.load_policy {
                None => 0,
                Some(p) => 1 + policy_tag(p),
            });
        }
        for opt in [schema.primary_key(), schema.partition_column()] {
            match opt {
                Some(i) => {
                    w.u8(1);
                    w.u64(i as u64);
                }
                None => w.u8(0),
            }
        }
        // Page configuration.
        let cfg = self.page_config();
        for v in [
            cfg.datavec_page,
            cfg.dict_page,
            cfg.overflow_page,
            cfg.helper_page,
            cfg.index_page,
            cfg.inline_limit,
        ] {
            w.u64(v as u64);
        }
        w.u64((cfg.dict_fsst as u64) | ((cfg.pef_postings as u64) << 1));
        // Partitions.
        w.u64(parts.len() as u64);
        for p in &parts {
            let spec = p.spec();
            w.str(&spec.name);
            match &spec.range {
                PartitionRange::All => w.u8(0),
                PartitionRange::Below(v) => {
                    w.u8(1);
                    write_value(&mut w, v);
                }
                PartitionRange::AtLeast(v) => {
                    w.u8(2);
                    write_value(&mut w, v);
                }
                PartitionRange::Between(lo, hi) => {
                    w.u8(3);
                    write_value(&mut w, lo);
                    write_value(&mut w, hi);
                }
            }
            w.u8(policy_tag(spec.load_policy));
            w.u8(disposition_tag(spec.disposition));
            w.u64(p.main_frag().rows());
            for col in p.main_frag().columns() {
                w.bytes(&col.meta_bytes());
            }
        }
        let body = w.finish();

        // Persist: magic + total length + body, split across catalog pages.
        let store = self.pool().store();
        let page_size = cfg.dict_page.max(4096);
        let chain = store.create_chain(page_size).map_err(CoreError::Storage)?;
        let mut framed = Vec::with_capacity(body.len() + 16);
        framed.extend_from_slice(CATALOG_MAGIC);
        framed.extend_from_slice(&(body.len() as u64).to_le_bytes());
        framed.extend_from_slice(&body);
        for piece in framed.chunks(page_size) {
            store.append_page(chain, piece).map_err(CoreError::Storage)?;
        }
        Ok(chain)
    }

    /// Reopens a checkpointed table over `pool`'s store.
    pub fn open(pool: BufferPool, catalog: ChainId) -> TableResult<Table> {
        // Read the whole catalog chain directly from the store.
        let store = pool.store();
        let pages = store.chain_len(catalog).map_err(CoreError::Storage)?;
        let page_size = store.page_size(catalog).map_err(CoreError::Storage)?;
        let mut raw = Vec::with_capacity((pages as usize) * page_size);
        for p in 0..pages {
            raw.extend_from_slice(&store.read_page(PageKey::new(catalog, p)).map_err(CoreError::Storage)?);
        }
        if raw.len() < 16 || &raw[..8] != CATALOG_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let body_len = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
        if raw.len() < 16 + body_len {
            return Err(corrupt("truncated catalog chain"));
        }
        let body = &raw[16..16 + body_len];
        let mut r = MetaReader::new(body);

        // Schema.
        let ncols = r.read_len().map_err(TableError::Core)?;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = r.str().map_err(TableError::Core)?;
            let data_type = match r.u8().map_err(TableError::Core)? {
                0 => DataType::Integer,
                1 => DataType::Decimal,
                2 => DataType::Double,
                3 => DataType::Varchar,
                t => return Err(corrupt(&format!("unknown data type tag {t}"))),
            };
            let with_index = r.u8().map_err(TableError::Core)? != 0;
            let load_policy = match r.u8().map_err(TableError::Core)? {
                0 => None,
                t => Some(policy_from(t - 1)?),
            };
            cols.push(ColumnSpec { name, data_type, with_index, load_policy });
        }
        let mut schema = Schema::new(cols.clone())?;
        for (which, setter) in [(0usize, true), (1, false)] {
            let present = r.u8().map_err(TableError::Core)? != 0;
            if present {
                let idx = r.u64().map_err(TableError::Core)? as usize;
                if idx >= cols.len() {
                    return Err(corrupt("schema index out of range"));
                }
                let name = cols[idx].name.clone();
                schema = if setter {
                    schema.with_primary_key(&name)?
                } else {
                    schema.with_partition_column(&name)?
                };
                let _ = which;
            }
        }
        // Page configuration.
        let mut cfg_vals = [0u64; 6];
        for v in &mut cfg_vals {
            *v = r.u64().map_err(TableError::Core)?;
        }
        let cfg_flags = r.u64().map_err(TableError::Core)?;
        let config = PageConfig {
            datavec_page: cfg_vals[0] as usize,
            dict_page: cfg_vals[1] as usize,
            overflow_page: cfg_vals[2] as usize,
            helper_page: cfg_vals[3] as usize,
            index_page: cfg_vals[4] as usize,
            inline_limit: cfg_vals[5] as usize,
            dict_fsst: cfg_flags & 1 != 0,
            pef_postings: cfg_flags & 2 != 0,
        };
        // Partitions.
        let nparts = r.read_len().map_err(TableError::Core)?;
        let mut partitions = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let name = r.str().map_err(TableError::Core)?;
            let range = match r.u8().map_err(TableError::Core)? {
                0 => PartitionRange::All,
                1 => PartitionRange::Below(read_value(&mut r)?),
                2 => PartitionRange::AtLeast(read_value(&mut r)?),
                3 => PartitionRange::Between(read_value(&mut r)?, read_value(&mut r)?),
                t => return Err(corrupt(&format!("unknown range tag {t}"))),
            };
            let load_policy = policy_from(r.u8().map_err(TableError::Core)?)?;
            let disposition =
                disposition_from(r.u8().map_err(TableError::Core)?).map_err(TableError::Core)?;
            let rows = r.u64().map_err(TableError::Core)?;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let frame = r.bytes().map_err(TableError::Core)?;
                columns.push(Column::open(&pool, &frame).map_err(TableError::Core)?);
            }
            let spec = PartitionSpec { name, range, load_policy, disposition };
            partitions.push((
                spec,
                MainFragment::from_columns(columns, rows),
                DeltaFragment::new(&schema),
            ));
        }
        r.expect_end().map_err(TableError::Core)?;
        Ok(Table::from_parts(schema, pool, config, partitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Projection, Query};
    use payg_core::ValuePredicate;
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;
    use std::sync::Arc;

    fn aged_table(pool: &BufferPool) -> Table {
        let schema = Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("name", DataType::Varchar),
            ColumnSpec::new("temp", DataType::Integer),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
        .with_partition_column("temp")
        .unwrap();
        let t = Table::create(
            pool.clone(),
            PageConfig::tiny(),
            schema,
            vec![
                PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(100))),
                PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(100))),
            ],
        )
        .unwrap();
        for i in 0..400i64 {
            t.insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("name-{:03}", i % 61)),
                Value::Integer(if i % 3 == 0 { 50 } else { 150 }),
            ])
            .unwrap();
        }
        t.delta_merge_all().unwrap();
        t
    }

    #[test]
    fn checkpoint_and_reopen_roundtrip() {
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = aged_table(&pool);
        let q = Query::filtered(
            "name",
            ValuePredicate::Eq(Value::Varchar("name-007".into())),
            Projection::All,
        );
        let before = format!("{:?}", t.execute(&q).unwrap());
        let catalog = t.checkpoint().unwrap();
        drop(t); // the "process restart": all in-memory metadata is gone

        let reopened = Table::open(pool, catalog).unwrap();
        assert_eq!(reopened.visible_rows(), 400);
        assert_eq!(reopened.partitions().len(), 2);
        assert_eq!(reopened.partitions()[0].spec().name, "hot");
        assert_eq!(
            reopened.partitions()[1].main().column(0).policy(),
            LoadPolicy::PageLoadable
        );
        assert_eq!(format!("{:?}", reopened.execute(&q).unwrap()), before);
        // The reopened table is fully writable again.
        reopened
            .insert(vec![
                Value::Integer(1_000),
                Value::Varchar("fresh".into()),
                Value::Integer(150),
            ])
            .unwrap();
        reopened.delta_merge_all().unwrap();
        assert_eq!(reopened.visible_rows(), 401);
    }

    #[test]
    fn checkpoint_rejects_unmerged_tables() {
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = aged_table(&pool);
        t.insert(vec![
            Value::Integer(999),
            Value::Varchar("pending".into()),
            Value::Integer(150),
        ])
        .unwrap();
        assert!(matches!(t.checkpoint(), Err(TableError::Invalid(_))));
        t.delta_merge_all().unwrap();
        assert!(t.checkpoint().is_ok());
    }

    #[test]
    fn corrupt_catalogs_error_cleanly() {
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = aged_table(&pool);
        let catalog = t.checkpoint().unwrap();
        // A bogus chain id.
        assert!(Table::open(pool.clone(), ChainId(9_999)).is_err());
        // A chain that is not a catalog.
        let store = pool.store();
        let junk = store.create_chain(4096).unwrap();
        store.append_page(junk, b"definitely not a catalog").unwrap();
        assert!(Table::open(pool.clone(), junk).is_err());
        // The good catalog still opens.
        assert!(Table::open(pool, catalog).is_ok());
    }
}
