//! A plain growable bitmap, used for row-visibility (deleted rows).

/// A dense bitmap over row positions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowBitmap {
    words: Vec<u64>,
    set_count: u64,
}

impl RowBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets bit `pos` (idempotent).
    pub fn set(&mut self, pos: u64) {
        let w = (pos / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (pos % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.set_count += 1;
        }
    }

    /// Tests bit `pos`.
    #[inline]
    pub fn get(&self, pos: u64) -> bool {
        let w = (pos / 64) as usize;
        w < self.words.len() && (self.words[w] >> (pos % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.set_count
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    /// Iterates set positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = wi as u64 * 64;
            std::iter::successors((word != 0).then_some(word), |&w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| base + w.trailing_zeros() as u64)
        })
    }

    /// Heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = RowBitmap::new();
        assert!(b.is_empty());
        assert!(!b.get(100));
        b.set(3);
        b.set(64);
        b.set(64); // idempotent
        b.set(1000);
        assert!(b.get(3) && b.get(64) && b.get(1000));
        assert!(!b.get(4) && !b.get(65) && !b.get(999));
        assert_eq!(b.count(), 3);
        let positions: Vec<u64> = b.iter().collect();
        assert_eq!(positions, vec![3, 64, 1000]);
    }

    #[test]
    fn iter_dense_word() {
        let mut b = RowBitmap::new();
        for i in 0..64 {
            b.set(i);
        }
        assert_eq!(b.iter().count(), 64);
        assert_eq!(b.count(), 64);
    }
}
