//! Data aging (paper §4).
//!
//! Aging-aware tables carry an artificial *temperature* column (the
//! schema's partition column). The application marks a business object
//! closed by setting that column to its close date — an ordinary update
//! that, because it touches the partition column, deletes the row from its
//! hot fragments and inserts it into the cold partition's delta (§4.2).
//! The asynchronous delta merge later persists it as page-loadable main
//! data. Cold data stays in the same table and remains visible to every
//! query.
//!
//! Two administrative motions are provided on top of the DML:
//!
//! * [`AgingPolicy::close_rows`] — the application-side close: set the
//!   temperature of selected rows, letting routing move them.
//! * [`AgingPolicy::run`] — relocate rows left misplaced by a boundary
//!   shift or a fresh `ADD PARTITION`, then (optionally) delta merge so
//!   the moved rows become page-loadable main fragments.

use crate::table::Table;
use crate::TableResult;
use payg_core::{Value, ValuePredicate};

/// Policy driving aging motions for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgingPolicy {
    /// The temperature column (must be the table's partition column).
    pub temperature_column: String,
    /// Run every partition's delta merge at the end of [`AgingPolicy::run`]
    /// (the paper's merge is asynchronous; `true` models "merge happened").
    pub merge_after: bool,
}

/// Statistics of one aging run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgingRunStats {
    /// Rows moved between partitions.
    pub rows_moved: u64,
}

impl AgingPolicy {
    /// The application-side close: sets the temperature of every row
    /// matching `pred` on `filter_col` to `close_date`. Routing moves the
    /// rows whose new temperature belongs to another partition — into that
    /// partition's delta, without blocking other operations.
    pub fn close_rows(
        &self,
        table: &mut Table,
        filter_col: &str,
        pred: &ValuePredicate,
        close_date: &Value,
    ) -> TableResult<u64> {
        table.update_rows(filter_col, pred, &self.temperature_column, close_date)
    }

    /// The aging run: relocates rows misplaced by partition-range changes
    /// and optionally merges so relocated rows become main data.
    pub fn run(&self, table: &mut Table) -> TableResult<AgingRunStats> {
        let rows_moved = table.relocate_misplaced()?;
        if self.merge_after {
            table.delta_merge_all()?;
        }
        Ok(AgingRunStats { rows_moved })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionId, PartitionRange, PartitionSpec};
    use crate::query::{Projection, Query};
    use crate::schema::{ColumnSpec, Schema};
    use payg_core::{DataType, LoadPolicy, PageConfig};
    use payg_resman::ResourceManager;
    use payg_storage::{BufferPool, MemStore};
    use std::sync::Arc;

    fn orders() -> Table {
        let schema = Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("item", DataType::Varchar),
            ColumnSpec::new("close_date", DataType::Integer),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
        .with_partition_column("close_date")
        .unwrap();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema,
            vec![
                PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(2000))),
                PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(2000))),
            ],
        )
        .unwrap();
        for i in 0..100i64 {
            t.insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("item-{}", i % 11)),
                Value::Integer(1990 + i),
            ])
            .unwrap();
        }
        t.delta_merge_all().unwrap();
        t
    }

    fn policy() -> AgingPolicy {
        AgingPolicy { temperature_column: "close_date".into(), merge_after: true }
    }

    #[test]
    fn closing_an_order_moves_it_to_cold() {
        let mut t = orders();
        // The application closes order 50 (hot, date 2040 → closed 1995).
        let moved = policy()
            .close_rows(
                &mut t,
                "id",
                &ValuePredicate::Eq(Value::Integer(50)),
                &Value::Integer(1995),
            )
            .unwrap();
        assert_eq!(moved, 1);
        // It is now in the cold partition's delta…
        assert_eq!(t.partitions()[1].delta().visible_rows(), 1);
        // …and still found by a point query, with the new date.
        let q = Query::filtered(
            "id",
            ValuePredicate::Eq(Value::Integer(50)),
            Projection::Columns(vec!["close_date".into()]),
        );
        assert_eq!(
            t.execute(&q).unwrap().into_rows(),
            vec![vec![Value::Integer(1995)]]
        );
        // After the aging run (merge) it is page-loadable main data.
        policy().run(&mut t).unwrap();
        assert_eq!(t.partitions()[1].delta().visible_rows(), 0);
        assert_eq!(
            t.partitions()[1].main().column(0).policy(),
            LoadPolicy::PageLoadable
        );
        assert_eq!(t.execute(&Query::full(Projection::Count)).unwrap().count(), 100);
    }

    #[test]
    fn boundary_shift_relocates_misplaced_rows() {
        let mut t = orders();
        // Initially: dates 1990..1999 cold (10 rows), 2000..2089 hot (90).
        assert_eq!(t.partitions()[0].visible_rows(), 90);
        assert_eq!(t.partitions()[1].visible_rows(), 10);
        // Shift the hot boundary: everything before 2050 is now cold.
        t.set_partition_range(
            PartitionId(0),
            PartitionRange::AtLeast(Value::Integer(2050)),
        );
        t.set_partition_range(PartitionId(1), PartitionRange::Below(Value::Integer(2050)));
        let stats = policy().run(&mut t).unwrap();
        assert_eq!(stats.rows_moved, 50, "dates 2000..2049 relocate to cold");
        assert_eq!(t.partitions()[0].visible_rows(), 40);
        assert_eq!(t.partitions()[1].visible_rows(), 60);
        // Nothing is lost and a second run is a no-op.
        assert_eq!(t.execute(&Query::full(Projection::Count)).unwrap().count(), 100);
        assert_eq!(policy().run(&mut t).unwrap().rows_moved, 0);
    }

    #[test]
    fn add_partition_then_relocate() {
        let mut t = orders();
        // Narrow the cold partition and add a deep-cold one below 1995.
        t.set_partition_range(
            PartitionId(1),
            PartitionRange::Between(Value::Integer(1995), Value::Integer(2000)),
        );
        t.add_partition(PartitionSpec::cold(
            "deep-cold",
            PartitionRange::Below(Value::Integer(1995)),
        ))
        .unwrap();
        let stats = policy().run(&mut t).unwrap();
        assert_eq!(stats.rows_moved, 5, "dates 1990..1994 move to deep-cold");
        assert_eq!(t.partitions()[2].visible_rows(), 5);
        assert_eq!(t.execute(&Query::full(Projection::Count)).unwrap().count(), 100);
    }
}
