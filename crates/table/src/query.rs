//! A small query executor covering the paper's Table 2 workloads.
//!
//! Queries are single-table, single-predicate selections with a projection:
//! exactly the shapes the evaluation uses (`SELECT C FROM T WHERE pk = v`,
//! `SELECT COUNT(*) …`, `SELECT SUM(c) … WHERE v1 <= pk <= v2`,
//! `SELECT ROWID() …`, `SELECT * …`). Execution evaluates the predicate
//! independently on the main and the delta fragment of every (non-pruned)
//! partition, unions the results after visibility filtering (§2), and
//! projects with late materialization — row positions first, then one
//! dictionary lookup per distinct identifier per projected column.
//!
//! The executor runs on a [`Snapshot`]: every query pins one table version
//! at entry and evaluates entirely against it, so an online delta merge
//! publishing mid-query can never mix pre- and post-merge fragments into
//! one answer. [`Table::execute`] is a convenience that opens a session
//! (through admission control) per call.

use crate::schema::Row;
use crate::table::{Snapshot, Table};
use crate::{TableError, TableResult};
use payg_core::column::ColumnRead;
use payg_core::{DataType, ScanPath, Value, ValuePredicate};

/// What a query returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    All,
    /// `SELECT c1, c2, …`.
    Columns(Vec<String>),
    /// `SELECT COUNT(*)`.
    Count,
    /// `SELECT SUM(col)`.
    Sum(String),
    /// `SELECT MIN(col)` — O(1) on unfiltered main fragments: the
    /// order-preserving dictionary's first key is the minimum.
    Min(String),
    /// `SELECT MAX(col)` — O(1) on unfiltered main fragments.
    Max(String),
    /// `SELECT DISTINCT col` — on unfiltered main fragments the dictionary
    /// *is* the distinct set (every vid occurs at least once after a merge),
    /// so no data-vector page is touched.
    Distinct(String),
    /// `SELECT ROWID()`.
    RowIds,
}

/// A single-table selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Optional predicate: `(column name, predicate)`.
    pub filter: Option<(String, ValuePredicate)>,
    /// The projection.
    pub projection: Projection,
}

impl Query {
    /// `SELECT <projection> FROM t WHERE <col> <pred>`.
    pub fn filtered(col: impl Into<String>, pred: ValuePredicate, projection: Projection) -> Self {
        Query { filter: Some((col.into(), pred)), projection }
    }

    /// `SELECT <projection> FROM t`.
    pub fn full(projection: Projection) -> Self {
        Query { filter: None, projection }
    }
}

/// A query's result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Materialized rows (for [`Projection::All`] / [`Projection::Columns`]).
    Rows(Vec<Row>),
    /// A count.
    Count(u64),
    /// A sum (type follows the summed column; integer sums widen to
    /// DECIMAL when they overflow `i64`).
    Sum(Value),
    /// A minimum or maximum (`None` when no row matched).
    Extreme(Option<Value>),
    /// Opaque row identifiers.
    RowIds(Vec<u64>),
}

impl QueryResult {
    /// The rows, panicking on other variants (test convenience).
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            QueryResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// The count, panicking on other variants.
    pub fn count(&self) -> u64 {
        match self {
            QueryResult::Count(c) => *c,
            other => panic!("expected count, got {other:?}"),
        }
    }
}

/// An address of one visible matched row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowAddr {
    partition: usize,
    in_delta: bool,
    rpos: u64,
}

impl RowAddr {
    /// Encodes as an opaque `ROWID`.
    fn row_id(self) -> u64 {
        ((self.partition as u64) << 48) | ((self.in_delta as u64) << 47) | self.rpos
    }
}

impl Table {
    /// Executes a query against a fresh snapshot and returns the
    /// [`payg_obs::ScanProfile`] of the work it caused, measured as the
    /// registry delta around execution (every layer under this table —
    /// datavec iterators, buffer pool, columns — reports into the table's
    /// registry). The profile is exact when no other work drives the same
    /// registry concurrently.
    pub fn execute_profiled(
        &self,
        q: &Query,
    ) -> TableResult<(QueryResult, payg_obs::ScanProfile)> {
        let session = self.session()?;
        let before = payg_obs::ObsSnapshot::collect(self.registry());
        let started = std::time::Instant::now();
        // Flight recorder: the whole execution runs under one query span,
        // so scan-partition / page-wait / io-batch children parent to it.
        let span = self.registry().tracer().span(payg_obs::SpanKind::Query, 0);
        let result = session.execute(q)?;
        drop(span);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let after = payg_obs::ObsSnapshot::collect(self.registry());
        let counters = payg_obs::ObsSnapshot::delta(&after, &before);
        let mut profile = payg_obs::ScanProfile::from_delta(&counters);
        profile.elapsed_ns = elapsed_ns;
        Ok((result, profile))
    }

    /// [`Snapshot::scan_plan`] on a fresh snapshot.
    pub fn scan_plan(&self, q: &Query) -> TableResult<Vec<ScanPath>> {
        self.session()?.scan_plan(q)
    }

    /// Executes a query on a fresh snapshot (one coherent table version,
    /// admission-controlled).
    pub fn execute(&self, q: &Query) -> TableResult<QueryResult> {
        self.session()?.execute(q)
    }
}

impl Snapshot<'_> {
    /// The scan strategy `q`'s filter resolves to on each partition's main
    /// fragment: [`ScanPath::CompressedDomain`] where the codec dispatch
    /// seam will run the probe on compressed bytes (PEF `next_geq` over
    /// posting partitions), [`ScanPath::DecodeThenScan`] otherwise
    /// (resident columns, plain chains, range shapes, no filter). Purely
    /// informational — [`Snapshot::execute`] consults the same seam per
    /// postinglist; this surfaces the decision for tests and benches.
    pub fn scan_plan(&self, q: &Query) -> TableResult<Vec<ScanPath>> {
        let Some((name, pred)) = &q.filter else {
            return Ok(vec![ScanPath::DecodeThenScan; self.partitions().len()]);
        };
        let col = self.schema().column_index(name)?;
        Ok(self
            .partitions()
            .iter()
            .map(|p| p.main_frag().column(col).scan_path(pred))
            .collect())
    }

    /// Executes a query against this snapshot's pinned version.
    pub fn execute(&self, q: &Query) -> TableResult<QueryResult> {
        // COUNT avoids materializing row positions when the inverted index's
        // directory can answer directly (Alg. 5's counting shortcut).
        if matches!(q.projection, Projection::Count) {
            return Ok(QueryResult::Count(self.count(&q.filter)?));
        }
        if q.filter.is_none() {
            if let Projection::Min(name) | Projection::Max(name) = &q.projection {
                let want_max = matches!(&q.projection, Projection::Max(_));
                return Ok(QueryResult::Extreme(self.extreme_unfiltered(name, want_max)?));
            }
            if let Projection::Distinct(name) = &q.projection {
                return Ok(QueryResult::Rows(self.distinct_unfiltered(name)?));
            }
        }
        let addrs = self.matching_rows(&q.filter)?;
        match &q.projection {
            Projection::Count => unreachable!("handled above"),
            Projection::RowIds => {
                Ok(QueryResult::RowIds(addrs.iter().map(|a| a.row_id()).collect()))
            }
            Projection::All => {
                let names: Vec<String> =
                    self.schema().columns().iter().map(|c| c.name.clone()).collect();
                Ok(QueryResult::Rows(self.project(&addrs, &names)?))
            }
            Projection::Columns(names) => Ok(QueryResult::Rows(self.project(&addrs, names)?)),
            Projection::Sum(name) => {
                let col = self.schema().column_index(name)?;
                let ty = self.schema().columns()[col].data_type;
                let rows = self.project(&addrs, std::slice::from_ref(name))?;
                let mut acc = SumAcc::new(ty)?;
                for row in &rows {
                    acc.add(&row[0]);
                }
                Ok(QueryResult::Sum(acc.finish()))
            }
            Projection::Distinct(name) => {
                let rows = self.project(&addrs, std::slice::from_ref(name))?;
                let mut keys: Vec<(Vec<u8>, Value)> = rows
                    .into_iter()
                    .map(|mut r| {
                        let v = r.remove(0);
                        (v.to_key(), v)
                    })
                    .collect();
                keys.sort_by(|a, b| a.0.cmp(&b.0));
                keys.dedup_by(|a, b| a.0 == b.0);
                Ok(QueryResult::Rows(keys.into_iter().map(|(_, v)| vec![v]).collect()))
            }
            Projection::Min(name) | Projection::Max(name) => {
                let want_max = matches!(&q.projection, Projection::Max(_));
                let rows = self.project(&addrs, std::slice::from_ref(name))?;
                let best = rows
                    .into_iter()
                    .map(|mut r| r.remove(0))
                    .map(|v| (v.to_key(), v))
                    .reduce(|a, b| {
                        let pick_b = (b.0 > a.0) == want_max;
                        if pick_b { b } else { a }
                    })
                    .map(|(_, v)| v);
                Ok(QueryResult::Extreme(best))
            }
        }
    }

    /// `SELECT MIN/MAX(col)` without a filter: answered from the
    /// order-preserving dictionaries in O(partitions) — the dictionary's
    /// first/last key is the fragment's extreme — plus a delta scan.
    fn extreme_unfiltered(&self, name: &str, want_max: bool) -> TableResult<Option<Value>> {
        let col = self.schema().column_index(name)?;
        let ty = self.schema().columns()[col].data_type;
        let mut best: Option<(Vec<u8>, Value)> = None;
        let mut offer = |v: Value| {
            let k = v.to_key();
            let replace = match &best {
                None => true,
                Some((bk, _)) => (&k > bk) == want_max,
            };
            if replace {
                best = Some((k, v));
            }
        };
        for p in self.partitions() {
            let main = p.main_frag();
            // Deleted rows may hide the extreme: fall back to a projection
            // over visible rows (rare; only between a delete and its merge).
            if main.visible_rows() != main.rows() {
                let vis: Vec<u64> = (0..main.rows()).filter(|&r| main.is_visible(r)).collect();
                for v in main.column(col).get_values(&vis)? {
                    offer(v);
                }
            } else if main.rows() > 0 {
                let c = main.column(col);
                let card = payg_core::column::ColumnRead::cardinality(c);
                let vid = if want_max { card - 1 } else { 0 };
                let key = payg_core::column::ColumnRead::key_by_vid(c, vid)?;
                offer(Value::from_key(ty, &key).map_err(TableError::Core)?);
            }
            let delta = p.delta_view();
            for rpos in 0..delta.rows() {
                if delta.is_visible(rpos) {
                    offer(delta.value(rpos, col, self.schema())?);
                }
            }
        }
        Ok(best.map(|(_, v)| v))
    }

    /// Counts visible matching rows, using the index-directory shortcut
    /// for fragments without deleted rows.
    fn count(&self, filter: &Option<(String, ValuePredicate)>) -> TableResult<u64> {
        let Some((name, pred)) = filter else {
            return Ok(self.visible_rows());
        };
        let col = self.schema().column_index(name)?;
        let mut n = 0u64;
        for p in self.partitions() {
            if !p.spec().range.may_match_on(col, self.schema().partition_column(), pred) {
                continue;
            }
            let main = p.main_frag();
            if main.visible_rows() == main.rows() {
                n += payg_core::column::ColumnRead::count_rows_par(
                    main.column(col),
                    pred,
                    0,
                    main.rows(),
                    self.scan_options(),
                )?;
            } else {
                n += main.find_rows_par(col, pred, self.scan_options())?.len() as u64;
            }
            n += p.delta_view().find_rows(col, pred, self.schema())?.len() as u64;
        }
        Ok(n)
    }

    /// `SELECT DISTINCT col` without a filter: the union of the (merged)
    /// dictionaries plus the delta's distinct values — no data-vector pages.
    fn distinct_unfiltered(&self, name: &str) -> TableResult<Vec<Row>> {
        let col = self.schema().column_index(name)?;
        let ty = self.schema().columns()[col].data_type;
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for p in self.partitions() {
            let main = p.main_frag();
            if main.visible_rows() != main.rows() {
                // Deleted rows can orphan dictionary entries: project.
                let vis: Vec<u64> = (0..main.rows()).filter(|&r| main.is_visible(r)).collect();
                for v in main.column(col).get_values(&vis)? {
                    keys.push(v.to_key());
                }
            } else {
                let c = main.column(col);
                for vid in 0..payg_core::column::ColumnRead::cardinality(c) {
                    keys.push(payg_core::column::ColumnRead::key_by_vid(c, vid)?);
                }
            }
            let delta = p.delta_view();
            for rpos in 0..delta.rows() {
                if delta.is_visible(rpos) {
                    keys.push(delta.value(rpos, col, self.schema())?.to_key());
                }
            }
        }
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .map(|k| Ok(vec![Value::from_key(ty, &k).map_err(TableError::Core)?]))
            .collect()
    }

    /// Addresses of visible rows matching the filter, partition by
    /// partition (partitions pruned when the filter is on the partition
    /// column), main fragment before delta within each partition.
    fn matching_rows(
        &self,
        filter: &Option<(String, ValuePredicate)>,
    ) -> TableResult<Vec<RowAddr>> {
        let mut addrs = Vec::new();
        match filter {
            Some((name, pred)) => {
                let col = self.schema().column_index(name)?;
                for (pi, p) in self.partitions().iter().enumerate() {
                    if !p.spec().range.may_match_on(col, self.schema().partition_column(), pred) {
                        continue;
                    }
                    for rpos in p.main_frag().find_rows_par(col, pred, self.scan_options())? {
                        addrs.push(RowAddr { partition: pi, in_delta: false, rpos });
                    }
                    for rpos in p.delta_view().find_rows(col, pred, self.schema())? {
                        addrs.push(RowAddr { partition: pi, in_delta: true, rpos });
                    }
                }
            }
            None => {
                for (pi, p) in self.partitions().iter().enumerate() {
                    let main = p.main_frag();
                    for rpos in 0..main.rows() {
                        if main.is_visible(rpos) {
                            addrs.push(RowAddr { partition: pi, in_delta: false, rpos });
                        }
                    }
                    let delta = p.delta_view();
                    for rpos in 0..delta.rows() {
                        if delta.is_visible(rpos) {
                            addrs.push(RowAddr { partition: pi, in_delta: true, rpos });
                        }
                    }
                }
            }
        }
        Ok(addrs)
    }

    /// Late materialization: per (partition, fragment) batch, decode row
    /// positions then resolve values column by column.
    fn project(&self, addrs: &[RowAddr], names: &[impl AsRef<str>]) -> TableResult<Vec<Row>> {
        let cols: Vec<usize> = names
            .iter()
            .map(|n| self.schema().column_index(n.as_ref()))
            .collect::<TableResult<_>>()?;
        let mut rows: Vec<Row> = vec![Vec::with_capacity(cols.len()); addrs.len()];
        // Group output slots by (partition, fragment) so each main column is
        // materialized with one batched call.
        for (pi, p) in self.partitions().iter().enumerate() {
            let slots: Vec<usize> = (0..addrs.len())
                .filter(|&i| addrs[i].partition == pi && !addrs[i].in_delta)
                .collect();
            if !slots.is_empty() {
                let rposs: Vec<u64> = slots.iter().map(|&i| addrs[i].rpos).collect();
                for &c in &cols {
                    let values = p.main_frag().column(c).get_values(&rposs)?;
                    for (&slot, v) in slots.iter().zip(values) {
                        rows[slot].push(v);
                    }
                }
            }
            for (i, addr) in addrs.iter().enumerate() {
                if addr.partition == pi && addr.in_delta {
                    for &c in &cols {
                        rows[i].push(p.delta_view().value(addr.rpos, c, self.schema())?);
                    }
                }
            }
        }
        Ok(rows)
    }
}

/// Typed sum accumulator.
enum SumAcc {
    Int(i128),
    Dec(i128),
    Dbl(f64),
}

impl SumAcc {
    fn new(ty: DataType) -> TableResult<Self> {
        Ok(match ty {
            DataType::Integer => SumAcc::Int(0),
            DataType::Decimal => SumAcc::Dec(0),
            DataType::Double => SumAcc::Dbl(0.0),
            DataType::Varchar => {
                return Err(TableError::Invalid("SUM over a VARCHAR column".into()))
            }
        })
    }

    fn add(&mut self, v: &Value) {
        match (self, v) {
            (SumAcc::Int(a), Value::Integer(x)) => *a += i128::from(*x),
            (SumAcc::Dec(a), Value::Decimal(x)) => *a += x,
            (SumAcc::Dbl(a), Value::Double(x)) => *a += x,
            _ => unreachable!("sum accumulator type checked at construction"),
        }
    }

    fn finish(self) -> Value {
        match self {
            SumAcc::Int(a) => i64::try_from(a)
                .map(Value::Integer)
                // An integer sum beyond i64 widens to DECIMAL (scale 2).
                .unwrap_or(Value::Decimal(a.saturating_mul(100))),
            SumAcc::Dec(a) => Value::Decimal(a),
            SumAcc::Dbl(a) => Value::Double(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use crate::schema::{ColumnSpec, Schema};
    use payg_core::{LoadPolicy, PageConfig};
    use payg_resman::ResourceManager;
    use payg_storage::{BufferPool, MemStore};
    use std::sync::Arc;

    fn table(policy: LoadPolicy) -> Table {
        let schema = Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("region", DataType::Varchar),
            ColumnSpec::new("amount", DataType::Decimal),
            ColumnSpec::new("score", DataType::Double),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema,
            vec![PartitionSpec::single(policy)],
        )
        .unwrap();
        for i in 0..300i64 {
            t.insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("region-{}", i % 5)),
                Value::Decimal(i as i128 * 100),
                Value::Double(i as f64 / 2.0),
            ])
            .unwrap();
        }
        // Leave some rows in the delta to exercise the union path.
        t.delta_merge_all().unwrap();
        for i in 300..320i64 {
            t.insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("region-{}", i % 5)),
                Value::Decimal(i as i128 * 100),
                Value::Double(i as f64 / 2.0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn point_query_projects_one_column() {
        for policy in [LoadPolicy::FullyResident, LoadPolicy::PageLoadable] {
            let t = table(policy);
            // From the main fragment.
            let q = Query::filtered(
                "id",
                ValuePredicate::Eq(Value::Integer(123)),
                Projection::Columns(vec!["region".into()]),
            );
            let rows = t.execute(&q).unwrap().into_rows();
            assert_eq!(rows, vec![vec![Value::Varchar("region-3".into())]]);
            // From the delta fragment.
            let q = Query::filtered(
                "id",
                ValuePredicate::Eq(Value::Integer(310)),
                Projection::Columns(vec!["region".into()]),
            );
            let rows = t.execute(&q).unwrap().into_rows();
            assert_eq!(rows, vec![vec![Value::Varchar("region-0".into())]]);
        }
    }

    #[test]
    fn select_star_unions_main_and_delta() {
        let t = table(LoadPolicy::PageLoadable);
        let q = Query::filtered(
            "region",
            ValuePredicate::Eq(Value::Varchar("region-1".into())),
            Projection::All,
        );
        let rows = t.execute(&q).unwrap().into_rows();
        // 60 in the main (ids 1,6,…,296) + 4 in the delta (301,306,311,316).
        assert_eq!(rows.len(), 64);
        assert!(rows.iter().all(|r| r[1] == Value::Varchar("region-1".into())));
        assert!(rows.iter().any(|r| r[0] == Value::Integer(311)));
    }

    #[test]
    fn count_and_rowids() {
        let t = table(LoadPolicy::PageLoadable);
        let q = Query::filtered(
            "region",
            ValuePredicate::Eq(Value::Varchar("region-2".into())),
            Projection::Count,
        );
        assert_eq!(t.execute(&q).unwrap().count(), 64);
        let q = Query::filtered(
            "id",
            ValuePredicate::Eq(Value::Integer(42)),
            Projection::RowIds,
        );
        match t.execute(&q).unwrap() {
            QueryResult::RowIds(ids) => assert_eq!(ids, vec![42]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn session_reuses_one_version_for_many_queries() {
        let t = table(LoadPolicy::PageLoadable);
        let s = t.session().unwrap();
        let count_all = Query::full(Projection::Count);
        assert_eq!(s.execute(&count_all).unwrap().count(), 320);
        // Concurrent write + merge: the session's answers do not move.
        t.insert(vec![
            Value::Integer(999),
            Value::Varchar("region-9".into()),
            Value::Decimal(1),
            Value::Double(0.5),
        ])
        .unwrap();
        t.delta_merge_all().unwrap();
        assert_eq!(s.execute(&count_all).unwrap().count(), 320);
        // A fresh session sees the new row.
        assert_eq!(t.execute(&count_all).unwrap().count(), 321);
    }

    #[test]
    fn scan_plan_reports_compressed_domain_per_codec() {
        // An indexed column under the default config carries PEF postings:
        // point and set probes run in the compressed domain, ranges decode.
        let schema = Schema::new(vec![
            ColumnSpec::indexed("id", DataType::Integer),
            ColumnSpec::new("region", DataType::Varchar),
        ])
        .unwrap();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema,
            vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
        )
        .unwrap();
        for i in 0..500i64 {
            t.insert(vec![Value::Integer(i), Value::Varchar(format!("r-{}", i % 7))]).unwrap();
        }
        t.delta_merge_all().unwrap();
        let point = Query::filtered("id", ValuePredicate::Eq(Value::Integer(7)), Projection::Count);
        assert_eq!(t.scan_plan(&point).unwrap(), vec![ScanPath::CompressedDomain]);
        let set = Query::filtered(
            "id",
            ValuePredicate::In(vec![Value::Integer(3), Value::Integer(11)]),
            Projection::Count,
        );
        assert_eq!(t.scan_plan(&set).unwrap(), vec![ScanPath::CompressedDomain]);
        let range = Query::filtered(
            "id",
            ValuePredicate::Between(Value::Integer(3), Value::Integer(9)),
            Projection::Count,
        );
        assert_eq!(t.scan_plan(&range).unwrap(), vec![ScanPath::DecodeThenScan]);
        // Unindexed columns and missing filters always decode-then-scan.
        let unindexed = Query::filtered(
            "region",
            ValuePredicate::Eq(Value::Varchar("r-1".into())),
            Projection::Count,
        );
        assert_eq!(t.scan_plan(&unindexed).unwrap(), vec![ScanPath::DecodeThenScan]);
        let full = Query::full(Projection::Count);
        assert_eq!(t.scan_plan(&full).unwrap(), vec![ScanPath::DecodeThenScan]);
    }

    #[test]
    fn compressed_domain_execution_matches_decode_then_scan() {
        // Same rows through a PEF-postings table and a bit-packed one:
        // every query shape returns identical results, while the plans
        // differ on point probes.
        let build = |pef: bool| {
            let schema = Schema::new(vec![
                ColumnSpec::indexed("id", DataType::Integer),
                ColumnSpec::new("region", DataType::Varchar),
            ])
            .unwrap();
            let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
            let config = PageConfig { pef_postings: pef, ..PageConfig::tiny() };
            let t = Table::create(
                pool,
                config,
                schema,
                vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
            )
            .unwrap();
            for i in 0..400i64 {
                t.insert(vec![Value::Integer(i % 50), Value::Varchar(format!("r-{}", i % 3))])
                    .unwrap();
            }
            t.delta_merge_all().unwrap();
            t
        };
        let (pef, plain) = (build(true), build(false));
        let queries = [
            Query::filtered("id", ValuePredicate::Eq(Value::Integer(17)), Projection::All),
            Query::filtered(
                "id",
                ValuePredicate::In(vec![Value::Integer(3), Value::Integer(42)]),
                Projection::RowIds,
            ),
            Query::filtered(
                "id",
                ValuePredicate::Between(Value::Integer(10), Value::Integer(20)),
                Projection::Count,
            ),
        ];
        assert_eq!(t_plan(&pef, &queries[0]), ScanPath::CompressedDomain);
        assert_eq!(t_plan(&plain, &queries[0]), ScanPath::DecodeThenScan);
        for q in &queries {
            assert_eq!(pef.execute(q).unwrap(), plain.execute(q).unwrap());
        }
    }

    fn t_plan(t: &Table, q: &Query) -> ScanPath {
        t.scan_plan(q).unwrap()[0]
    }

    #[test]
    fn sums_per_type() {
        let t = table(LoadPolicy::FullyResident);
        let q = Query::filtered(
            "id",
            ValuePredicate::Between(Value::Integer(0), Value::Integer(9)),
            Projection::Sum("amount".into()),
        );
        assert_eq!(t.execute(&q).unwrap(), QueryResult::Sum(Value::Decimal(4500)));
        let q = Query::filtered(
            "id",
            ValuePredicate::Between(Value::Integer(0), Value::Integer(9)),
            Projection::Sum("score".into()),
        );
        assert_eq!(t.execute(&q).unwrap(), QueryResult::Sum(Value::Double(22.5)));
        let q = Query::filtered(
            "id",
            ValuePredicate::Between(Value::Integer(0), Value::Integer(9)),
            Projection::Sum("id".into()),
        );
        assert_eq!(t.execute(&q).unwrap(), QueryResult::Sum(Value::Integer(45)));
        // SUM over VARCHAR is rejected.
        let q = Query::full(Projection::Sum("region".into()));
        assert!(t.execute(&q).is_err());
    }

    #[test]
    fn unfiltered_scan_sees_everything_visible() {
        let t = table(LoadPolicy::PageLoadable);
        assert_eq!(t.execute(&Query::full(Projection::Count)).unwrap().count(), 320);
    }

    #[test]
    fn parallel_scan_options_do_not_change_results() {
        for policy in [LoadPolicy::FullyResident, LoadPolicy::PageLoadable] {
            let mut t = table(policy);
            let queries = [
                Query::filtered(
                    "id",
                    ValuePredicate::Between(Value::Integer(15), Value::Integer(280)),
                    Projection::Count,
                ),
                Query::filtered(
                    "region",
                    ValuePredicate::Eq(Value::Varchar("region-4".into())),
                    Projection::All,
                ),
                Query::filtered(
                    "id",
                    ValuePredicate::Between(Value::Integer(10), Value::Integer(200)),
                    Projection::Sum("amount".into()),
                ),
                Query::full(Projection::Count),
            ];
            let sequential: Vec<QueryResult> =
                queries.iter().map(|q| t.execute(q).unwrap()).collect();
            for workers in [2, 4] {
                t.set_scan_options(payg_core::ScanOptions::with_workers(workers));
                for (q, expect) in queries.iter().zip(&sequential) {
                    assert_eq!(&t.execute(q).unwrap(), expect, "workers={workers} {q:?}");
                }
            }
        }
    }

    #[test]
    fn execute_profiled_reports_scan_work() {
        let t = table(LoadPolicy::PageLoadable);
        let q = Query::filtered(
            "region",
            ValuePredicate::Eq(Value::Varchar("region-1".into())),
            Projection::Count,
        );
        let (result, profile) = t.execute_profiled(&q).unwrap();
        assert_eq!(result.count(), 64);
        assert!(profile.chunks_scanned > 0, "paged scan evaluated chunks: {profile:?}");
        assert!(profile.elapsed_ns > 0);
        // The same result again is warm: no new cold loads.
        let (result2, profile2) = t.execute_profiled(&q).unwrap();
        assert_eq!(result2.count(), 64);
        assert_eq!(profile2.cold_loads, 0, "second run is warm: {profile2:?}");
        assert!(profile2.warm_hits > 0);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table(LoadPolicy::PageLoadable);
        let q = Query::filtered("nope", ValuePredicate::Eq(Value::Integer(1)), Projection::Count);
        assert!(matches!(t.execute(&q), Err(TableError::UnknownColumn(_))));
    }
}

#[cfg(test)]
mod minmax_tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use crate::schema::{ColumnSpec, Schema};
    use payg_core::{LoadPolicy, PageConfig};
    use payg_resman::ResourceManager;
    use payg_storage::{BufferPool, MemStore};
    use std::sync::Arc;

    fn minmax_table() -> Table {
        let schema = Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("name", DataType::Varchar),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema,
            vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
        )
        .unwrap();
        for i in 0..200i64 {
            t.insert(vec![
                Value::Integer((i * 37) % 199 - 50),
                Value::Varchar(format!("n-{:03}", (i * 13) % 97)),
            ])
            .unwrap();
        }
        t.delta_merge_all().unwrap();
        // Leave a few rows in the delta so the union path is exercised.
        t.insert(vec![Value::Integer(-999), Value::Varchar("zzz-top".into())]).unwrap();
        t.insert(vec![Value::Integer(500), Value::Varchar("aaa-bottom".into())]).unwrap();
        t
    }

    #[test]
    fn unfiltered_min_max_use_dictionary_and_delta() {
        let t = minmax_table();
        assert_eq!(
            t.execute(&Query::full(Projection::Min("id".into()))).unwrap(),
            QueryResult::Extreme(Some(Value::Integer(-999))),
            "delta row is the minimum"
        );
        assert_eq!(
            t.execute(&Query::full(Projection::Max("id".into()))).unwrap(),
            QueryResult::Extreme(Some(Value::Integer(500)))
        );
        assert_eq!(
            t.execute(&Query::full(Projection::Max("name".into()))).unwrap(),
            QueryResult::Extreme(Some(Value::Varchar("zzz-top".into())))
        );
    }

    #[test]
    fn filtered_min_max_respect_the_predicate() {
        let t = minmax_table();
        let q = Query::filtered(
            "id",
            ValuePredicate::Between(Value::Integer(0), Value::Integer(50)),
            Projection::Max("name".into()),
        );
        // Brute force over the same filter.
        let all = t
            .execute(&Query::filtered(
                "id",
                ValuePredicate::Between(Value::Integer(0), Value::Integer(50)),
                Projection::All,
            ))
            .unwrap()
            .into_rows();
        let expect = all
            .iter()
            .map(|r| r[1].clone())
            .max_by(|a, b| a.to_key().cmp(&b.to_key()));
        assert_eq!(t.execute(&q).unwrap(), QueryResult::Extreme(expect));
    }

    #[test]
    fn empty_match_yields_none() {
        let t = minmax_table();
        let q = Query::filtered(
            "id",
            ValuePredicate::Eq(Value::Integer(123_456)),
            Projection::Min("id".into()),
        );
        assert_eq!(t.execute(&q).unwrap(), QueryResult::Extreme(None));
    }

    #[test]
    fn distinct_uses_dictionary_and_respects_filters() {
        let t = minmax_table();
        // Unfiltered: the dictionary is the distinct set (+ the delta rows).
        let rows = t
            .execute(&Query::full(Projection::Distinct("name".into())))
            .unwrap()
            .into_rows();
        // 97 generated names + "zzz-top" + "aaa-bottom".
        assert_eq!(rows.len(), 99);
        // Sorted ascending by key order.
        assert_eq!(rows[0][0], Value::Varchar("aaa-bottom".into()));
        assert_eq!(rows[98][0], Value::Varchar("zzz-top".into()));
        // Filtered distinct goes through projection and deduplicates.
        let q = Query::filtered(
            "name",
            ValuePredicate::StartsWith("n-00".into()),
            Projection::Distinct("name".into()),
        );
        let filtered = t.execute(&q).unwrap().into_rows();
        assert!(!filtered.is_empty());
        assert!(filtered
            .iter()
            .all(|r| matches!(&r[0], Value::Varchar(s) if s.starts_with("n-00"))));
        let mut sorted = filtered.clone();
        sorted.dedup();
        assert_eq!(sorted, filtered, "already deduplicated");
    }

    #[test]
    fn min_max_after_deletes_falls_back_correctly() {
        let t = minmax_table();
        // Delete the extreme delta rows by moving... the engine has no bare
        // delete; emulate by updating them out through update_rows on a
        // non-partitioned table (update keeps them). Instead: delete via
        // main-fragment deletion path using update_rows to rewrite the max.
        let n = t
            .update_rows(
                "id",
                &ValuePredicate::Eq(Value::Integer(500)),
                "id",
                &Value::Integer(7),
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            t.execute(&Query::full(Projection::Max("id".into()))).unwrap(),
            QueryResult::Extreme(Some(Value::Integer(148))),
            "max of the generated mains after the rewrite"
        );
    }
}
