//! The read-optimized main fragment.
//!
//! Built by delta merge and immutable until the next one (§2). Holds one
//! [`payg_core::column::Column`] per schema column — fully resident or page
//! loadable depending on the owning partition's load policy — plus a
//! deleted-row bitmap: deletes (e.g. rows aged out to a cold partition) only
//! flip visibility; the rows physically disappear at the next delta merge.
//!
//! The deleted bitmap is interior-mutable (`RwLock`): fragments are shared
//! across table versions by the serving layer, and row deletes are
//! read-committed — they flip visibility in every version holding the
//! fragment, while structural changes go through version publication.

use crate::bitmap::RowBitmap;
use crate::schema::{Row, Schema};
use crate::TableResult;
use payg_core::column::{Column, ColumnRead};
use payg_core::{ColumnBuilder, LoadPolicy, PageConfig, ScanOptions, Value, ValuePredicate};
use payg_resman::Disposition;
use payg_storage::{BufferPool, ChainId};
use std::sync::{RwLock, RwLockReadGuard};

/// The main fragment of one partition.
pub struct MainFragment {
    columns: Vec<Column>,
    rows: u64,
    deleted: RwLock<RowBitmap>,
}

impl MainFragment {
    /// Builds a main fragment from materialized rows (the delta-merge
    /// output path). Columns are persisted and constructed per `policy`.
    ///
    /// Crash-safe: when any column build fails (storage fault, budget,
    /// corruption), the page chains of the columns already built are
    /// discarded from the pool and the store before the error propagates —
    /// an aborted merge leaves nothing behind.
    pub fn build(
        pool: &BufferPool,
        config: &PageConfig,
        schema: &Schema,
        rows: &[Row],
        policy: LoadPolicy,
        disposition: Disposition,
    ) -> TableResult<Self> {
        let mut columns = Vec::with_capacity(schema.arity());
        for (c, spec) in schema.columns().iter().enumerate() {
            let values: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            let built = ColumnBuilder::new(spec.data_type)
                .policy(spec.load_policy.unwrap_or(policy))
                .with_index(spec.with_index)
                .resident_disposition(disposition)
                .build(pool, config, &values);
            match built {
                Ok(b) => columns.push(b.column),
                Err(e) => {
                    // Sibling columns of the failed build are side-built
                    // state nothing references yet: reclaim their chains.
                    for col in &columns {
                        for (_, chain) in col.chains() {
                            pool.discard_chain(ChainId(chain));
                        }
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(MainFragment {
            columns,
            rows: rows.len() as u64,
            deleted: RwLock::new(RowBitmap::new()),
        })
    }

    /// Reassembles a fragment from reopened columns (catalog restore).
    /// Checkpoints require merged fragments, so the deleted bitmap is empty.
    pub(crate) fn from_columns(columns: Vec<Column>, rows: u64) -> Self {
        MainFragment { columns, rows, deleted: RwLock::new(RowBitmap::new()) }
    }

    fn deleted(&self) -> RwLockReadGuard<'_, RowBitmap> {
        match self.deleted.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Total rows (including deleted).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Visible rows.
    pub fn visible_rows(&self) -> u64 {
        self.rows - self.deleted().count()
    }

    /// The columns (schema order).
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One column.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Marks a row deleted. `&self`: visibility is shared by every table
    /// version holding this fragment (read-committed deletes).
    pub fn delete(&self, rpos: u64) {
        debug_assert!(rpos < self.rows);
        match self.deleted.write() {
            Ok(mut g) => g.set(rpos),
            Err(p) => p.into_inner().set(rpos),
        }
    }

    /// True when `rpos` is visible.
    pub fn is_visible(&self, rpos: u64) -> bool {
        !self.deleted().get(rpos)
    }

    /// The value at (`rpos`, `col`).
    pub fn value(&self, rpos: u64, col: usize) -> TableResult<Value> {
        Ok(self.columns[col].get_value(rpos)?)
    }

    /// Materializes a whole row.
    pub fn row(&self, rpos: u64) -> TableResult<Row> {
        self.columns.iter().map(|c| Ok(c.get_value(rpos)?)).collect()
    }

    /// Visible row positions matching `pred` on `col`, ascending.
    pub fn find_rows(&self, col: usize, pred: &ValuePredicate) -> TableResult<Vec<u64>> {
        self.find_rows_par(col, pred, ScanOptions::sequential())
    }

    /// [`MainFragment::find_rows`] with an explicit parallelism budget: the
    /// column scan segments across workers, then the deleted-row filter runs
    /// on the merged (ascending) result.
    pub fn find_rows_par(
        &self,
        col: usize,
        pred: &ValuePredicate,
        opts: ScanOptions,
    ) -> TableResult<Vec<u64>> {
        let mut rows = self.columns[col].find_rows_par(pred, 0, self.rows, opts)?;
        let deleted = self.deleted();
        if !deleted.is_empty() {
            rows.retain(|&r| !deleted.get(r));
        }
        Ok(rows)
    }

    /// Materializes every visible row (the delta-merge input path).
    pub fn visible_row_values(&self) -> TableResult<Vec<Row>> {
        // Column-wise materialization: one pass per column.
        let visible: Vec<u64> = {
            let deleted = self.deleted();
            (0..self.rows).filter(|&r| !deleted.get(r)).collect()
        };
        let mut rows: Vec<Row> = vec![Vec::with_capacity(self.columns.len()); visible.len()];
        for col in &self.columns {
            let values = col.get_values(&visible)?;
            for (row, v) in rows.iter_mut().zip(values) {
                row.push(v);
            }
        }
        Ok(rows)
    }

    /// Unloads all fully-resident columns (cold restart simulation).
    pub fn unload(&self) {
        for c in &self.columns {
            c.unload();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSpec;
    use payg_core::DataType;
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;
    use std::sync::Arc;

    fn setup(policy: LoadPolicy) -> (Schema, MainFragment) {
        let schema = Schema::new(vec![
            ColumnSpec::indexed("id", DataType::Integer),
            ColumnSpec::new("grade", DataType::Varchar),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Varchar(format!("grade-{}", i % 7)),
                ]
            })
            .collect();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let main = MainFragment::build(
            &pool,
            &PageConfig::tiny(),
            &schema,
            &rows,
            policy,
            Disposition::MidTerm,
        )
        .unwrap();
        (schema, main)
    }

    #[test]
    fn build_and_read_both_policies() {
        for policy in [LoadPolicy::FullyResident, LoadPolicy::PageLoadable] {
            let (_, main) = setup(policy);
            assert_eq!(main.rows(), 200);
            assert_eq!(main.value(13, 0).unwrap(), Value::Integer(13));
            assert_eq!(main.value(13, 1).unwrap(), Value::Varchar("grade-6".into()));
            assert_eq!(
                main.row(7).unwrap(),
                vec![Value::Integer(7), Value::Varchar("grade-0".into())]
            );
        }
    }

    #[test]
    fn deletes_hide_rows_from_scans() {
        let (_, main) = setup(LoadPolicy::PageLoadable);
        let pred = ValuePredicate::Eq(Value::Varchar("grade-3".into()));
        let before = main.find_rows(1, &pred).unwrap();
        assert!(before.contains(&3));
        main.delete(3);
        let after = main.find_rows(1, &pred).unwrap();
        assert!(!after.contains(&3));
        assert_eq!(after.len(), before.len() - 1);
        assert_eq!(main.visible_rows(), 199);
        assert!(!main.is_visible(3));
    }

    #[test]
    fn visible_row_values_roundtrip() {
        let (_, main) = setup(LoadPolicy::FullyResident);
        main.delete(0);
        main.delete(199);
        let rows = main.visible_row_values().unwrap();
        assert_eq!(rows.len(), 198);
        assert_eq!(rows[0][0], Value::Integer(1));
        assert_eq!(rows[197][0], Value::Integer(198));
    }
}
