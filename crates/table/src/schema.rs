//! Table schemas and rows.

use crate::{TableError, TableResult};
use payg_core::{DataType, LoadPolicy, Value};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name (unique within a schema).
    pub name: String,
    /// Value type.
    pub data_type: DataType,
    /// Whether main fragments of this column get an inverted index.
    pub with_index: bool,
    /// Per-column load-policy override; `None` follows the partition's
    /// policy. This is the `PAGE LOADABLE` clause at column granularity —
    /// the paper's `T_p` (all non-PK columns paged) and `T_pp` (only the
    /// PK paged) table variants are built with it.
    pub load_policy: Option<LoadPolicy>,
}

impl ColumnSpec {
    /// A column without an inverted index.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnSpec { name: name.into(), data_type, with_index: false, load_policy: None }
    }

    /// A column with an inverted index on its main fragments.
    pub fn indexed(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnSpec { name: name.into(), data_type, with_index: true, load_policy: None }
    }

    /// Overrides the load policy for this column regardless of partition.
    pub fn with_load_policy(mut self, policy: LoadPolicy) -> Self {
        self.load_policy = Some(policy);
        self
    }
}

/// A row is one value per schema column, in schema order.
pub type Row = Vec<Value>;

/// A table schema: ordered columns, an optional primary key and an optional
/// partition column (the aging temperature column, §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnSpec>,
    primary_key: Option<usize>,
    partition_column: Option<usize>,
}

impl Schema {
    /// Creates a schema, validating name uniqueness.
    pub fn new(columns: Vec<ColumnSpec>) -> TableResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(TableError::Invalid(format!("duplicate column name {:?}", c.name)));
            }
        }
        if columns.is_empty() {
            return Err(TableError::Invalid("a schema needs at least one column".into()));
        }
        Ok(Schema { columns, primary_key: None, partition_column: None })
    }

    /// Declares a primary-key column (enables `ROWID`-style point access
    /// and gives the PK column an inverted index by convention).
    pub fn with_primary_key(mut self, name: &str) -> TableResult<Self> {
        let idx = self.column_index(name)?;
        self.columns[idx].with_index = true;
        self.primary_key = Some(idx);
        Ok(self)
    }

    /// Declares the partition (temperature) column used for range
    /// partitioning and aging.
    pub fn with_partition_column(mut self, name: &str) -> TableResult<Self> {
        let idx = self.column_index(name)?;
        self.partition_column = Some(idx);
        Ok(self)
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnSpec] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of `name`.
    pub fn column_index(&self, name: &str) -> TableResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_owned()))
    }

    /// The primary-key column index, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }

    /// The partition-column index, if declared.
    pub fn partition_column(&self) -> Option<usize> {
        self.partition_column
    }

    /// Validates a row against the schema.
    pub fn check_row(&self, row: &Row) -> TableResult<()> {
        if row.len() != self.columns.len() {
            return Err(TableError::ArityMismatch { expected: self.columns.len(), got: row.len() });
        }
        for (v, c) in row.iter().zip(&self.columns) {
            v.check_type(c.data_type).map_err(TableError::Core)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("name", DataType::Varchar),
            ColumnSpec::new("amount", DataType::Decimal),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
    }

    #[test]
    fn schema_lookup_and_pk() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("name").unwrap(), 1);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.primary_key(), Some(0));
        assert!(s.columns()[0].with_index, "pk column gets an index");
    }

    #[test]
    fn duplicate_and_empty_schemas_rejected() {
        assert!(Schema::new(vec![
            ColumnSpec::new("a", DataType::Integer),
            ColumnSpec::new("a", DataType::Varchar),
        ])
        .is_err());
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn row_validation() {
        let s = schema();
        let good = vec![Value::Integer(1), Value::Varchar("x".into()), Value::Decimal(100)];
        s.check_row(&good).unwrap();
        assert!(matches!(
            s.check_row(&good[..2].to_vec()),
            Err(TableError::ArityMismatch { .. })
        ));
        let bad_type = vec![Value::Varchar("1".into()), Value::Varchar("x".into()), Value::Decimal(1)];
        assert!(s.check_row(&bad_type).is_err());
    }
}
