//! Columnar tables over page-loadable columns: fragments, delta merge,
//! partitions, data aging and a query executor.
//!
//! This crate provides the engine layer the paper's experiments run on
//! (§2, §4): every column of a table has a read-optimized **main fragment**
//! (built by delta merge, immutable in between) and a write-optimized
//! **delta fragment** (append-only, unsorted dictionary). Queries evaluate
//! on both fragments and union the results after row-visibility filtering.
//!
//! Tables can be **range partitioned** on a designated column; each
//! partition chooses its own load policy, which is how data aging stores
//! hot partitions as default columns and cold partitions as page-loadable
//! columns (§4.1). Aging itself (§4.2) is an ordinary DML operation: an
//! update of the partition column moves the row into the cold partition's
//! delta, and the next delta merge persists it as page-loadable main data.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod aging;
pub mod bitmap;
pub mod catalog;
pub mod delta;
pub mod error;
pub mod explain;
pub mod fragment;
pub mod partition;
pub mod query;
pub mod schema;
pub mod stats;
pub mod table;
pub mod version;

pub use admission::{AdmissionConfig, AdmissionController};
pub use aging::AgingPolicy;
pub use error::{TableError, TableResult};
pub use explain::{ChainActuals, ChainExplain, ExplainAnalyze, PartitionExplain};
pub use partition::{PartitionId, PartitionRange, PartitionSpec};
pub use query::{Projection, Query, QueryResult};
pub use schema::{ColumnSpec, Row, Schema};
pub use stats::{ColumnStats, PartitionStats, TableStats};
pub use table::{Snapshot, Table};
pub use version::{DeltaView, Partition};
