//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the iterator **handle cache** (§3.2.3) vs a fresh cache per lookup,
//! * **page-summary pruning** on clustered vs unclustered data,
//! * the index iterator's **decoded-chunk cache** (sequential `getNextRowPos`),
//! * the **SWAR** word-aligned equality path vs the generic decode path,
//! * warm **paged vs resident** point reads (the steady-state overhead that
//!   the paper's run-time ratios converge to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use payg_core::column::ColumnRead;
use payg_core::datavec::PagedDataVector;
use payg_core::dict::{HandleCache, PagedDictionary};
use payg_core::invidx::PagedInvertedIndex;
use payg_core::{ColumnBuilder, DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use payg_encoding::scan::search_bitmap;
use payg_encoding::{BitPackedVec, BitWidth, VidSet};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore, PageStore, TieredStore};
use std::sync::Arc;
use std::time::Duration;

fn pool() -> BufferPool {
    BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
}

fn config() -> PageConfig {
    PageConfig {
        datavec_page: 4096,
        dict_page: 4096,
        overflow_page: 4096,
        helper_page: 4096,
        index_page: 4096,
        inline_limit: 128,
        ..PageConfig::default()
    }
}

/// Handle cache: a batch of sorted dictionary lookups through one iterator
/// (pages pinned once) vs a fresh cache per lookup (pages re-pinned).
fn bench_dict_handle_cache(c: &mut Criterion) {
    let pool = pool();
    let keys: Vec<Vec<u8>> = (0..100_000u64)
        .map(|i| format!("material-{i:08}").into_bytes())
        .collect();
    let (dict, _) = PagedDictionary::build(&pool, &config(), &keys).unwrap();
    let probes: Vec<u64> = (0..100_000u64).step_by(97).collect();
    let mut g = c.benchmark_group("ablation/dict_handle_cache");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("batch_shared_cache", |b| {
        b.iter(|| {
            let mut cache = HandleCache::new(pool.clone());
            for &vid in &probes {
                std::hint::black_box(dict.key_by_vid(vid, &mut cache).unwrap());
            }
        })
    });
    g.bench_function("fresh_cache_per_lookup", |b| {
        b.iter(|| {
            for &vid in &probes {
                let mut cache = HandleCache::new(pool.clone());
                std::hint::black_box(dict.key_by_vid(vid, &mut cache).unwrap());
            }
        })
    });
    g.finish();
}

/// Page summaries: a selective scan over clustered data skips pages without
/// loading them; the same scan over random data must decode everything.
fn bench_summary_pruning(c: &mut Criterion) {
    let rows = 1_000_000u64;
    let clustered: Vec<u64> = (0..rows).map(|i| i / 4096).collect();
    let random: Vec<u64> = (0..rows)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (rows / 4096))
        .collect();
    let mut g = c.benchmark_group("ablation/page_summary_pruning");
    g.throughput(Throughput::Elements(rows));
    for (name, values) in [("clustered", &clustered), ("random", &random)] {
        let pool = pool();
        let paged =
            PagedDataVector::build(&pool, &config(), &BitPackedVec::from_values(values)).unwrap();
        // Warm the pool so the measurement isolates pruning, not I/O.
        let mut warm = Vec::new();
        paged.iter().search(0, rows, &VidSet::range(0, u64::MAX), &mut warm).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                paged.iter().search(0, rows, &VidSet::Single(7), &mut out).unwrap();
                std::hint::black_box(&out);
            })
        });
    }
    g.finish();
}

/// Chunk cache: draining a long postinglist via `get_next_row_pos` (64
/// postings per decode) vs re-seeking every posting via `get_first_row_pos`.
fn bench_index_chunk_cache(c: &mut Criterion) {
    let pool = pool();
    let rows = 500_000u64;
    // Two distinct values: vid 0's postinglist has 250k entries.
    let values: Vec<u64> = (0..rows).map(|i| i % 2).collect();
    let idx = PagedInvertedIndex::build(&pool, &config(), &values, 2).unwrap();
    let mut g = c.benchmark_group("ablation/index_chunk_cache");
    g.throughput(Throughput::Elements(rows / 2));
    g.bench_function("sequential_get_next", |b| {
        b.iter(|| {
            let mut it = idx.iter();
            let mut n = 0u64;
            let mut cur = it.get_first_row_pos(0).unwrap();
            while let Some(p) = cur {
                n += p & 1;
                cur = it.get_next_row_pos().unwrap();
            }
            std::hint::black_box(n);
        })
    });
    g.finish();
}

/// SWAR vs decode: equality scans at 8 bits (word-aligned fast path) and
/// 12 bits (generic decode) over the same logical data.
fn bench_swar_vs_decode(c: &mut Criterion) {
    let symbols = 1 << 21;
    let mut g = c.benchmark_group("ablation/swar_vs_decode");
    g.throughput(Throughput::Elements(symbols as u64));
    for bits in [8u32, 12] {
        let w = BitWidth::new(bits).unwrap();
        let values: Vec<u64> = (0..symbols as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & w.mask())
            .collect();
        let vec = BitPackedVec::from_values_with_width(&values, w);
        let set = VidSet::Single(values[symbols / 3]);
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                search_bitmap(&vec, 0, vec.len(), &set, &mut out);
                std::hint::black_box(&out);
            })
        });
    }
    g.finish();
}

/// Warm point reads: the steady-state CPU overhead of paged access (pins,
/// transient lookups, block walks) relative to the resident image.
fn bench_warm_point_reads(c: &mut Criterion) {
    let pool = pool();
    let values: Vec<Value> =
        (0..200_000i64).map(|i| Value::Varchar(format!("v-{:06}", i % 50_000))).collect();
    let paged = ColumnBuilder::new(DataType::Varchar)
        .policy(LoadPolicy::PageLoadable)
        .with_index(true)
        .build(&pool, &config(), &values)
        .unwrap()
        .column;
    let resident = ColumnBuilder::new(DataType::Varchar)
        .policy(LoadPolicy::FullyResident)
        .with_index(true)
        .build(&pool, &config(), &values)
        .unwrap()
        .column;
    // Warm both.
    for rpos in (0..200_000).step_by(37) {
        let _ = paged.get_value(rpos).unwrap();
        let _ = resident.get_value(rpos).unwrap();
    }
    let probe = ValuePredicate::Eq(Value::Varchar("v-012345".into()));
    let mut g = c.benchmark_group("ablation/warm_point_read");
    for (name, col) in [("resident", &resident), ("paged", &paged)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let mut rpos = 1u64;
            b.iter(|| {
                rpos = (rpos * 48271) % 200_000;
                std::hint::black_box(col.get_value(rpos).unwrap());
                std::hint::black_box(col.find_rows(&probe, 0, 200_000).unwrap());
            })
        });
    }
    g.finish();
}

/// Delta merge throughput: rows/s for rebuilding a whole main fragment
/// (sorted dictionary + data vector + inverted index + page chains).
fn bench_delta_merge(c: &mut Criterion) {
    use payg_table::{PartitionSpec, Schema, ColumnSpec as TCol};
    let mut g = c.benchmark_group("ablation/delta_merge");
    for rows in [10_000u64, 50_000] {
        g.throughput(Throughput::Elements(rows));
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                let pool = pool();
                let schema = Schema::new(vec![
                    TCol::indexed("id", DataType::Integer),
                    TCol::new("name", DataType::Varchar),
                    TCol::new("amount", DataType::Decimal),
                ])
                .unwrap();
                let t = payg_table::Table::create(
                    pool,
                    config(),
                    schema,
                    vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
                )
                .unwrap();
                for i in 0..rows as i64 {
                    t.insert(vec![
                        Value::Integer(i),
                        Value::Varchar(format!("n-{:05}", i % 9_000)),
                        Value::Decimal(i as i128),
                    ])
                    .unwrap();
                }
                t.delta_merge_all().unwrap();
                std::hint::black_box(&t);
            })
        });
    }
    g.finish();
}

/// §8 SCM placement: dictionary point lookups with the helper chains on a
/// fast (SCM-like, 1µs) tier vs everything on the slow (100µs) tier. The
/// paper proposes exactly this placement for the rebuildable sparse
/// structures.
fn bench_scm_helper_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/scm_helper_placement");
    g.sample_size(10);
    for fast_helpers in [false, true] {
        let store = Arc::new(TieredStore::new(
            MemStore::new(),
            Duration::from_micros(1),
            Duration::from_micros(100),
        ));
        let resman = ResourceManager::new();
        resman.set_paged_limits(Some(payg_resman::PoolLimits::new(0, usize::MAX)));
        let pool = BufferPool::new(store.clone() as Arc<dyn PageStore>, resman.clone());
        let keys: Vec<Vec<u8>> =
            (0..60_000u64).map(|i| format!("part-{i:08}").into_bytes()).collect();
        let (dict, _) = PagedDictionary::build(&pool, &config(), &keys).unwrap();
        if fast_helpers {
            // Helper chains were created after overflow+dict chains; find
            // them by placing the two smallest non-dict chains... simplest:
            // place every chain on fast except the largest (the dictionary).
            let chains = store.chains();
            let largest = chains
                .iter()
                .copied()
                .max_by_key(|&c| store.chain_len(c).unwrap())
                .unwrap();
            for c in chains {
                if c != largest {
                    store.place_on_fast_tier(c);
                }
            }
        }
        let name = if fast_helpers { "helpers_on_scm" } else { "all_on_slow" };
        g.bench_with_input(BenchmarkId::from_parameter(name), &fast_helpers, |b, _| {
            let mut probe = 1u64;
            b.iter(|| {
                // Evict everything so each lookup pays the tier latency.
                let _ = resman.reactive_unload();
                let mut it = dict.iter();
                probe = (probe * 48271) % 60_000;
                let _ = std::hint::black_box(it.find(&keys[probe as usize]).unwrap());
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_dict_handle_cache, bench_summary_pruning, bench_index_chunk_cache,
              bench_swar_vs_decode, bench_warm_point_reads, bench_delta_merge,
              bench_scm_helper_placement
}
criterion_main!(benches);
