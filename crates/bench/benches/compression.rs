//! `ablation/compression` — compressed-domain paging vs the plain format-1
//! layout: FSST dictionary blocks and partitioned Elias-Fano postings.
//!
//! Four measurements, each against the same data built twice (compressed
//! codecs on vs `dict_fsst: false, pef_postings: false`):
//!
//! * **dict bytes** — dictionary + overflow chain bytes for a string-heavy
//!   sorted key set. Target: FSST side ≤ 70% of plain (≥30% reduction).
//! * **pef bytes** — inverted-index chain bytes on clustered row positions
//!   (each vid's postings form dense runs). Target: ≤ plain bit-packed.
//! * **cold scan** — full posting drain + dictionary materialization with
//!   every page cold behind a synthetic per-read latency (data ≫ pool: the
//!   pool is cleared before each run, so page *count* is the cost). Target:
//!   compressed ≥ 1.3× faster, because fewer pages exist to load.
//! * **compressed domain** — warm eq/IN/range probes on the PEF index:
//!   the dispatch seam's `CompressedDomain` traversal (`next_row_pos_geq`
//!   leapfrog, early stop at the window end) vs its `DecodeThenScan`
//!   branch (full drain, filter). Target: ≥ 1.0× on every shape.
//!
//! Emits `BENCH_compression.json` at the workspace root and **exits
//! non-zero** when any target is missed. `PAYG_SMOKE=1` runs reduced
//! sizes, writes under `target/`, and only asserts the metrics exist.

use payg_core::dict::PagedDictionary;
use payg_core::invidx::PagedInvertedIndex;
use payg_core::{
    ColumnBuilder, DataType, LoadPolicy, PageConfig, ScanPath, Value, ValuePredicate,
};
use payg_encoding::dispatch::CodecKind;
use payg_obs::names;
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, LatencyStore, MemStore, PageStore};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DICT_RATIO_TARGET: f64 = 0.70; // fsst chain bytes / plain chain bytes
const PEF_RATIO_TARGET: f64 = 1.0; // pef chain bytes / bit-packed chain bytes
const COLD_SPEEDUP_TARGET: f64 = 1.3;
const DOMAIN_FLOOR: f64 = 1.0;
const COLD_LATENCY_US: u64 = 100;

struct BenchParams {
    smoke: bool,
    keys: u64,
    rows: u64,
    cardinality: u64,
    run_len: u64,
    iters: usize,
    probe_iters: usize,
}

impl BenchParams {
    fn from_env() -> Self {
        let smoke = std::env::var_os("PAYG_SMOKE").is_some_and(|v| v != "0");
        if smoke {
            BenchParams {
                smoke,
                keys: 3_000,
                rows: 30_000,
                cardinality: 200,
                run_len: 30,
                iters: 1,
                probe_iters: 3,
            }
        } else {
            BenchParams {
                smoke,
                keys: 60_000,
                rows: 400_000,
                cardinality: 1_000,
                run_len: 100,
                iters: 3,
                probe_iters: 9,
            }
        }
    }
}

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// Sorted, distinct, string-heavy keys with the repeated substructure real
/// string dictionaries have (URLs, SKUs): front coding strips the shared
/// prefix between neighbours, FSST compresses the templated remainder.
fn string_keys(n: u64) -> Vec<Vec<u8>> {
    const SEGMENTS: [&str; 6] = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
    let mut keys: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            format!(
                "https://warehouse-{:02}.example.com/catalog/item-{:08}/variant-{}/details.html",
                i % 40,
                i,
                SEGMENTS[(i % 6) as usize]
            )
            .into_bytes()
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Row values where each vid's postings are dense runs — the clustered
/// layout partitioned Elias-Fano is built for.
fn clustered_values(rows: u64, cardinality: u64, run_len: u64) -> Vec<u64> {
    (0..rows).map(|i| (i / run_len) % cardinality).collect()
}

fn mem_pool() -> BufferPool {
    BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
}

fn config(compressed: bool) -> PageConfig {
    PageConfig {
        dict_fsst: compressed,
        pef_postings: compressed,
        ..PageConfig::default()
    }
}

/// Dictionary + overflow chain bytes (what `pool_page_bytes` accounts for
/// the value chains) for one codec side.
fn dict_chain_bytes(keys: &[Vec<u8>], compressed: bool) -> (u64, CodecKind, u64) {
    let pool = mem_pool();
    let cfg = config(compressed);
    let (dict, stats) = PagedDictionary::build(&pool, &cfg, keys).unwrap();
    let bytes = stats.dict_pages * cfg.dict_page as u64
        + stats.overflow_pages * cfg.overflow_page as u64;
    let per_mille = pool
        .registry()
        .gauge_labeled(names::DICT_FSST_RATIO, &[("pool", pool.metrics_label())])
        .get();
    (bytes, dict.codec_kind(), per_mille)
}

/// Inverted-index chain bytes for one codec side, plus the built index and
/// its pool for reuse in the probe measurements.
fn index_chain_bytes(
    values: &[u64],
    cardinality: u64,
    compressed: bool,
) -> (u64, PagedInvertedIndex, BufferPool) {
    let pool = mem_pool();
    let cfg = config(compressed);
    let index = PagedInvertedIndex::build(&pool, &cfg, values, cardinality).unwrap();
    let bytes = index.pages() * cfg.index_page as u64;
    (bytes, index, pool)
}

/// One cold-side fixture: dictionary + index behind a latency store.
struct ColdSide {
    pool: BufferPool,
    dict: PagedDictionary,
    index: PagedInvertedIndex,
}

impl ColdSide {
    fn build(keys: &[Vec<u8>], values: &[u64], cardinality: u64, compressed: bool) -> Self {
        let store: Arc<dyn PageStore> = Arc::new(LatencyStore::new(
            MemStore::new(),
            Duration::from_micros(COLD_LATENCY_US),
        ));
        let pool = BufferPool::new(store, ResourceManager::new());
        let cfg = config(compressed);
        let (dict, _) = PagedDictionary::build(&pool, &cfg, keys).unwrap();
        let index = PagedInvertedIndex::build(&pool, &cfg, values, cardinality).unwrap();
        ColdSide { pool, dict, index }
    }

    /// Median time to read the compressed structures end to end with every
    /// page cold: drain all postings, then materialize every dictionary
    /// value. Returns (median ns, pool loads across all iters, checksum).
    fn measure(&self, cardinality: u64, iters: usize) -> (u128, u64, u64) {
        let before = self.pool.metrics();
        let mut ns = Vec::with_capacity(iters);
        let mut check = 0u64;
        for _ in 0..iters {
            self.pool.clear();
            let t0 = Instant::now();
            let mut sum = 0u64;
            let mut it = self.index.iter();
            for vid in 0..cardinality {
                let mut cur = it.get_first_row_pos(vid).unwrap();
                while let Some(rpos) = cur {
                    sum = sum.wrapping_add(rpos);
                    cur = it.get_next_row_pos().unwrap();
                }
            }
            for key in self.dict.materialize_all_direct().unwrap() {
                sum = sum.wrapping_add(key.len() as u64);
            }
            ns.push(t0.elapsed().as_nanos());
            check = sum;
        }
        let loads = self.pool.metrics().delta(&before).loads;
        (median(ns), loads, check)
    }
}

/// Warm probe timing on one PEF index: the dispatch seam's two traversal
/// branches over the same vids and row window. Returns
/// (decode_then_scan_ns, compressed_domain_ns, match count).
fn probe_paths(
    index: &PagedInvertedIndex,
    vids: &[u64],
    window: (u64, u64),
    iters: usize,
) -> (u128, u128, u64) {
    let (from, to) = window;
    let mut dts_ns = Vec::with_capacity(iters);
    let mut cd_ns = Vec::with_capacity(iters);
    let mut dts_count = 0u64;
    let mut cd_count = 0u64;
    for _ in 0..iters {
        let mut it = index.iter();
        let t0 = Instant::now();
        let mut n = 0u64;
        for &vid in vids {
            let mut cur = it.get_first_row_pos(vid).unwrap();
            while let Some(rpos) = cur {
                if rpos >= from && rpos < to {
                    n += 1;
                }
                cur = it.get_next_row_pos().unwrap();
            }
        }
        dts_ns.push(t0.elapsed().as_nanos());
        dts_count = n;

        let t0 = Instant::now();
        let mut n = 0u64;
        for &vid in vids {
            let mut cur = it.next_row_pos_geq(vid, from).unwrap();
            while let Some(rpos) = cur {
                if rpos >= to {
                    break;
                }
                n += 1;
                cur = it.get_next_row_pos().unwrap();
            }
        }
        cd_ns.push(t0.elapsed().as_nanos());
        cd_count = n;
    }
    assert_eq!(dts_count, cd_count, "traversal branches disagree on match count");
    (median(dts_ns), median(cd_ns), cd_count)
}

/// The seam itself must route these shapes as measured: compressed columns
/// send point/set probes down the compressed-domain branch and range
/// probes down decode-then-scan.
fn assert_dispatch_routes() {
    let pool = mem_pool();
    let values: Vec<Value> =
        (0..600).map(|i| Value::Varchar(format!("sku-{:04}", i % 97))).collect();
    let col = ColumnBuilder::new(DataType::Varchar)
        .policy(LoadPolicy::PageLoadable)
        .with_index(true)
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap()
        .column;
    let eq = ValuePredicate::Eq(Value::Varchar("sku-0007".into()));
    let inset = ValuePredicate::In(vec![
        Value::Varchar("sku-0003".into()),
        Value::Varchar("sku-0011".into()),
    ]);
    let range =
        ValuePredicate::Between(Value::Varchar("sku-0000".into()), Value::Varchar("sku-0020".into()));
    assert_eq!(col.scan_path(&eq), ScanPath::CompressedDomain);
    assert_eq!(col.scan_path(&inset), ScanPath::CompressedDomain);
    assert_eq!(col.scan_path(&range), ScanPath::DecodeThenScan);
}

fn main() {
    let params = BenchParams::from_env();
    println!("=== ablation/compression{} ===", if params.smoke { " (smoke)" } else { "" });
    assert_dispatch_routes();

    let keys = string_keys(params.keys);
    let values = clustered_values(params.rows, params.cardinality, params.run_len);

    // Bytes: dictionary chains.
    let (plain_dict_bytes, plain_dict_codec, _) = dict_chain_bytes(&keys, false);
    let (fsst_dict_bytes, fsst_dict_codec, fsst_per_mille) = dict_chain_bytes(&keys, true);
    assert_eq!(plain_dict_codec, CodecKind::Plain);
    assert_eq!(fsst_dict_codec, CodecKind::Fsst, "fsst must pay on this key set");
    let dict_ratio = fsst_dict_bytes as f64 / plain_dict_bytes.max(1) as f64;
    println!(
        "dict chain bytes: plain {plain_dict_bytes}  fsst {fsst_dict_bytes}  \
         ratio {dict_ratio:.3} (block-level per-mille {fsst_per_mille})"
    );

    // Bytes: posting chains on clustered rows.
    let (plain_idx_bytes, _plain_idx, _plain_pool) =
        index_chain_bytes(&values, params.cardinality, false);
    let (pef_idx_bytes, pef_idx, pef_pool) = index_chain_bytes(&values, params.cardinality, true);
    assert_eq!(pef_idx.codec_kind(), CodecKind::Pef);
    let pef_ratio = pef_idx_bytes as f64 / plain_idx_bytes.max(1) as f64;
    let pef_bits_x100 = pef_pool
        .registry()
        .gauge_labeled(names::PEF_CHUNK_BITS, &[("pool", pef_pool.metrics_label())])
        .get();
    println!(
        "posting chain bytes (clustered): bit-packed {plain_idx_bytes}  pef {pef_idx_bytes}  \
         ratio {pef_ratio:.3} ({:.2} bits/posting)",
        pef_bits_x100 as f64 / 100.0
    );

    // Cold scan: every page behind COLD_LATENCY_US, pool cleared per run.
    let plain_cold = ColdSide::build(&keys, &values, params.cardinality, false);
    let comp_cold = ColdSide::build(&keys, &values, params.cardinality, true);
    let (plain_cold_ns, plain_loads, plain_check) =
        plain_cold.measure(params.cardinality, params.iters);
    let (comp_cold_ns, comp_loads, comp_check) =
        comp_cold.measure(params.cardinality, params.iters);
    assert_eq!(plain_check, comp_check, "cold drains disagree");
    let cold_speedup = plain_cold_ns as f64 / comp_cold_ns.max(1) as f64;
    println!(
        "cold scan at {COLD_LATENCY_US}us/page: plain {:.2}ms ({} loads)  \
         compressed {:.2}ms ({} loads)  speedup {cold_speedup:.2}x",
        plain_cold_ns as f64 / 1e6,
        plain_loads,
        comp_cold_ns as f64 / 1e6,
        comp_loads,
    );

    // Compressed-domain vs decode-then-scan, warm, per probe shape.
    let window = (params.rows / 4, 3 * params.rows / 4);
    let eq_vids = [params.cardinality / 2];
    let in_vids: Vec<u64> = (0..8).map(|k| (k * params.cardinality) / 9).collect();
    let range_vids: Vec<u64> = {
        let n = (params.cardinality / 16).max(2);
        (params.cardinality / 3..params.cardinality / 3 + n).collect()
    };
    let shapes: Vec<(&str, Vec<u64>)> =
        vec![("eq", eq_vids.to_vec()), ("in", in_vids), ("range", range_vids)];
    let mut domain_points = Vec::new();
    for (op, vids) in &shapes {
        let (dts_ns, cd_ns, matches) = probe_paths(&pef_idx, vids, window, params.probe_iters);
        let speedup = dts_ns as f64 / cd_ns.max(1) as f64;
        println!(
            "compressed-domain {op:>5}: decode-then-scan {:>8.1}us  in-place {:>8.1}us  \
             speedup {speedup:.2}x ({matches} matches)",
            dts_ns as f64 / 1e3,
            cd_ns as f64 / 1e3,
        );
        domain_points.push((*op, dts_ns, cd_ns, speedup, matches));
    }
    let domain_floor =
        domain_points.iter().map(|p| p.3).fold(f64::INFINITY, f64::min);

    let dict_met = dict_ratio <= DICT_RATIO_TARGET;
    let pef_met = pef_ratio <= PEF_RATIO_TARGET;
    let cold_met = cold_speedup >= COLD_SPEEDUP_TARGET;
    let domain_met = domain_floor >= DOMAIN_FLOOR;
    let all_met = dict_met && pef_met && cold_met && domain_met;
    println!(
        "targets: dict ratio {dict_ratio:.3} (<= {DICT_RATIO_TARGET}) {}  \
         pef ratio {pef_ratio:.3} (<= {PEF_RATIO_TARGET}) {}  \
         cold {cold_speedup:.2}x (>= {COLD_SPEEDUP_TARGET}) {}  \
         domain floor {domain_floor:.2}x (>= {DOMAIN_FLOOR}) {}",
        if dict_met { "MET" } else { "MISSED" },
        if pef_met { "MET" } else { "MISSED" },
        if cold_met { "MET" } else { "MISSED" },
        if domain_met { "MET" } else { "MISSED" },
    );

    let snap = payg_obs::ObsSnapshot::collect(comp_cold.pool.registry());
    let obs_json_out = payg_bench::obs::obs_json(&snap, None, "  ");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ablation/compression\",");
    let _ = writeln!(json, "  \"keys\": {},", params.keys);
    let _ = writeln!(json, "  \"rows\": {},", params.rows);
    let _ = writeln!(json, "  \"cardinality\": {},", params.cardinality);
    let _ = writeln!(json, "  \"run_len\": {},", params.run_len);
    let _ = writeln!(json, "  \"iters\": {},", params.iters);
    let _ = writeln!(
        json,
        "  \"baseline\": \"plain codecs — front-coded dictionary blocks, bit-packed postings\","
    );
    let _ = writeln!(
        json,
        "  \"dict\": {{\"plain_bytes\": {plain_dict_bytes}, \"fsst_bytes\": {fsst_dict_bytes}, \
         \"ratio\": {dict_ratio:.4}, \"block_per_mille\": {fsst_per_mille}}},"
    );
    let _ = writeln!(
        json,
        "  \"pef\": {{\"plain_bytes\": {plain_idx_bytes}, \"pef_bytes\": {pef_idx_bytes}, \
         \"ratio\": {pef_ratio:.4}, \"bits_per_posting_x100\": {pef_bits_x100}}},"
    );
    let _ = writeln!(
        json,
        "  \"cold\": {{\"page_latency_us\": {COLD_LATENCY_US}, \"plain_ns\": {plain_cold_ns}, \
         \"compressed_ns\": {comp_cold_ns}, \"speedup\": {cold_speedup:.3}, \
         \"plain_loads\": {plain_loads}, \"compressed_loads\": {comp_loads}}},"
    );
    let _ = writeln!(json, "  \"compressed_domain\": [");
    for (i, (op, dts_ns, cd_ns, speedup, matches)) in domain_points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"op\": \"{op}\", \"decode_then_scan_ns\": {dts_ns}, \
             \"compressed_ns\": {cd_ns}, \"speedup\": {speedup:.3}, \"matches\": {matches}}}{}",
            if i + 1 < domain_points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"targets\": {{");
    let _ = writeln!(
        json,
        "    \"dict_bytes_ratio\": {{\"value\": {dict_ratio:.4}, \"target\": {DICT_RATIO_TARGET}, \"met\": {dict_met}}},"
    );
    let _ = writeln!(
        json,
        "    \"pef_bytes_ratio\": {{\"value\": {pef_ratio:.4}, \"target\": {PEF_RATIO_TARGET}, \"met\": {pef_met}}},"
    );
    let _ = writeln!(
        json,
        "    \"cold_speedup\": {{\"value\": {cold_speedup:.3}, \"target\": {COLD_SPEEDUP_TARGET}, \"met\": {cold_met}}},"
    );
    let _ = writeln!(
        json,
        "    \"compressed_domain_floor\": {{\"value\": {domain_floor:.3}, \"target\": {DOMAIN_FLOOR}, \"met\": {domain_met}}}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"obs\": {obs_json_out},");
    let _ = writeln!(json, "  \"all_met\": {all_met}");
    json.push_str("}\n");

    let path = if params.smoke {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("BENCH_compression_smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_compression.json")
    };
    std::fs::write(&path, &json).unwrap();
    println!("wrote {}", path.display());

    if params.smoke {
        // Smoke acceptance: both codecs built, both sides measured, the
        // traversal branches agreed — the ratios themselves are noisy at
        // smoke sizes.
        assert!(fsst_dict_bytes > 0 && pef_idx_bytes > 0, "smoke produced no chain bytes");
        assert!(plain_loads > 0 && comp_loads > 0, "smoke cold runs loaded no pages");
        println!("smoke: codec chains built and measured");
        return;
    }
    if !all_met {
        eprintln!(
            "COMPRESSION TARGET MISSED: dict ratio {dict_ratio:.3} (met {dict_met})  \
             pef ratio {pef_ratio:.3} (met {pef_met})  cold {cold_speedup:.2}x (met {cold_met})  \
             domain floor {domain_floor:.2}x (met {domain_met})"
        );
        std::process::exit(1);
    }
}
