//! `ablation/cold_io` — the batched asynchronous cold-path I/O stage vs
//! the stage-less pool, across synthetic page latencies.
//!
//! Both sides run the same 4-worker parallel scan over the same data; only
//! the cold path differs:
//!
//! * **baseline**: `PoolConfig { io_stage: None }` — demand misses load
//!   inline (one store read per miss, single-flight waiters block on the
//!   loader), and each scan worker runs the legacy one-page read-ahead
//!   slot. This is the pre-stage cold path.
//! * **staged**: the default pool — misses submit fetch requests to the
//!   coalescing I/O stage, scan workers keep an adaptive prefetch window
//!   (`StagedReadAhead`) ahead of their cursor, and adjacent page numbers
//!   ride one ranged `read_pages` call.
//!
//! For each latency the report carries the cold scan time on both sides,
//! the `load_waits` conversion (single-flight waits turned into useful
//! overlap), and the stage's coalescing ratio
//! (`io_completions / io_physical_reads`, pages per physical read).
//!
//! Emits `BENCH_cold_io.json` at the workspace root and **exits non-zero**
//! when an acceptance target at 150 µs is missed: staged `load_waits` must
//! be ≤ half the baseline's, the staged cold scan ≥ 1.3× faster, and the
//! coalescing ratio > 1.
//!
//! `PAYG_SMOKE=1` runs a small-row smoke: same series, reduced sizes, JSON
//! under `target/` (the checked-in numbers are never overwritten), and the
//! only assertion is that the metrics are produced.

use payg_core::datavec::PagedDataVector;
use payg_core::{PageConfig, ScanOptions};
use payg_encoding::{BitPackedVec, VidSet};
use payg_resman::ResourceManager;
use payg_storage::{
    BufferPool, LatencyStore, MemStore, PageStore, PoolConfig, PoolMetrics,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CARDINALITY: u64 = 1000;
const WORKERS: usize = 4;
const LATENCIES_US: &[u64] = &[0, 150, 1000];
/// The latency point the acceptance targets are defined at.
const TARGET_US: u64 = 150;
const WAITS_TARGET: f64 = 0.5; // staged load_waits <= 50% of baseline
const SPEEDUP_TARGET: f64 = 1.3;
const COALESCE_TARGET: f64 = 1.0; // ratio must exceed this

struct BenchParams {
    smoke: bool,
    rows: u64,
    iters: usize,
}

impl BenchParams {
    fn from_env() -> Self {
        let smoke = std::env::var_os("PAYG_SMOKE").is_some_and(|v| v != "0");
        if smoke {
            BenchParams { smoke, rows: 20_000, iters: 1 }
        } else {
            BenchParams { smoke, rows: 400_000, iters: 3 }
        }
    }
}

fn values(rows: u64) -> Vec<u64> {
    (0..rows)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i >> 7) % CARDINALITY)
        .collect()
}

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// One pool (+ its own chain of the same data) under one cold-path config.
struct Side {
    pool: BufferPool,
    paged: PagedDataVector,
}

impl Side {
    fn build(packed: &BitPackedVec, latency: Duration, io_stage: bool) -> Self {
        let store: Arc<dyn PageStore> = Arc::new(LatencyStore::new(MemStore::new(), latency));
        let config = PoolConfig::default();
        let config = if io_stage { config } else { PoolConfig { io_stage: None, ..config } };
        let pool = BufferPool::with_config(store, ResourceManager::new(), config);
        let page_config = PageConfig {
            datavec_page: 4096,
            dict_page: 4096,
            overflow_page: 4096,
            helper_page: 4096,
            index_page: 4096,
            inline_limit: 128,
            ..PageConfig::default()
        };
        let paged = PagedDataVector::build(&pool, &page_config, packed).unwrap();
        Side { pool, paged }
    }

    /// Median cold-scan time over `iters` runs (pool cleared before each),
    /// plus the pool-metrics delta across all of them and the match count.
    fn measure(&self, rows: u64, set: &VidSet, iters: usize) -> (u128, PoolMetrics, usize) {
        let before = self.pool.metrics();
        let mut ns = Vec::with_capacity(iters);
        let mut matches = None;
        for _ in 0..iters {
            self.pool.clear();
            let t0 = Instant::now();
            let n = self
                .paged
                .par_search(0, rows, set, ScanOptions::with_workers(WORKERS))
                .unwrap()
                .len();
            ns.push(t0.elapsed().as_nanos());
            match matches {
                None => matches = Some(n),
                Some(e) => assert_eq!(n, e, "cold scans disagree on the match count"),
            }
        }
        let delta = self.pool.metrics().delta(&before);
        (median(ns), delta, matches.unwrap())
    }
}

struct CasePoint {
    us: u64,
    baseline_ns: u128,
    staged_ns: u128,
    baseline: PoolMetrics,
    staged: PoolMetrics,
}

impl CasePoint {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.staged_ns.max(1) as f64
    }

    fn coalescing_ratio(&self) -> f64 {
        self.staged.io_completions as f64 / self.staged.io_physical_reads.max(1) as f64
    }
}

fn main() {
    let params = BenchParams::from_env();
    let rows = params.rows;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let packed = BitPackedVec::from_values(&values(rows));
    // 20% of the domain, pseudo-random per page: nothing prunes, every page
    // is read cold — the workload the cold path exists for.
    let set = VidSet::range(CARDINALITY / 10, 3 * CARDINALITY / 10 - 1);

    println!("=== ablation/cold_io{} ===", if params.smoke { " (smoke)" } else { "" });
    let mut points: Vec<CasePoint> = Vec::new();
    let mut pages = 0;
    let mut obs_json_out = String::new();
    for &us in LATENCIES_US {
        let latency = Duration::from_micros(us);
        let baseline = Side::build(&packed, latency, false);
        let staged = Side::build(&packed, latency, true);
        assert!(!baseline.pool.io_stage_active() && staged.pool.io_stage_active());
        pages = staged.paged.pages();
        let (baseline_ns, base_m, base_n) = baseline.measure(rows, &set, params.iters);
        let (staged_ns, staged_m, staged_n) = staged.measure(rows, &set, params.iters);
        assert_eq!(base_n, staged_n, "pools disagree on the match count at {us}us");
        let p = CasePoint { us, baseline_ns, staged_ns, baseline: base_m, staged: staged_m };
        println!(
            "{us:>5}us: baseline {:>8.2}ms  staged {:>8.2}ms  speedup {:>5.2}x  \
             waits {:>4} -> {:>4}  coalescing {:.2} pages/read ({} reads for {} completions)",
            p.baseline_ns as f64 / 1e6,
            p.staged_ns as f64 / 1e6,
            p.speedup(),
            p.baseline.load_waits,
            p.staged.load_waits,
            p.coalescing_ratio(),
            p.staged.io_physical_reads,
            p.staged.io_completions,
        );
        if us == TARGET_US {
            // The registry snapshot of the staged pool at the target point
            // rides along in the report.
            let snap = payg_obs::ObsSnapshot::collect(staged.pool.registry());
            obs_json_out = payg_bench::obs::obs_json(&snap, None, "  ");
        }
    // The stage's worker threads are joined when the pool drops at the
    // end of this scope; nothing leaks across latency points.
        points.push(p);
    }

    let target = points.iter().find(|p| p.us == TARGET_US).expect("target latency measured");
    let waits_ratio = if target.baseline.load_waits == 0 {
        // No baseline waits to convert: vacuously met only if the staged
        // side has none either.
        if target.staged.load_waits == 0 { 0.0 } else { 1.0 }
    } else {
        target.staged.load_waits as f64 / target.baseline.load_waits as f64
    };
    let waits_met = waits_ratio <= WAITS_TARGET;
    let speedup_met = target.speedup() >= SPEEDUP_TARGET;
    let coalesce_met = target.coalescing_ratio() > COALESCE_TARGET;
    let all_met = waits_met && speedup_met && coalesce_met;
    println!(
        "target load_waits at {TARGET_US}us: {} -> {} ({:.0}% of baseline, target <= {:.0}%) {}",
        target.baseline.load_waits,
        target.staged.load_waits,
        waits_ratio * 100.0,
        WAITS_TARGET * 100.0,
        if waits_met { "MET" } else { "MISSED" }
    );
    println!(
        "target cold speedup at {TARGET_US}us: {:.2}x (target >= {SPEEDUP_TARGET}x) {}",
        target.speedup(),
        if speedup_met { "MET" } else { "MISSED" }
    );
    println!(
        "target coalescing ratio at {TARGET_US}us: {:.2} (target > {COALESCE_TARGET}) {}",
        target.coalescing_ratio(),
        if coalesce_met { "MET" } else { "MISSED" }
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ablation/cold_io\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"pages\": {pages},");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"iters\": {},", params.iters);
    let _ = writeln!(
        json,
        "  \"baseline\": \"io_stage: None — inline demand loads + one-page legacy read-ahead\","
    );
    let _ = writeln!(json, "  \"series\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"page_latency_us\": {}, \"baseline_ns\": {}, \"staged_ns\": {}, \
             \"speedup\": {:.3}, \"baseline_loads\": {}, \"staged_loads\": {}, \
             \"baseline_load_waits\": {}, \"staged_load_waits\": {}, \
             \"io_submitted\": {}, \"io_coalesced\": {}, \"io_completions\": {}, \
             \"io_physical_reads\": {}, \"coalescing_ratio\": {:.3}}}{}",
            p.us,
            p.baseline_ns,
            p.staged_ns,
            p.speedup(),
            p.baseline.loads,
            p.staged.loads,
            p.baseline.load_waits,
            p.staged.load_waits,
            p.staged.io_submitted,
            p.staged.io_coalesced,
            p.staged.io_completions,
            p.staged.io_physical_reads,
            p.coalescing_ratio(),
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"targets\": {{");
    let _ = writeln!(
        json,
        "    \"load_waits_ratio\": {{\"value\": {waits_ratio:.3}, \"target\": {WAITS_TARGET}, \"met\": {waits_met}}},"
    );
    let _ = writeln!(
        json,
        "    \"cold_speedup\": {{\"value\": {:.3}, \"target\": {SPEEDUP_TARGET}, \"met\": {speedup_met}}},",
        target.speedup()
    );
    let _ = writeln!(
        json,
        "    \"coalescing_ratio\": {{\"value\": {:.3}, \"target\": {COALESCE_TARGET}, \"met\": {coalesce_met}}}",
        target.coalescing_ratio()
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"obs\": {obs_json_out},");
    let _ = writeln!(json, "  \"all_met\": {all_met}");
    json.push_str("}\n");

    // CARGO_MANIFEST_DIR of payg-bench is <workspace>/crates/bench. Smoke
    // runs write under target/ so the checked-in numbers are preserved.
    let path = if params.smoke {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("BENCH_cold_io_smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_cold_io.json")
    };
    std::fs::write(&path, &json).unwrap();
    println!("wrote {}", path.display());

    if params.smoke {
        // Smoke acceptance: the stage actually ran and produced its
        // metrics (small sizes make the ratios themselves noisy).
        assert!(
            target.staged.io_submitted > 0 && target.staged.io_completions > 0,
            "smoke run produced no stage metrics"
        );
        println!(
            "smoke: stage metrics produced ({} submitted, {:.2} pages/read)",
            target.staged.io_submitted,
            target.coalescing_ratio()
        );
        return;
    }
    if !all_met {
        eprintln!(
            "COLD I/O TARGET MISSED: waits ratio {waits_ratio:.2} (target <= {WAITS_TARGET}, met {waits_met})  \
             speedup {:.2}x (target >= {SPEEDUP_TARGET}, met {speedup_met})  \
             coalescing {:.2} (target > {COALESCE_TARGET}, met {coalesce_met})",
            target.speedup(),
            target.coalescing_ratio()
        );
        std::process::exit(1);
    }
}
