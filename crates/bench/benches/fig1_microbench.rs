//! Criterion micro benchmark behind Fig. 1: `mget` and `search` throughput
//! on n-bit packed vectors for varying n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use payg_encoding::scan::{search, search_bitmap};
use payg_encoding::{BitPackedVec, BitWidth, VidSet};

const SYMBOLS: usize = 1 << 20;

fn vector(bits: u32) -> (BitPackedVec, u64) {
    let w = BitWidth::new(bits).unwrap();
    let values: Vec<u64> = (0..SYMBOLS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13) & w.mask())
        .collect();
    let probe = values[SYMBOLS / 2];
    (BitPackedVec::from_values_with_width(&values, w), probe)
}

fn bench_mget(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/mget");
    g.throughput(Throughput::Elements(SYMBOLS as u64));
    for bits in [1u32, 2, 4, 8, 12, 16, 24, 32] {
        let (vec, _) = vector(bits);
        let mut out = Vec::with_capacity(SYMBOLS);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                vec.mget(0, vec.len(), &mut out);
                std::hint::black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/search");
    g.throughput(Throughput::Elements(SYMBOLS as u64));
    for bits in [1u32, 2, 4, 8, 12, 16, 24, 32] {
        let (vec, probe) = vector(bits);
        let set = VidSet::Single(probe);
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                out.clear();
                search(&vec, 0, vec.len(), &set, &mut out);
                std::hint::black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_search_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/search_bitmap");
    g.throughput(Throughput::Elements(SYMBOLS as u64));
    for bits in [1u32, 2, 4, 8, 12, 16, 24, 32] {
        let (vec, probe) = vector(bits);
        let set = VidSet::Single(probe);
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                search_bitmap(&vec, 0, vec.len(), &set, &mut out);
                std::hint::black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mget, bench_search, bench_search_bitmap
}
criterion_main!(benches);
