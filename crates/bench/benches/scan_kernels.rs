//! `scan_kernels` — bit-width-specialized kernels vs the one-generic-kernel
//! baseline, across bit widths, predicate shapes, and selectivities.
//!
//! Both sides compute identical per-chunk result bitmaps over the same
//! packed words; only the kernel differs:
//!
//! * **generic**: [`payg_encoding::kernels::chunk_bitmap_generic`] — one
//!   runtime-width kernel (decode every chunk with runtime shifts, then a
//!   branchless membership test). This is the MorphStore-style "single
//!   generic operator" comparator.
//! * **specialized**: [`payg_encoding::KernelPredicate`] — the const-generic
//!   width-dispatched kernels (SWAR equality without decoding on aligned
//!   widths, fully unrolled constant-shift decode elsewhere), called once
//!   per whole word run.
//!
//! Emits `BENCH_scan_kernels.json` at the workspace root and exits non-zero
//! if any required equality target (specialized ≥ 2× generic at
//! n ∈ {1, 4, 8, 17}) is missed, or if the no-regression floor is: the
//! specialized kernel must be ≥ 1.0× the generic one at *every*
//! (bits, op) point — specialization may never lose to the baseline.

use payg_core::datavec::PagedDataVector;
use payg_core::{PageConfig, ScanOptions};
use payg_encoding::kernels::{chunk_bitmap_generic, KernelPredicate};
use payg_encoding::{BitPackedVec, BitWidth, VidSet};
use payg_obs::ObsSnapshot;
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const ROWS: u64 = 1 << 19; // 8192 chunks
const ITERS: usize = 9;
const WIDTHS: &[u32] = &[1, 2, 4, 8, 10, 16, 17, 24, 32];
/// Widths the ≥ 2× equality acceptance target applies to.
const REQUIRED_EQ: &[u32] = &[1, 4, 8, 17];
const EQ_TARGET: f64 = 2.0;
/// Every (bits, op) point must clear this: specialization never loses.
const FLOOR: f64 = 1.0;

fn sample_vec(bits: u32) -> BitPackedVec {
    let w = BitWidth::new(bits).unwrap();
    let values: Vec<u64> = (0..ROWS)
        .map(|i| {
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i >> 9)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                & w.mask()
        })
        .collect();
    BitPackedVec::from_values_with_width(&values, w)
}

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// One predicate shape at one width: a label, the set, and the fraction of
/// the value domain it covers (reported as `selectivity` — values are
/// near-uniform, so domain fraction ≈ row selectivity).
struct Case {
    op: &'static str,
    selectivity: f64,
    set: VidSet,
}

fn cases(w: BitWidth) -> Vec<Case> {
    let max = w.max_value();
    let domain = max as f64 + 1.0;
    let mut cases = vec![Case { op: "eq", selectivity: 1.0 / domain, set: VidSet::Single(max / 2) }];
    for (label, frac) in [("range_1pct", 0.01), ("range_10pct", 0.10), ("range_50pct", 0.50)] {
        let span = ((domain * frac) as u64).max(1).min(max);
        // Skip shapes the width cannot express distinctly (tiny domains).
        if span < max || max <= 1 {
            cases.push(Case {
                op: label,
                selectivity: (span + 1) as f64 / domain,
                set: VidSet::range(max / 4, (max / 4 + span).min(max)),
            });
        }
    }
    if max >= 16 {
        let vids: Vec<u64> = (0..8u64).map(|k| (k * 2 + 1) * max / 17).collect();
        let n = vids.len() as f64;
        cases.push(Case { op: "in_set8", selectivity: n / domain, set: VidSet::from_vids(vids) });
    }
    cases
}

/// Median ns for one kernel over the whole vector; `sink` defeats DCE.
fn time_kernel(iters: usize, mut run: impl FnMut() -> u64, sink: &mut u64) -> u128 {
    let mut ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        *sink ^= run();
        ns.push(t0.elapsed().as_nanos());
    }
    median(ns)
}

struct Row {
    bits: u32,
    op: &'static str,
    selectivity: f64,
    generic_ns: u128,
    specialized_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.generic_ns as f64 / self.specialized_ns.max(1) as f64
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut sink = 0u64;
    for &bits in WIDTHS {
        let w = BitWidth::new(bits).unwrap();
        let vec = sample_vec(bits);
        let chunks = vec.chunk_count();
        let wpc = bits as usize;
        let words = vec.words();
        for case in cases(w) {
            let set = &case.set;
            // Generic: one runtime-width chunk kernel per chunk.
            let generic = || {
                let mut acc = 0u64;
                for ci in 0..chunks {
                    let chunk = &words[ci as usize * wpc..(ci as usize + 1) * wpc];
                    acc = acc.wrapping_add(u64::from(
                        chunk_bitmap_generic(chunk, w, set).count_ones(),
                    ));
                }
                acc
            };
            // Specialized: compile once, one fused call over the word run.
            let mut bitmaps: Vec<u64> = Vec::with_capacity(chunks as usize);
            let pred = KernelPredicate::new(w, set);
            let mut specialized = || {
                bitmaps.clear();
                pred.scan_chunks(words, &mut bitmaps);
                bitmaps.iter().map(|b| u64::from(b.count_ones())).sum()
            };
            // Equal results are a precondition for comparing their times.
            assert_eq!(generic(), specialized(), "kernels disagree at {bits} bits ({})", case.op);
            let generic_ns = time_kernel(ITERS, generic, &mut sink);
            let specialized_ns = time_kernel(ITERS, &mut specialized, &mut sink);
            rows.push(Row {
                bits,
                op: case.op,
                selectivity: case.selectivity,
                generic_ns,
                specialized_ns,
            });
        }
    }

    println!("=== scan_kernels ({ROWS} rows, median of {ITERS}) ===");
    println!("{:>5} {:>12} {:>12} {:>12} {:>12} {:>9}", "bits", "op", "sel", "generic", "special", "speedup");
    for r in &rows {
        println!(
            "{:>5} {:>12} {:>12.4} {:>10}us {:>10}us {:>8.2}x",
            r.bits,
            r.op,
            r.selectivity,
            r.generic_ns / 1000,
            r.specialized_ns / 1000,
            r.speedup()
        );
    }

    // Acceptance: specialized ≥ 2× generic on equality at the required widths.
    let mut all_met = true;
    let mut summary: Vec<(u32, f64, bool)> = Vec::new();
    for &bits in REQUIRED_EQ {
        let r = rows
            .iter()
            .find(|r| r.bits == bits && r.op == "eq")
            .expect("required width measured");
        let met = r.speedup() >= EQ_TARGET;
        all_met &= met;
        summary.push((bits, r.speedup(), met));
        println!(
            "target eq n={bits}: {:.2}x (target >= {EQ_TARGET}x) {}",
            r.speedup(),
            if met { "MET" } else { "MISSED" }
        );
    }

    // No-regression floor over every measured point: a specialized kernel
    // slower than the generic baseline is a dispatch bug, not noise.
    let mut floor_met = true;
    for r in &rows {
        if r.speedup() < FLOOR {
            floor_met = false;
            println!(
                "floor n={} op={}: {:.2}x (floor >= {FLOOR}x) MISSED",
                r.bits,
                r.op,
                r.speedup()
            );
        }
    }
    println!("floor >= {FLOOR}x at every (bits, op) point: {}", if floor_met { "MET" } else { "MISSED" });
    all_met &= floor_met;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"scan_kernels\",");
    let _ = writeln!(json, "  \"rows\": {ROWS},");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"baseline\": \"chunk_bitmap_generic (runtime-width decode + compare)\",");
    let _ = writeln!(json, "  \"series\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"bits\": {}, \"op\": \"{}\", \"selectivity\": {:.6}, \"generic_ns\": {}, \"specialized_ns\": {}, \"speedup\": {:.3}}}{}",
            r.bits,
            r.op,
            r.selectivity,
            r.generic_ns,
            r.specialized_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"eq_targets\": {{");
    for (i, (bits, speedup, met)) in summary.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{bits}\": {{\"speedup\": {speedup:.3}, \"target\": {EQ_TARGET}, \"met\": {met}}}{}",
            if i + 1 < summary.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"floor\": {{\"target\": {FLOOR}, \"met\": {floor_met}}},");

    // A small paged pass through the full stack (pool → guard cache →
    // kernel dispatch) so the report embeds the obs registry's view —
    // hit rate, pin-latency percentiles, per-scan profile — alongside the
    // raw kernel stopwatches above.
    let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
    let paged = PagedDataVector::build(&pool, &PageConfig::default(), &sample_vec(8)).unwrap();
    let cold = paged
        .par_search_profiled(0, ROWS, &VidSet::range(16, 80), ScanOptions::sequential())
        .unwrap();
    let warm = paged
        .par_search_profiled(0, ROWS, &VidSet::range(16, 80), ScanOptions::sequential())
        .unwrap();
    assert_eq!(cold.0.len(), warm.0.len(), "cold and warm profiled scans disagree");
    assert!(warm.1.cold_loads == 0 && warm.1.warm_hits > 0, "second scan must be warm");
    let snap = ObsSnapshot::collect(pool.registry());
    let _ = writeln!(
        json,
        "  \"obs\": {},",
        payg_bench::obs::obs_json(&snap, Some(&warm.1), "  ")
    );
    let _ = writeln!(json, "  \"all_met\": {all_met}");
    json.push_str("}\n");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scan_kernels.json");
    std::fs::write(&path, &json).unwrap();
    println!("wrote {} (sink {sink})", path.display());

    if !all_met {
        eprintln!("KERNEL TARGET MISSED: specialized < {EQ_TARGET}x generic on a required equality width");
        std::process::exit(1);
    }
}
