//! `ablation/parallel_scan` — segmented parallel scans vs the sequential
//! path, cold (LatencyStore-backed, 150 µs/page) and warm (all pages
//! resident). Emits `BENCH_parallel_scan.json` at the workspace root with
//! the measured speedups and the sharded pool's counters.
//!
//! Cold scans are I/O-bound: workers overlap their synthetic page-load
//! sleeps, so the speedup approaches the worker count even on one CPU. Warm
//! scans are CPU-bound: their speedup is capped by the cores actually
//! available (reported as `cpus` in the JSON).

use payg_core::datavec::PagedDataVector;
use payg_core::{PageConfig, ScanOptions};
use payg_encoding::{BitPackedVec, VidSet};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, LatencyStore, MemStore, PageStore, PoolMetrics};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: u64 = 400_000;
const CARDINALITY: u64 = 1000;
const WORKERS: usize = 4;
const PAGE_LATENCY: Duration = Duration::from_micros(150);
const COLD_ITERS: usize = 3;
const WARM_ITERS: usize = 7;

fn values() -> Vec<u64> {
    (0..ROWS)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i >> 7) % CARDINALITY)
        .collect()
}

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

struct Measurement {
    seq_ns: u128,
    par_ns: u128,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.seq_ns as f64 / self.par_ns.max(1) as f64
    }
}

/// Runs `scan` `iters` times for each path, interleaved, `reset` before
/// every run (pool clear for cold, no-op for warm).
fn measure(
    iters: usize,
    mut reset: impl FnMut(),
    mut scan: impl FnMut(ScanOptions) -> usize,
) -> Measurement {
    let seq = ScanOptions::sequential();
    let par = ScanOptions::with_workers(WORKERS);
    let mut seq_ns = Vec::with_capacity(iters);
    let mut par_ns = Vec::with_capacity(iters);
    let mut expect = None;
    for _ in 0..iters {
        for (opts, samples) in [(seq, &mut seq_ns), (par, &mut par_ns)] {
            reset();
            let t0 = Instant::now();
            let n = scan(opts);
            samples.push(t0.elapsed().as_nanos());
            match expect {
                None => expect = Some(n),
                Some(e) => assert_eq!(n, e, "parallel and sequential scans disagree"),
            }
        }
    }
    Measurement { seq_ns: median(seq_ns), par_ns: median(par_ns) }
}

fn metrics_delta(after: PoolMetrics, before: PoolMetrics) -> PoolMetrics {
    PoolMetrics {
        loads: after.loads - before.loads,
        hits: after.hits - before.hits,
        bytes_loaded: after.bytes_loaded - before.bytes_loaded,
        load_waits: after.load_waits - before.load_waits,
        contended: after.contended - before.contended,
        prefetches: after.prefetches - before.prefetches,
    }
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let store: Arc<dyn PageStore> = Arc::new(LatencyStore::new(MemStore::new(), PAGE_LATENCY));
    let pool = BufferPool::new(store, ResourceManager::new());
    let config = PageConfig {
        datavec_page: 4096,
        dict_page: 4096,
        overflow_page: 4096,
        helper_page: 4096,
        index_page: 4096,
        inline_limit: 128,
    };
    let packed = BitPackedVec::from_values(&values());
    let paged = PagedDataVector::build(&pool, &config, &packed).unwrap();
    let set = VidSet::range(0, CARDINALITY - 1); // nothing prunes: every page is read
    let scan = |opts: ScanOptions| paged.par_search(0, ROWS, &set, opts).unwrap().len();

    println!("=== ablation/parallel_scan ===");
    println!(
        "rows {ROWS}  pages {}  workers {WORKERS}  page latency {PAGE_LATENCY:?}  cpus {cpus}",
        paged.pages()
    );

    // Cold: every page load pays the store latency; clear() empties the pool
    // between runs. Workers overlap their loads (plus one read-ahead each).
    let cold_before = pool.metrics();
    let cold = measure(COLD_ITERS, || pool.clear(), scan);
    let cold_metrics = metrics_delta(pool.metrics(), cold_before);

    // Warm: one priming scan leaves every page resident; no loads remain.
    let _ = scan(ScanOptions::sequential());
    let warm_before = pool.metrics();
    let warm = measure(WARM_ITERS, || (), scan);
    let warm_metrics = metrics_delta(pool.metrics(), warm_before);

    let cold_target = 2.0;
    let warm_target = 1.5;
    println!(
        "cold: sequential {:.2}ms  {WORKERS}-worker {:.2}ms  speedup {:.2}x (target >= {cold_target}x)",
        cold.seq_ns as f64 / 1e6,
        cold.par_ns as f64 / 1e6,
        cold.speedup()
    );
    println!(
        "warm: sequential {:.2}ms  {WORKERS}-worker {:.2}ms  speedup {:.2}x (target >= {warm_target}x, cpu-bound: capped by {cpus} cpu(s))",
        warm.seq_ns as f64 / 1e6,
        warm.par_ns as f64 / 1e6,
        warm.speedup()
    );
    println!(
        "cold pool counters: loads {}  hits {}  load waits {}  prefetches {}  shard contention {}",
        cold_metrics.loads,
        cold_metrics.hits,
        cold_metrics.load_waits,
        cold_metrics.prefetches,
        cold_metrics.contended
    );
    println!(
        "warm pool counters: loads {}  hits {}  shard contention {}",
        warm_metrics.loads, warm_metrics.hits, warm_metrics.contended
    );
    let shards = pool.shard_metrics();
    let used = shards.iter().filter(|s| s.hits + s.misses > 0).count();
    println!("shards: {} of {} striped ({:?} hits on the busiest)",
        used,
        shards.len(),
        shards.iter().map(|s| s.hits).max().unwrap_or(0)
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ablation/parallel_scan\",");
    let _ = writeln!(json, "  \"rows\": {ROWS},");
    let _ = writeln!(json, "  \"pages\": {},", paged.pages());
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"page_latency_us\": {},", PAGE_LATENCY.as_micros());
    let _ = writeln!(json, "  \"cold\": {{");
    let _ = writeln!(json, "    \"sequential_ns\": {},", cold.seq_ns);
    let _ = writeln!(json, "    \"parallel_ns\": {},", cold.par_ns);
    let _ = writeln!(json, "    \"speedup\": {:.3},", cold.speedup());
    let _ = writeln!(json, "    \"target\": {cold_target},");
    let _ = writeln!(json, "    \"met\": {},", cold.speedup() >= cold_target);
    let _ = writeln!(json, "    \"loads\": {},", cold_metrics.loads);
    let _ = writeln!(json, "    \"load_waits\": {},", cold_metrics.load_waits);
    let _ = writeln!(json, "    \"prefetches\": {}", cold_metrics.prefetches);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"warm\": {{");
    let _ = writeln!(json, "    \"sequential_ns\": {},", warm.seq_ns);
    let _ = writeln!(json, "    \"parallel_ns\": {},", warm.par_ns);
    let _ = writeln!(json, "    \"speedup\": {:.3},", warm.speedup());
    let _ = writeln!(json, "    \"target\": {warm_target},");
    let _ = writeln!(json, "    \"met\": {},", warm.speedup() >= warm_target);
    let _ = writeln!(json, "    \"loads\": {},", warm_metrics.loads);
    let _ = writeln!(json, "    \"hits\": {}", warm_metrics.hits);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(json, "    \"shards\": {},", shards.len());
    let _ = writeln!(json, "    \"shards_used\": {used},");
    let _ = writeln!(json, "    \"contended\": {}", pool.metrics().contended);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    // CARGO_MANIFEST_DIR of payg-bench is <workspace>/crates/bench.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel_scan.json");
    std::fs::write(&path, &json).unwrap();
    println!("wrote {}", path.display());
}
