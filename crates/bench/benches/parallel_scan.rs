//! `ablation/parallel_scan` — segmented parallel scans vs the sequential
//! path, cold (LatencyStore-backed, 150 µs/page) and warm (all pages
//! resident). Emits `BENCH_parallel_scan.json` at the workspace root with
//! the measured speedups and the sharded pool's counters, and **exits
//! non-zero when a speedup target is missed** — a warm regression is a
//! build failure, not a line in a JSON file nobody reads.
//!
//! Cold scans are I/O-bound: workers overlap their synthetic page-load
//! sleeps, so the speedup approaches the worker count even on one CPU. Warm
//! scans are CPU-bound; the warm series compares the **kernel path**
//! (bit-width-specialized fused page scans, guard-cached pins, parallel
//! when cores allow) against the **seed path** (sequential per-chunk
//! runtime-width scan, `search_generic`) — the baseline the warm ≥ 1.5×
//! target is defined over.
//!
//! `PAYG_SMOKE=1` runs a small-row smoke: same series, reduced sizes, JSON
//! under `target/` (the checked-in numbers are never overwritten), and the
//! only assertion is that the warm speedup metric is produced.

use payg_core::datavec::PagedDataVector;
use payg_core::{PageConfig, ScanOptions};
use payg_encoding::{BitPackedVec, VidSet};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, LatencyStore, MemStore, PageStore, PoolMetrics};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CARDINALITY: u64 = 1000;
const WORKERS: usize = 4;
const PAGE_LATENCY: Duration = Duration::from_micros(150);

struct BenchParams {
    smoke: bool,
    rows: u64,
    cold_iters: usize,
    warm_iters: usize,
}

impl BenchParams {
    fn from_env() -> Self {
        let smoke = std::env::var_os("PAYG_SMOKE").is_some_and(|v| v != "0");
        if smoke {
            BenchParams { smoke, rows: 20_000, cold_iters: 1, warm_iters: 3 }
        } else {
            BenchParams { smoke, rows: 400_000, cold_iters: 3, warm_iters: 7 }
        }
    }
}

fn values(rows: u64) -> Vec<u64> {
    (0..rows)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i >> 7) % CARDINALITY)
        .collect()
}

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

struct Measurement {
    seq_ns: u128,
    par_ns: u128,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.seq_ns as f64 / self.par_ns.max(1) as f64
    }
}

/// Runs the baseline and the contender `iters` times each, interleaved,
/// `reset` before every run (pool clear for cold, no-op for warm). Both
/// must report the same match count.
fn measure(
    iters: usize,
    mut reset: impl FnMut(),
    mut baseline: impl FnMut() -> usize,
    mut contender: impl FnMut() -> usize,
) -> Measurement {
    let mut seq_ns = Vec::with_capacity(iters);
    let mut par_ns = Vec::with_capacity(iters);
    let mut expect = None;
    for _ in 0..iters {
        for is_baseline in [true, false] {
            reset();
            let t0 = Instant::now();
            let n = if is_baseline { baseline() } else { contender() };
            let ns = t0.elapsed().as_nanos();
            if is_baseline {
                seq_ns.push(ns);
            } else {
                par_ns.push(ns);
            }
            match expect {
                None => expect = Some(n),
                Some(e) => assert_eq!(n, e, "scan paths disagree on the match count"),
            }
        }
    }
    Measurement { seq_ns: median(seq_ns), par_ns: median(par_ns) }
}

fn metrics_delta(after: PoolMetrics, before: PoolMetrics) -> PoolMetrics {
    after.delta(&before)
}

fn main() {
    let params = BenchParams::from_env();
    let rows = params.rows;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let store: Arc<dyn PageStore> = Arc::new(LatencyStore::new(MemStore::new(), PAGE_LATENCY));
    let pool = BufferPool::new(store, ResourceManager::new());
    let config = PageConfig {
        datavec_page: 4096,
        dict_page: 4096,
        overflow_page: 4096,
        helper_page: 4096,
        index_page: 4096,
        inline_limit: 128,
        ..PageConfig::default()
    };
    let packed = BitPackedVec::from_values(&values(rows));
    let paged = PagedDataVector::build(&pool, &config, &packed).unwrap();
    // 20% of the domain. Values are pseudo-random per page, so every page's
    // (min, max) summary straddles the range: nothing prunes, every page is
    // read, and the match count (~20% of rows) keeps materialization from
    // dominating the kernel time on either side.
    let set = VidSet::range(CARDINALITY / 10, 3 * CARDINALITY / 10 - 1);
    let kernel_scan =
        |opts: ScanOptions| paged.par_search(0, rows, &set, opts).unwrap().len();
    // The seed's warm sequential path: per-chunk runtime-width predicate
    // evaluation with per-chunk repositioning. Preserved as
    // `search_generic` exactly so this bench has a stable baseline.
    let seed_scan = || {
        let mut out = Vec::new();
        paged.iter().search_generic(0, rows, &set, &mut out).unwrap();
        out.len()
    };

    println!("=== ablation/parallel_scan{} ===", if params.smoke { " (smoke)" } else { "" });
    println!(
        "rows {rows}  pages {}  workers {WORKERS}  page latency {PAGE_LATENCY:?}  cpus {cpus}",
        paged.pages()
    );

    // Cold: every page load pays the store latency; clear() empties the pool
    // between runs. Workers overlap their loads (plus one read-ahead each).
    let cold_before = pool.metrics();
    let cold = measure(
        params.cold_iters,
        || pool.clear(),
        || kernel_scan(ScanOptions::sequential()),
        || kernel_scan(ScanOptions::with_workers(WORKERS)),
    );
    let cold_metrics = metrics_delta(pool.metrics(), cold_before);

    // Warm: one priming scan leaves every page resident; no loads remain.
    // Baseline is the warm *seed* sequential scan; the contender is the
    // fused-kernel scan with the full worker budget (capped by cores when
    // resident, so on a 1-cpu box the win must come from the kernels).
    let _ = kernel_scan(ScanOptions::sequential());
    let warm_workers = WORKERS.min(cpus);
    let warm_before = pool.metrics();
    let warm = measure(
        params.warm_iters,
        || (),
        seed_scan,
        || kernel_scan(ScanOptions::with_workers(warm_workers)),
    );
    let warm_metrics = metrics_delta(pool.metrics(), warm_before);
    // Also record the fused sequential path so the kernel-vs-parallelism
    // split is visible in the JSON.
    let warm_kernel_seq = {
        let expect = seed_scan();
        let mut ns = Vec::with_capacity(params.warm_iters);
        for _ in 0..params.warm_iters {
            let t0 = Instant::now();
            let n = kernel_scan(ScanOptions::sequential());
            ns.push(t0.elapsed().as_nanos());
            assert_eq!(n, expect, "kernel and seed scans disagree on the match count");
        }
        median(ns)
    };

    let cold_target = 2.0;
    let warm_target = 1.5;
    let cold_met = cold.speedup() >= cold_target;
    let warm_met = warm.speedup() >= warm_target;
    println!(
        "cold: sequential {:.2}ms  {WORKERS}-worker {:.2}ms  speedup {:.2}x (target >= {cold_target}x)",
        cold.seq_ns as f64 / 1e6,
        cold.par_ns as f64 / 1e6,
        cold.speedup()
    );
    println!(
        "warm: seed sequential {:.2}ms  kernel sequential {:.2}ms  kernel {warm_workers}-worker {:.2}ms  speedup {:.2}x (target >= {warm_target}x, {cpus} cpu(s))",
        warm.seq_ns as f64 / 1e6,
        warm_kernel_seq as f64 / 1e6,
        warm.par_ns as f64 / 1e6,
        warm.speedup()
    );
    println!(
        "cold pool counters: loads {}  hits {}  load waits {}  prefetches {}  shard contention {}",
        cold_metrics.loads,
        cold_metrics.hits,
        cold_metrics.load_waits,
        cold_metrics.prefetches,
        cold_metrics.contended
    );
    println!(
        "warm pool counters: loads {}  hits {}  shard contention {}",
        warm_metrics.loads, warm_metrics.hits, warm_metrics.contended
    );
    let shards = pool.shard_metrics();
    let used = shards.iter().filter(|s| s.hits + s.misses > 0).count();
    println!(
        "shards: {} of {} striped ({:?} hits on the busiest)",
        used,
        shards.len(),
        shards.iter().map(|s| s.hits).max().unwrap_or(0)
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ablation/parallel_scan\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"pages\": {},", paged.pages());
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"page_latency_us\": {},", PAGE_LATENCY.as_micros());
    let _ = writeln!(json, "  \"cold\": {{");
    let _ = writeln!(json, "    \"sequential_ns\": {},", cold.seq_ns);
    let _ = writeln!(json, "    \"parallel_ns\": {},", cold.par_ns);
    let _ = writeln!(json, "    \"speedup\": {:.3},", cold.speedup());
    let _ = writeln!(json, "    \"target\": {cold_target},");
    let _ = writeln!(json, "    \"met\": {cold_met},");
    let _ = writeln!(json, "    \"loads\": {},", cold_metrics.loads);
    let _ = writeln!(json, "    \"load_waits\": {},", cold_metrics.load_waits);
    let _ = writeln!(json, "    \"prefetches\": {}", cold_metrics.prefetches);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"warm\": {{");
    let _ = writeln!(json, "    \"baseline\": \"sequential seed path (search_generic)\",");
    let _ = writeln!(json, "    \"workers\": {warm_workers},");
    let _ = writeln!(json, "    \"sequential_seed_ns\": {},", warm.seq_ns);
    let _ = writeln!(json, "    \"sequential_kernel_ns\": {warm_kernel_seq},");
    let _ = writeln!(json, "    \"parallel_kernel_ns\": {},", warm.par_ns);
    let _ = writeln!(json, "    \"speedup\": {:.3},", warm.speedup());
    let _ = writeln!(json, "    \"target\": {warm_target},");
    let _ = writeln!(json, "    \"met\": {warm_met},");
    let _ = writeln!(json, "    \"loads\": {},", warm_metrics.loads);
    let _ = writeln!(json, "    \"hits\": {}", warm_metrics.hits);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(json, "    \"shards\": {},", shards.len());
    let _ = writeln!(json, "    \"shards_used\": {used},");
    let _ = writeln!(json, "    \"contended\": {}", pool.metrics().contended);
    let _ = writeln!(json, "  }},");
    // One profiled warm scan plus the full registry snapshot: the report
    // carries the system's observability state, not just the stopwatch.
    let (profiled_out, warm_profile) = paged
        .par_search_profiled(0, rows, &set, ScanOptions::with_workers(warm_workers))
        .unwrap();
    assert_eq!(
        profiled_out.len(),
        kernel_scan(ScanOptions::sequential()),
        "profiled scan disagrees on matches"
    );
    let snap = payg_obs::ObsSnapshot::collect(pool.registry());
    let _ = writeln!(
        json,
        "  \"obs\": {}",
        payg_bench::obs::obs_json(&snap, Some(&warm_profile), "  ")
    );
    json.push_str("}\n");

    // CARGO_MANIFEST_DIR of payg-bench is <workspace>/crates/bench. Smoke
    // runs write under target/ so the checked-in numbers are preserved.
    let path = if params.smoke {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("BENCH_parallel_scan_smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_parallel_scan.json")
    };
    std::fs::write(&path, &json).unwrap();
    println!("wrote {}", path.display());

    if params.smoke {
        // Smoke acceptance: the warm speedup metric exists and is a real
        // measurement (small sizes make the ratio itself noisy).
        assert!(
            warm.speedup().is_finite() && warm.speedup() > 0.0,
            "smoke run produced no warm speedup metric"
        );
        println!("smoke: warm speedup metric produced ({:.2}x)", warm.speedup());
        return;
    }
    if !cold_met || !warm_met {
        eprintln!(
            "SPEEDUP TARGET MISSED: cold {:.2}x (target {cold_target}, met {cold_met})  warm {:.2}x (target {warm_target}, met {warm_met})",
            cold.speedup(),
            warm.speedup()
        );
        std::process::exit(1);
    }
}
