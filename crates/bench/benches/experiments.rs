//! Regenerates every table and figure of the paper's evaluation.
//!
//! Run everything:     `cargo bench -p payg-bench --bench experiments`
//! Run one experiment: `cargo bench -p payg-bench --bench experiments -- fig6`
//! Scale knobs:        see `payg_bench::BenchConfig` (PAYG_ROWS, …).

use payg_bench::experiments;
use payg_bench::report::render_footer;
use payg_bench::BenchConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    println!("Page-As-You-Go experiment suite");
    println!(
        "scale: {} rows x {} cols, {} queries/figure, {}us page-read latency, seed {}",
        cfg.rows,
        cfg.cols,
        cfg.queries,
        cfg.read_latency.as_micros(),
        cfg.seed
    );
    let tables = payg_bench::setup::TableSet::new(&cfg);
    type Runner = fn(&BenchConfig, &payg_bench::setup::TableSet) -> payg_bench::ExperimentReport;
    fn fig1_adapter(cfg: &BenchConfig, _t: &payg_bench::setup::TableSet) -> payg_bench::ExperimentReport {
        experiments::fig1::run(cfg)
    }
    let all: [(&str, Runner); 8] = [
        ("fig1", fig1_adapter),
        ("fig4", experiments::fig4::run),
        ("fig5", experiments::fig5::run),
        ("fig6", experiments::fig6::run),
        ("fig7", experiments::fig7::run),
        ("fig8", experiments::fig8::run),
        ("fig9", experiments::fig9::run),
        ("table3", experiments::table3::run),
    ];
    let mut reports = Vec::new();
    for (id, runner) in all {
        if !filter.is_empty() && !filter.iter().any(|f| id.contains(f.as_str())) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let report = runner(&cfg, &tables);
        print!("{}", report.render());
        println!("[{} finished in {:.1?}]", id, t0.elapsed());
        reports.push(report);
    }
    print!("{}", render_footer(&reports));
    let built = tables.built();
    if !built.is_empty() {
        println!("\n=== buffer pool (cumulative, per variant) ===");
        for t in built {
            println!("{}", t.pool_report());
        }
    }
}
