//! Builds the paper's table variants (Table 2).

use crate::BenchConfig;
use parking_lot::Mutex;
use payg_core::LoadPolicy;
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, LatencyStore, MemStore};
use payg_table::{PartitionSpec, Table};
use payg_workload::{gen, TableProfile};
use std::collections::HashMap;
use std::sync::Arc;

/// The paper's table variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `T_b`: the base table, fully resident, PK index only.
    Base,
    /// `T_p`: all non-primary-key columns PAGE LOADABLE.
    Paged,
    /// `T_pp`: only the primary-key column PAGE LOADABLE.
    PagedPk,
    /// `T_b^i`: `T_b` with one inverted index per column.
    BaseIndexed,
    /// `T_p^i`: `T_p` with one inverted index per column.
    PagedIndexed,
}

impl Variant {
    /// The paper's notation for the variant.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "T_b",
            Variant::Paged => "T_p",
            Variant::PagedPk => "T_pp",
            Variant::BaseIndexed => "T_b^i",
            Variant::PagedIndexed => "T_p^i",
        }
    }

    fn with_indexes(self) -> bool {
        matches!(self, Variant::BaseIndexed | Variant::PagedIndexed)
    }

    fn partition_policy(self) -> LoadPolicy {
        match self {
            Variant::Base | Variant::BaseIndexed | Variant::PagedPk => LoadPolicy::FullyResident,
            Variant::Paged | Variant::PagedIndexed => LoadPolicy::PageLoadable,
        }
    }

    /// Per-column override for the PK (the PK stays resident in `T_p` and
    /// becomes the only paged column in `T_pp`).
    fn pk_policy(self) -> Option<LoadPolicy> {
        match self {
            Variant::Paged | Variant::PagedIndexed => Some(LoadPolicy::FullyResident),
            Variant::PagedPk => Some(LoadPolicy::PageLoadable),
            _ => None,
        }
    }
}

/// One built experiment table with its private resource manager (so memory
/// accounting never mixes between variants).
pub struct ExperimentTable {
    /// The paper's notation (`T_b`, `T_p`, …).
    pub label: &'static str,
    /// The table, merged and cold (nothing loaded).
    pub table: Table,
    /// Its resource manager; `stats().total_bytes` is the footprint metric.
    pub resman: ResourceManager,
}

impl ExperimentTable {
    /// Current memory footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.resman.stats().total_bytes as u64
    }

    /// Simulates a cold restart: unloads resident columns and drops pool
    /// frames.
    pub fn cold_restart(&self) {
        self.table.unload_all();
    }

    /// One-line buffer pool counter summary (cumulative over every
    /// experiment this variant served) — the sharded pool's observability
    /// rollup.
    pub fn pool_report(&self) -> String {
        let m = self.table.pool().metrics();
        let shards = self.table.pool().shard_metrics();
        let used = shards.iter().filter(|s| s.hits + s.misses > 0).count();
        format!(
            "{:<6} loads {:<9} hits {:<10} load-waits {:<6} prefetches {:<6} lock contention {:<5} shards used {}/{}",
            self.label, m.loads, m.hits, m.load_waits, m.prefetches, m.contended, used,
            shards.len()
        )
    }
}

/// Builds one variant of the generated table: insert everything (streamed,
/// row by row, to keep the build's peak memory flat), delta merge, then
/// cold-restart so measurements start from an empty memory state.
pub fn build_table(profile: &TableProfile, variant: Variant, cfg: &BenchConfig) -> ExperimentTable {
    let store = LatencyStore::new(MemStore::new(), cfg.read_latency);
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(store), resman.clone());
    let mut schema = profile.schema(variant.with_indexes()).expect("valid schema");
    if let Some(pk_policy) = variant.pk_policy() {
        // Rebuild the schema with the PK override applied.
        let mut cols = schema.columns().to_vec();
        cols[0].load_policy = Some(pk_policy);
        schema = payg_table::Schema::new(cols)
            .and_then(|s| s.with_primary_key(&profile.columns[0].name))
            .expect("valid schema");
    }
    let table = Table::create(
        pool,
        cfg.page_config(),
        schema,
        vec![PartitionSpec::single(variant.partition_policy())],
    )
    .expect("create table");
    for r in 0..profile.rows {
        let row = (0..profile.columns.len())
            .map(|c| gen::value_at(profile, c, r))
            .collect();
        table.insert(row).expect("insert row");
    }
    table.delta_merge_all().expect("delta merge");
    let t = ExperimentTable { label: variant.label(), table, resman };
    t.cold_restart();
    t
}

/// Lazily built, shared table variants: building the 33-column tables is
/// the expensive part of the suite, and `T_b` / `T_p^i` etc. are reused by
/// several experiments (with a cold restart in between).
pub struct TableSet {
    profile: TableProfile,
    cfg: BenchConfig,
    cells: Mutex<HashMap<Variant, Arc<ExperimentTable>>>,
}

impl TableSet {
    /// Creates the (empty) set for a configuration.
    pub fn new(cfg: &BenchConfig) -> Self {
        TableSet {
            profile: TableProfile::erp(cfg.rows, cfg.cols, cfg.seed),
            cfg: cfg.clone(),
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The dataset profile shared by every variant.
    pub fn profile(&self) -> &TableProfile {
        &self.profile
    }

    /// Returns the variant, building it on first use. The returned table is
    /// cold-restarted, ready for a fresh experiment.
    pub fn get(&self, variant: Variant) -> Arc<ExperimentTable> {
        let mut cells = self.cells.lock();
        let t = cells
            .entry(variant)
            .or_insert_with(|| {
                eprintln!("[setup] building {} …", variant.label());
                Arc::new(build_table(&self.profile, variant, &self.cfg))
            })
            .clone();
        drop(cells);
        t.cold_restart();
        t.resman.quiesce();
        t
    }

    /// Every variant built so far (label order), for end-of-run reporting.
    pub fn built(&self) -> Vec<Arc<ExperimentTable>> {
        let cells = self.cells.lock();
        let mut all: Vec<Arc<ExperimentTable>> = cells.values().cloned().collect();
        all.sort_by_key(|t| t.label);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_table::{Projection, Query};

    #[test]
    fn variants_build_and_answer_queries_identically() {
        let cfg = BenchConfig::smoke();
        let set = TableSet::new(&cfg);
        let base = set.get(Variant::Base);
        let paged = set.get(Variant::Paged);
        assert_eq!(base.footprint(), 0, "cold start");
        assert_eq!(paged.footprint(), 0, "cold start");
        let q = Query::full(Projection::Count);
        assert_eq!(base.table.execute(&q).unwrap().count(), cfg.rows);
        assert_eq!(paged.table.execute(&q).unwrap().count(), cfg.rows);
        // A point read touches columns: the resident variant loads whole
        // columns, the paged one only pages.
        let mut qg = payg_workload::QueryGen::new(set.profile().clone(), 1);
        let q = qg.q_pk_star();
        assert_eq!(base.table.execute(&q).unwrap(), paged.table.execute(&q).unwrap());
        assert!(base.footprint() > 0);
        assert!(paged.footprint() > 0);
        assert_eq!(
            base.resman.stats().paged_bytes, 0,
            "fully resident variant registers no paged resources"
        );
        // The set caches: a second get returns the same table, cold again.
        let again = set.get(Variant::Base);
        assert!(Arc::ptr_eq(&again, &base));
        assert_eq!(again.footprint(), 0, "cold restart on reuse");
    }
}
