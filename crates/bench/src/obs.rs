//! Embedding `payg-obs` registry snapshots into the `BENCH_*.json`
//! reports: one `"obs"` object per report carrying the pool hit rate,
//! eviction counters, pin-latency percentiles, and — when the bench ran a
//! profiled scan — the per-scan cost profile.

use payg_obs::{names, ObsSnapshot, ScanProfile};

/// Renders `snap` as the report's `"obs"` JSON object. `indent` is the
/// whitespace prefix of the object's lines (the closing brace is not
/// newline-terminated so the caller controls the trailing comma).
pub fn obs_json(snap: &ObsSnapshot, profile: Option<&ScanProfile>, indent: &str) -> String {
    let hits = snap.counter(names::POOL_SHARD_HITS);
    let misses = snap.counter(names::POOL_SHARD_MISSES);
    let pins = hits + misses;
    let hit_rate = if pins == 0 { 0.0 } else { hits as f64 / pins as f64 };
    let pin_ns = snap.histogram(names::POOL_PIN_NS);
    let load_ns = snap.histogram(names::POOL_LOAD_NS);
    let mut entries = vec![
        format!("\"pool_hits\": {hits}"),
        format!("\"pool_misses\": {misses}"),
        format!("\"pool_hit_rate\": {hit_rate:.4}"),
        format!("\"pool_loads\": {}", snap.counter(names::POOL_LOADS)),
        format!("\"pool_load_waits\": {}", snap.counter(names::POOL_LOAD_WAITS)),
        format!("\"pool_prefetches\": {}", snap.counter(names::POOL_PREFETCHES)),
        format!(
            "\"proactive_evictions\": {}",
            snap.counter(names::RESMAN_PROACTIVE_EVICTIONS)
        ),
        format!(
            "\"reactive_evictions\": {}",
            snap.counter(names::RESMAN_REACTIVE_EVICTIONS)
        ),
        format!(
            "\"weighted_evictions\": {}",
            snap.counter(names::RESMAN_WEIGHTED_EVICTIONS)
        ),
        format!("\"evicted_bytes\": {}", snap.counter(names::RESMAN_EVICTED_BYTES)),
        format!("\"pin_ns_p50\": {}", pin_ns.percentile(0.50)),
        format!("\"pin_ns_p99\": {}", pin_ns.percentile(0.99)),
        format!("\"load_ns_p50\": {}", load_ns.percentile(0.50)),
        format!("\"load_ns_p99\": {}", load_ns.percentile(0.99)),
        format!("\"io_submitted\": {}", snap.counter(names::POOL_IO_SUBMITTED)),
        format!("\"io_coalesced\": {}", snap.counter(names::POOL_IO_COALESCED)),
        format!("\"io_completions\": {}", snap.counter(names::POOL_IO_COMPLETIONS)),
        format!("\"io_physical_reads\": {}", snap.counter(names::POOL_IO_PHYSICAL_READS)),
        format!("\"io_sheds\": {}", snap.counter(names::POOL_IO_SHED)),
        format!("\"trace_dropped\": {}", snap.counter(names::TRACE_DROPPED)),
    ];
    if let Some(p) = profile {
        entries.push(format!("\"scan_profile\": {}", p.to_json()));
    }
    let body = entries
        .iter()
        .map(|e| format!("{indent}  {e}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n{indent}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_obs::Registry;

    #[test]
    fn obs_json_reports_hit_rate_and_percentiles() {
        let r = Registry::new();
        r.counter_labeled(names::POOL_SHARD_HITS, &[("pool", "0"), ("shard", "0")]).add(3);
        r.counter_labeled(names::POOL_SHARD_MISSES, &[("pool", "0"), ("shard", "0")]).inc();
        let h = r.histogram_labeled(names::POOL_PIN_NS, &[("pool", "0")]);
        for v in [100, 200, 4000, 50_000] {
            h.record(v);
        }
        let snap = ObsSnapshot::collect(&r);
        let json = obs_json(&snap, Some(&ScanProfile::default()), "  ");
        assert!(json.contains("\"pool_hit_rate\": 0.7500"), "{json}");
        assert!(json.contains("\"pin_ns_p50\": 255"), "{json}");
        assert!(json.contains("\"pin_ns_p99\": 65535"), "{json}");
        assert!(json.contains("\"load_ns_p50\": 0"), "cold histogram empty here: {json}");
        assert!(json.contains("\"io_physical_reads\": 0"), "{json}");
        assert!(json.contains("\"io_sheds\": 0"), "{json}");
        assert!(json.contains("\"trace_dropped\": 0"), "{json}");
        assert!(json.contains("\"scan_profile\": {\"pages_pinned\": 0"), "{json}");
        assert!(!json.contains(",\n  }"), "no trailing comma: {json}");
    }
}
