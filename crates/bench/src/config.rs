//! Experiment scale configuration.

use std::time::Duration;

/// Scale knobs for the experiment suite, read from the environment so
/// `cargo bench` can be dialed from a quick smoke run to an overnight
/// full-scale reproduction.
///
/// | Variable | Default | Meaning |
/// |---|---|---|
/// | `PAYG_ROWS` | 400 000 | rows in the generated table (paper: 100 M) |
/// | `PAYG_COLS` | 33 | columns incl. the VARCHAR PK (paper: 128) |
/// | `PAYG_QUERIES` | 600 | random queries per figure (paper: 10 000) |
/// | `PAYG_PAGE` | 4096 | page size in bytes (paper: up to 1 MiB) |
/// | `PAYG_LATENCY_US` | 150 | synthetic per-page-read latency, µs |
/// | `PAYG_HOT_RUNS` | 3 | hot repetitions in Table 3 (paper: 10) |
/// | `PAYG_RANGE_QUERIES` | 50 | queries per Table 3 run (paper: 1 000) |
/// | `PAYG_STACK_US` | 750 | modeled per-query SQL-stack cost, µs |
/// | `PAYG_SEED` | 20160626 | dataset seed (SIGMOD'16 opening day) |
///
/// Queries-per-column over pages-per-column is the knob that preserves the
/// paper's low page coverage (10 000 queries across 128 columns of a 100 M
/// row table touch a small fraction of each column's pages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchConfig {
    /// Rows in the generated table.
    pub rows: u64,
    /// Total columns including the primary key.
    pub cols: usize,
    /// Random queries per figure experiment.
    pub queries: u64,
    /// Page size used for every chain.
    pub page_size: usize,
    /// Synthetic per-page-read latency.
    pub read_latency: Duration,
    /// Hot repetitions of the Table 3 workload.
    pub hot_runs: u32,
    /// Queries per Table 3 run.
    pub range_queries: u64,
    /// Modeled per-query cost of the SQL stack above the column engine.
    /// The paper's ratios divide end-to-end times that include parsing,
    /// planning and result shipping; this microkernel measures only the
    /// column-access layer, so *normalized* ratios add this constant to
    /// both sides (see EXPERIMENTS.md). Raw ratios are always reported too.
    pub stack_cost: Duration,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            rows: 400_000,
            cols: 33,
            queries: 600,
            page_size: 4096,
            read_latency: Duration::from_micros(150),
            hot_runs: 3,
            range_queries: 50,
            stack_cost: Duration::from_micros(750),
            seed: 20_160_626,
        }
    }
}

impl BenchConfig {
    /// Reads the configuration from the environment (defaults above).
    pub fn from_env() -> Self {
        let mut c = BenchConfig::default();
        if let Some(v) = env_u64("PAYG_ROWS") {
            c.rows = v.max(100);
        }
        if let Some(v) = env_u64("PAYG_COLS") {
            c.cols = (v as usize).max(4);
        }
        if let Some(v) = env_u64("PAYG_QUERIES") {
            c.queries = v.max(10);
        }
        if let Some(v) = env_u64("PAYG_PAGE") {
            c.page_size = (v as usize).max(1024);
        }
        if let Some(v) = env_u64("PAYG_LATENCY_US") {
            c.read_latency = Duration::from_micros(v);
        }
        if let Some(v) = env_u64("PAYG_HOT_RUNS") {
            c.hot_runs = (v as u32).max(1);
        }
        if let Some(v) = env_u64("PAYG_RANGE_QUERIES") {
            c.range_queries = v.max(5);
        }
        if let Some(v) = env_u64("PAYG_STACK_US") {
            c.stack_cost = Duration::from_micros(v);
        }
        if let Some(v) = env_u64("PAYG_SEED") {
            c.seed = v;
        }
        c
    }

    /// A tiny configuration for integration tests of the harness itself.
    pub fn smoke() -> Self {
        BenchConfig {
            rows: 2_000,
            cols: 9,
            queries: 60,
            page_size: 1024,
            read_latency: Duration::from_micros(20),
            hot_runs: 2,
            range_queries: 10,
            stack_cost: Duration::from_micros(100),
            seed: 7,
        }
    }
}

impl BenchConfig {
    /// The page configuration every chain uses at this scale.
    pub fn page_config(&self) -> payg_core::PageConfig {
        payg_core::PageConfig {
            datavec_page: self.page_size,
            dict_page: self.page_size,
            overflow_page: self.page_size,
            helper_page: self.page_size,
            index_page: self.page_size,
            inline_limit: 128,
            ..payg_core::PageConfig::default()
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BenchConfig::default();
        assert!(c.rows >= 10_000);
        assert!(c.cols >= 9);
        assert!(!c.read_latency.is_zero());
    }

    #[test]
    fn env_parsing_ignores_garbage() {
        assert_eq!(env_u64("PAYG_DOES_NOT_EXIST"), None);
    }
}
