//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6).
//!
//! Each experiment in [`experiments`] builds the paper's table variants
//! (Table 2: `T_b`, `T_p`, `T_pp`, `T_b^i`, `T_p^i`) from the ERP-like
//! generated dataset, replays the corresponding query workload against the
//! fully-resident baseline and the page-loadable variant, and reports the
//! paper's two metrics:
//!
//! * **system memory footprint** — the resource manager's total registered
//!   bytes, sampled after every query (Figs. 4a–9a);
//! * **query run-time ratio** — paged time over resident time, per query
//!   (Figs. 4b–9b) or averaged over hot repetitions (Table 3).
//!
//! Scale is configurable through environment variables (see
//! [`config::BenchConfig`]); defaults are sized so the full suite runs in
//! minutes on a laptop while preserving the paper's *shapes* (who wins, by
//! roughly what factor, where the crossovers are). Absolute numbers differ
//! from the paper's 100 M-row, 256 GB testbed by design.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod experiments;
pub mod obs;
pub mod report;
pub mod series;
pub mod setup;

pub use config::BenchConfig;
pub use report::ExperimentReport;
