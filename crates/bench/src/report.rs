//! Experiment reports: human-readable tables plus CSV artifacts.

use crate::series::Series;
use std::io::Write;
use std::path::PathBuf;

/// The outcome of one experiment: narrative lines, shape checks against the
/// paper, and optional CSV artifacts.
#[derive(Debug, Default)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"fig4"`.
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Free-form result lines.
    pub lines: Vec<String>,
    /// Shape expectations from the paper and whether they held.
    pub checks: Vec<(String, bool)>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentReport { id: id.into(), title: title.into(), ..Default::default() }
    }

    /// Adds a result line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Records a shape check.
    pub fn check(&mut self, what: impl Into<String>, ok: bool) {
        self.checks.push((what.into(), ok));
    }

    /// Appends the standard series summary lines and memory/ratio shape
    /// output used by every figure.
    pub fn series_block(
        &mut self,
        series: &Series,
        label_base: &str,
        label_paged: &str,
        stack_ns: u64,
    ) {
        let s = series.summary(stack_ns);
        self.line(format!(
            "queries: {}   raw ratio: mean {:.2} (90% CI ±{:.2})  p50 {:.2}  p90 {:.2}  max {:.1}  warm tail {:.2}",
            s.n, s.mean_ratio, s.ci90_ratio, s.p50_ratio, s.p90_ratio, s.max_ratio, s.tail_mean_ratio
        ));
        self.line(format!(
            "normalized ratio (incl. {:.0}us modeled SQL stack): mean {:.2}   warm tail {:.2}",
            stack_ns as f64 / 1000.0,
            s.mean_norm,
            s.tail_norm
        ));
        self.line(format!(
            "final footprint: {label_base} = {}   {label_paged} = {}   saving = {}",
            fmt_bytes(s.final_base_mem),
            fmt_bytes(s.final_paged_mem),
            fmt_bytes(s.final_base_mem.saturating_sub(s.final_paged_mem))
        ));
        self.line(format!(
            "{:>8} {:>14} {:>14} {:>9}",
            "query", format!("mem({label_base})"), format!("mem({label_paged})"), "ratio"
        ));
        for (i, p) in series.downsample(20) {
            self.line(format!(
                "{:>8} {:>14} {:>14} {:>9.2}",
                i + 1,
                fmt_bytes(p.base_mem),
                fmt_bytes(p.paged_mem),
                p.ratio()
            ));
        }
    }

    /// Writes the full series as CSV next to the workspace
    /// (`results/<id>.csv`), mirroring the figure's plotted data. Skipped
    /// (returning the would-be path) when `PAYG_NO_CSV` is set — the
    /// smoke-scale harness tests set it so `cargo test` never clobbers the
    /// full-scale artifacts from `cargo bench`.
    pub fn write_csv(&self, series: &Series) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        if std::env::var_os("PAYG_NO_CSV").is_some() {
            return Ok(dir.join(format!("{}.csv", self.id)));
        }
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "query,base_ns,paged_ns,ratio,base_mem_bytes,paged_mem_bytes")?;
        for (i, p) in series.points.iter().enumerate() {
            writeln!(
                f,
                "{},{},{},{:.4},{},{}",
                i + 1,
                p.base_ns,
                p.paged_ns,
                p.ratio(),
                p.base_mem,
                p.paged_mem
            )?;
        }
        Ok(path)
    }

    /// Renders the report to a string (what the bench binary prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n=== {} — {} ===\n", self.id, self.title));
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        for (what, ok) in &self.checks {
            out.push_str(&format!(
                "shape {} {}\n",
                if *ok { "[ok]  " } else { "[FAIL]" },
                what
            ));
        }
        out
    }

    /// True when every shape check held.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }
}

/// Where CSV artifacts go: `<workspace>/results`.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of payg-bench is <workspace>/crates/bench.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Pretty byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{b}B")
    }
}

/// Aggregate summary over several reports (the bench binary's footer).
pub fn render_footer(reports: &[ExperimentReport]) -> String {
    let mut out = String::from("\n=== summary ===\n");
    let mut all_ok = true;
    for r in reports {
        let ok = r.all_checks_pass();
        all_ok &= ok;
        out.push_str(&format!(
            "{:<8} {:<52} {}\n",
            r.id,
            r.title,
            if ok { "shapes ok" } else { "SHAPE MISMATCH" }
        ));
    }
    out.push_str(if all_ok {
        "all paper shapes reproduced\n"
    } else {
        "some shapes did not reproduce — inspect the reports above\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Point;

    #[test]
    fn report_rendering() {
        let mut r = ExperimentReport::new("figX", "test experiment");
        let mut s = Series::default();
        s.push(Point { base_ns: 100, paged_ns: 150, base_mem: 2048, paged_mem: 1024 });
        r.series_block(&s, "T_b", "T_p", 0);
        r.check("paged footprint smaller", true);
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("mean 1.50"));
        assert!(text.contains("[ok]"));
        assert!(r.all_checks_pass());
        r.check("impossible", false);
        assert!(!r.all_checks_pass());
        assert!(r.render().contains("[FAIL]"));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }
}
