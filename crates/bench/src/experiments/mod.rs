//! One module per paper table/figure.

pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table3;

use crate::report::ExperimentReport;
use crate::series::{Point, Series};
use crate::setup::{ExperimentTable, TableSet, Variant};
use crate::BenchConfig;
use payg_table::Query;
use payg_workload::QueryGen;
use std::sync::Arc;
use std::time::Instant;

/// Runs every experiment in paper order over one shared table set.
pub fn run_all(cfg: &BenchConfig) -> Vec<ExperimentReport> {
    let tables = TableSet::new(cfg);
    vec![
        fig1::run(cfg),
        fig4::run(cfg, &tables),
        fig5::run(cfg, &tables),
        fig6::run(cfg, &tables),
        fig7::run(cfg, &tables),
        fig8::run(cfg, &tables),
        fig9::run(cfg, &tables),
        table3::run(cfg, &tables),
    ]
}

/// The shared shape of Figs. 4–9: replay the same random query stream
/// against the resident baseline and the paged variant, recording per-query
/// times and post-query footprints.
#[allow(dead_code)] // tables kept alive so footprint accounting stays valid
pub(crate) struct FigureRun {
    pub series: Series,
    pub base: Arc<ExperimentTable>,
    pub paged: Arc<ExperimentTable>,
}

pub(crate) fn run_query_stream(
    cfg: &BenchConfig,
    tables: &TableSet,
    base_variant: Variant,
    paged_variant: Variant,
    mut next_query: impl FnMut(&mut QueryGen) -> Query,
) -> FigureRun {
    let base = tables.get(base_variant);
    let paged = tables.get(paged_variant);
    let mut qg = QueryGen::new(tables.profile().clone(), cfg.seed ^ 0xF1ED);
    let queries: Vec<Query> = (0..cfg.queries).map(|_| next_query(&mut qg)).collect();
    let mut series = Series::default();
    for q in &queries {
        let t0 = Instant::now();
        let r_base = base.table.execute(q).expect("base query");
        let base_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let r_paged = paged.table.execute(q).expect("paged query");
        let paged_ns = t1.elapsed().as_nanos() as u64;
        assert_eq!(r_base, r_paged, "variants must agree on {q:?}");
        series.push(Point {
            base_ns,
            paged_ns,
            base_mem: base.footprint(),
            paged_mem: paged.footprint(),
        });
    }
    FigureRun { series, base, paged }
}

/// Shape checks common to the memory-footprint figures: the paged variant
/// ends with the smaller footprint, both footprints only grow, and the
/// normalized (end-to-end) ratio converges toward 1 in the warm tail.
pub(crate) fn common_memory_checks(
    report: &mut ExperimentReport,
    run: &FigureRun,
    cfg: &BenchConfig,
) {
    let s = run.series.summary(cfg.stack_cost.as_nanos() as u64);
    report.check(
        format!(
            "paged footprint below resident at the end ({} < {})",
            crate::report::fmt_bytes(s.final_paged_mem),
            crate::report::fmt_bytes(s.final_base_mem)
        ),
        s.final_paged_mem < s.final_base_mem,
    );
    let monotone = run
        .series
        .points
        .windows(2)
        .all(|w| w[1].paged_mem >= w[0].paged_mem.saturating_sub(1));
    report.check("paged footprint grows as pages are pulled in", monotone);
    report.check(
        format!("normalized warm-tail ratio near 1 ({:.2})", s.tail_norm),
        s.tail_norm < 2.5,
    );
}
