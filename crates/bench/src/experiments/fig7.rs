//! Fig. 7: counting through the paged inverted index.
//!
//! Workload `Q_num^count` — `SELECT COUNT(*) FROM T WHERE C_num = value` —
//! on `T_p^i` vs `T_b^i` (every column indexed): the count is answered from
//! the inverted index. Most generated columns are sparse, so each paged
//! index is a mixed postinglist+directory page chain. Paper result: smaller
//! footprint for the paged index; each search needs at most two page
//! accesses, so the overhead sits between the paged data vector (Fig. 4)
//! and the paged dictionary search (Fig. 6).

use crate::experiments::{common_memory_checks, run_query_stream};
use crate::report::ExperimentReport;
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;

/// Regenerates Fig. 7.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7",
        "Q_num^count on T_p^i vs T_b^i: paged inverted index",
    );
    let stack = cfg.stack_cost.as_nanos() as u64;
    let run = run_query_stream(cfg, tables, Variant::BaseIndexed, Variant::PagedIndexed, |qg| {
        qg.q_num_count()
    });
    report.series_block(&run.series, "T_b^i", "T_p^i", stack);
    let _ = report.write_csv(&run.series);
    common_memory_checks(&mut report, &run, cfg);
    // Paper: at most two page accesses per index search, so the overhead
    // sits between the paged data vector (Fig. 4) and the dictionary-search
    // burst (Fig. 6).
    let s = run.series.summary(stack);
    report.check(
        format!("normalized mean ratio moderate ({:.2})", s.mean_norm),
        s.mean_norm < 2.5,
    );
    report
}
