//! Fig. 6: searching string columns through the paged dictionary.
//!
//! Workload `Q_str^count` — `SELECT COUNT(*) FROM T WHERE C_str = value` —
//! on `T_p` vs `T_b`: `findByValue` probes the separator helper dictionary,
//! a dictionary page, then scans the data vector for the identifier. Paper
//! result: the paged footprint grows very fast over the first few hundred
//! queries (helper chains + dictionary pages pulled in) and the early
//! run-time burst is the worst of all experiments (up to 360×); after the
//! helper dictionaries are resident the gap narrows.

use crate::experiments::{common_memory_checks, run_query_stream};
use crate::report::ExperimentReport;
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;

/// Regenerates Fig. 6.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "Q_str^count on T_p vs T_b: paged dictionary findByValue + scan",
    );
    let stack = cfg.stack_cost.as_nanos() as u64;
    let run = run_query_stream(cfg, tables, Variant::Base, Variant::Paged, |qg| qg.q_str_count());
    report.series_block(&run.series, "T_b", "T_p", stack);
    let _ = report.write_csv(&run.series);
    common_memory_checks(&mut report, &run, cfg);
    let s = run.series.summary(stack);
    // Paper: the early burst (helper chains + dictionary pages pulling in)
    // dwarfs the warm tail. In this microkernel the resident baseline pays
    // its own whole-column first-touch loads inside the same early window,
    // which dampens the *ratio* — so the burst is checked on the paged
    // side's own times: its early-phase queries must be far slower than its
    // warmed-up ones.
    let n = run.series.points.len();
    let early = &run.series.points[..(n / 10).max(1)];
    let tail = &run.series.points[n - (n / 4).max(1)..];
    let early_paged_ns =
        early.iter().map(|p| p.paged_ns as f64).sum::<f64>() / early.len() as f64;
    let tail_paged_ns =
        tail.iter().map(|p| p.paged_ns as f64).sum::<f64>() / tail.len() as f64;
    let early_max = early.iter().map(|p| p.ratio()).fold(0.0, f64::max);
    report.line(format!(
        "T_p early-phase mean {:.0}us vs warm {:.0}us per query; worst early raw ratio {:.1}          (paper reports ratio bursts up to 360x)",
        early_paged_ns / 1_000.0,
        tail_paged_ns / 1_000.0,
        early_max
    ));
    report.check(
        format!(
            "paged-side early burst ≫ warm cost ({:.0}us vs {:.0}us)",
            early_paged_ns / 1_000.0,
            tail_paged_ns / 1_000.0
        ),
        early_paged_ns > 1.5 * tail_paged_ns,
    );
    // The paged footprint accumulates fastest at the start: the first 20 %
    // of queries load at least half of the final paged footprint.
    let fifth = run.series.points[run.series.points.len() / 5].paged_mem;
    report.check(
        "footprint grows fastest during the early burst",
        fifth * 2 >= s.final_paged_mem,
    );

    // §6.2.2 supplement: "it would be more effective to have these
    // auxiliary dictionaries always loaded in memory". Compare the cold
    // findByValue burst on a standalone paged dictionary with evictable vs
    // permanently pinned helper chains.
    {
        use payg_core::dict::{HandleCache, PagedDictionary};
        use payg_resman::{PoolLimits, ResourceManager};
        use payg_storage::{BufferPool, LatencyStore, MemStore};
        use std::sync::Arc;
        use std::time::Instant;

        let keys: Vec<Vec<u8>> = (0..cfg.rows.min(100_000))
            .map(|i| format!("probe-{i:09}").into_bytes())
            .collect();
        let mut burst = [0u128; 2];
        for (i, pin) in [false, true].into_iter().enumerate() {
            let resman = ResourceManager::new();
            resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
            let pool = BufferPool::new(
                Arc::new(LatencyStore::new(MemStore::new(), cfg.read_latency)),
                resman.clone(),
            );
            let (dict, _) = PagedDictionary::build(&pool, &cfg.page_config(), &keys).unwrap();
            if pin {
                dict.pin_helpers().unwrap();
            }
            // Cold probes with eviction between them: only pinned helper
            // pages survive, so the unpinned variant re-reads helper chains
            // every time.
            let t0 = Instant::now();
            for p in (0..keys.len()).step_by(keys.len() / 50) {
                let mut cache = HandleCache::new(pool.clone());
                let _ = std::hint::black_box(dict.find(&keys[p], &mut cache).unwrap());
                drop(cache);
                resman.reactive_unload();
            }
            burst[i] = t0.elapsed().as_micros();
        }
        report.line(format!(
            "§6.2.2 supplement: 50 cold findByValue probes take {}us with evictable helpers              vs {}us with always-loaded helpers",
            burst[0], burst[1]
        ));
        report.check(
            "always-loaded helper dictionaries cut the cold-probe cost",
            burst[1] < burst[0],
        );
    }
    report
}
