//! Fig. 1: average time per symbol of the `mget` and `search` primitives
//! over n-bit packed vectors, for varying n.
//!
//! The paper's micro benchmark (Xeon E5-2697 v3) shows both primitives'
//! per-symbol cost growing with the bit width, with `search` cheaper per
//! symbol than `mget` at small widths (it produces a bitmap instead of
//! materializing values) and the search primitive memory-bandwidth bound.
//! This regenerates the same two series on the host CPU.

use crate::report::ExperimentReport;
use crate::BenchConfig;
use payg_encoding::scan::search_bitmap;
use payg_encoding::{BitPackedVec, BitWidth, VidSet};
use std::time::Instant;

/// Widths plotted in the figure.
pub const WIDTHS: [u32; 10] = [1, 2, 4, 6, 8, 12, 16, 20, 24, 32];

/// One measured width.
#[derive(Debug, Clone, Copy)]
pub struct WidthPoint {
    /// Bit width n.
    pub bits: u32,
    /// `mget` nanoseconds per symbol.
    pub mget_ns: f64,
    /// `search` nanoseconds per symbol.
    pub search_ns: f64,
}

/// Measures both primitives at every width: median of `repeats` timed
/// passes per primitive (medians suppress scheduler noise on shared hosts).
pub fn measure(symbols: usize, repeats: usize) -> Vec<WidthPoint> {
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    WIDTHS
        .iter()
        .map(|&bits| {
            let w = BitWidth::new(bits).unwrap();
            let values: Vec<u64> = (0..symbols as u64)
                .map(|i| {
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) & w.mask()
                })
                .collect();
            let vec = BitPackedVec::from_values_with_width(&values, w);
            let probe = values[symbols / 2];

            let mut out = Vec::with_capacity(symbols);
            let mget_ns = median(
                (0..repeats)
                    .map(|_| {
                        let t0 = Instant::now();
                        vec.mget(0, vec.len(), &mut out);
                        std::hint::black_box(&out);
                        t0.elapsed().as_nanos() as f64 / symbols as f64
                    })
                    .collect(),
            );

            // The paper's search is bandwidth-bound: it produces a result
            // bitmap, so the output cost is independent of selectivity.
            let set = VidSet::Single(probe);
            let mut hits = Vec::new();
            let search_ns = median(
                (0..repeats)
                    .map(|_| {
                        let t1 = Instant::now();
                        search_bitmap(&vec, 0, vec.len(), &set, &mut hits);
                        std::hint::black_box(&hits);
                        t1.elapsed().as_nanos() as f64 / symbols as f64
                    })
                    .collect(),
            );
            WidthPoint { bits, mget_ns, search_ns }
        })
        .collect()
}

/// Regenerates Fig. 1.
pub fn run(cfg: &BenchConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig1",
        "ns per symbol of mget / search vs n-bit width (micro benchmark)",
    );
    // Size the vector past the LLC so `search` is bandwidth-bound like the
    // paper's, scaled down for smoke configurations.
    let symbols = (cfg.rows as usize * 64).clamp(1 << 16, 1 << 24);
    let points = measure(symbols, 7);
    report.line(format!("vector: {symbols} symbols, median of 7 repeats"));
    report.line(format!("{:>6} {:>12} {:>12}", "n", "mget ns/sym", "search ns/sym"));
    for p in &points {
        report.line(format!("{:>6} {:>12.3} {:>12.3}", p.bits, p.mget_ns, p.search_ns));
    }
    // Paper shapes, with one documented deviation: this implementation has
    // a SWAR equality fast path at word-aligned widths (1, 2, 4, 8, 16, 32)
    // that rejects non-matching words without decoding them, so search
    // there is *faster* than the paper's decode-based scan and the paper's
    // monotone growth only holds within the generic decode-path family
    // (6, 12, 20, 24 bits), where cost tracks bytes-per-symbol.
    report.line(
        "note: word-aligned widths use the SWAR fast path; growth is checked          within the decode-path family (6/12/20/24 bits)"
    );
    let at = |b: u32| points.iter().find(|p| p.bits == b).unwrap();
    report.check(
        format!(
            "decode-path mget cost grows with n ({:.2} @6b → {:.2} @24b)",
            at(6).mget_ns,
            at(24).mget_ns
        ),
        at(24).mget_ns > at(6).mget_ns * 0.95,
    );
    // The paper's search growth comes from being memory-bandwidth bound on
    // a 2014 Xeon (~5 GB/s/core). On modern cores the decode path is
    // CPU-bound at these sizes, so its per-symbol cost is flat-to-growing;
    // regression (wide much cheaper than narrow) would indicate a bug.
    report.check(
        format!(
            "decode-path search cost flat-to-growing ({:.2} @6b → {:.2} @24b)",
            at(6).search_ns,
            at(24).search_ns
        ),
        at(24).search_ns > at(6).search_ns * 0.8,
    );
    report.check(
        "per-symbol costs in the paper's few-ns band at every width",
        points.iter().all(|p| p.mget_ns < 50.0 && p.search_ns < 50.0),
    );
    let small_widths_ok = points
        .iter()
        .filter(|p| p.bits <= 8)
        .all(|p| p.search_ns <= p.mget_ns * 1.5);
    report.check("search ≤ mget at small widths (SWAR skips non-matching words)", small_widths_ok);
    report
}
