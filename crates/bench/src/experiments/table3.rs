//! Table 3: memory saving and run-time ratio for PK range scans.
//!
//! Workloads `Q*_{σpk}` (`SELECT *`) and `Q^{sum}_{σpk}` (`SELECT SUM`)
//! over PK ranges of selectivity {1 row, 0.01 %, 0.1 %, 1 %} on `T_p^i` vs
//! `T_b^i`, one cold run followed by hot repetitions of the exact same
//! workload. Paper results: large memory reductions that shrink with
//! selectivity for `SELECT *` (5.1 → 2.3 GB) but stay flat for `SUM`
//! (~4.6 GB, only two columns touched); hot-run overhead peaks for
//! `SELECT *` at 0.01 % (1.82×) and stays near 1 for single-row access
//! and for `SUM` (1.01–1.33×).

use crate::report::{fmt_bytes, ExperimentReport};
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;
use payg_table::Query;
use payg_workload::QueryGen;
use std::time::Instant;

/// The selectivities of Table 3; `0.0` denotes the single-row access.
pub const SELECTIVITIES: [f64; 4] = [0.0, 0.0001, 0.001, 0.01];

/// One Table 3 cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Footprint(T_b^i) − footprint(T_p^i) after the workload, bytes.
    pub memory_saving: i64,
    /// Raw hot-run time ratio (paged / resident, totals over all hot runs).
    pub hot_ratio: f64,
    /// Hot-run ratio including the modeled per-query SQL-stack cost.
    pub hot_ratio_norm: f64,
}

/// Regenerates Table 3.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table3",
        "PK range scans (SELECT * / SUM) at 4 selectivities, cold + hot runs",
    );
    let profile = tables.profile().clone();
    let base = tables.get(Variant::BaseIndexed);
    let paged = tables.get(Variant::PagedIndexed);

    let mut star_cells = Vec::new();
    let mut sum_cells = Vec::new();
    for (kind, cells) in [("star", &mut star_cells), ("sum", &mut sum_cells)] {
        for &sel in &SELECTIVITIES {
            base.cold_restart();
            paged.cold_restart();
            let mut qg = QueryGen::new(profile.clone(), cfg.seed ^ (sel.to_bits()));
            let queries: Vec<Query> = (0..cfg.range_queries)
                .map(|_| if kind == "star" { qg.q_range_star(sel) } else { qg.q_range_sum(sel) })
                .collect();
            // Cold run (not timed into the ratio, per the paper: the hot
            // runs measure the impact of paging when data is loaded).
            for q in &queries {
                let a = base.table.execute(q).expect("cold base");
                let b = paged.table.execute(q).expect("cold paged");
                assert_eq!(a, b, "variants must agree");
            }
            // Hot runs of the exact same workload.
            let mut base_ns = 0u64;
            let mut paged_ns = 0u64;
            for _ in 0..cfg.hot_runs {
                for q in &queries {
                    let t0 = Instant::now();
                    std::hint::black_box(base.table.execute(q).expect("hot base"));
                    base_ns += t0.elapsed().as_nanos() as u64;
                    let t1 = Instant::now();
                    std::hint::black_box(paged.table.execute(q).expect("hot paged"));
                    paged_ns += t1.elapsed().as_nanos() as u64;
                }
            }
            let stack_total = cfg.stack_cost.as_nanos() as u64
                * cfg.range_queries
                * u64::from(cfg.hot_runs);
            cells.push(Cell {
                memory_saving: base.footprint() as i64 - paged.footprint() as i64,
                hot_ratio: paged_ns as f64 / base_ns.max(1) as f64,
                hot_ratio_norm: (paged_ns + stack_total) as f64
                    / (base_ns + stack_total).max(1) as f64,
            });
        }
    }

    let sel_label = |s: f64| {
        if s == 0.0 { "1 row".to_string() } else { format!("{}%", s * 100.0) }
    };
    report.line(format!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "", sel_label(SELECTIVITIES[0]), sel_label(SELECTIVITIES[1]),
        sel_label(SELECTIVITIES[2]), sel_label(SELECTIVITIES[3])
    ));
    let fmt_saving = |c: &Cell| {
        if c.memory_saving >= 0 {
            fmt_bytes(c.memory_saving as u64)
        } else {
            format!("-{}", fmt_bytes((-c.memory_saving) as u64))
        }
    };
    report.line(format!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "Memory reduction  Q*",
        fmt_saving(&star_cells[0]), fmt_saving(&star_cells[1]),
        fmt_saving(&star_cells[2]), fmt_saving(&star_cells[3])
    ));
    report.line(format!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "                  Q_sum",
        fmt_saving(&sum_cells[0]), fmt_saving(&sum_cells[1]),
        fmt_saving(&sum_cells[2]), fmt_saving(&sum_cells[3])
    ));
    report.line(format!(
        "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "Raw hot ratio     Q*",
        star_cells[0].hot_ratio, star_cells[1].hot_ratio,
        star_cells[2].hot_ratio, star_cells[3].hot_ratio
    ));
    report.line(format!(
        "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "                  Q_sum",
        sum_cells[0].hot_ratio, sum_cells[1].hot_ratio,
        sum_cells[2].hot_ratio, sum_cells[3].hot_ratio
    ));
    report.line(format!(
        "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "Norm hot ratio    Q*",
        star_cells[0].hot_ratio_norm, star_cells[1].hot_ratio_norm,
        star_cells[2].hot_ratio_norm, star_cells[3].hot_ratio_norm
    ));
    report.line(format!(
        "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "                  Q_sum",
        sum_cells[0].hot_ratio_norm, sum_cells[1].hot_ratio_norm,
        sum_cells[2].hot_ratio_norm, sum_cells[3].hot_ratio_norm
    ));

    // Paper shapes.
    report.check(
        "memory saving positive in every cell",
        star_cells.iter().chain(&sum_cells).all(|c| c.memory_saving > 0),
    );
    report.check(
        "Q* saving shrinks as selectivity grows (more pages touched)",
        star_cells[0].memory_saving > star_cells[3].memory_saving,
    );
    let sum_min = sum_cells.iter().map(|c| c.memory_saving).min().unwrap();
    let sum_max = sum_cells.iter().map(|c| c.memory_saving).max().unwrap();
    report.check(
        "Q_sum saving roughly flat (only PK + one column touched)",
        sum_min * 2 > sum_max,
    );
    report.check(
        "SUM overhead below SELECT * overhead (fewer structures paged)",
        sum_cells.iter().zip(&star_cells).filter(|(s, g)| s.hot_ratio <= g.hot_ratio * 1.2).count() >= 3,
    );
    report.check(
        format!(
            "normalized single-row hot ratios near 1 (Q* {:.2}, Q_sum {:.2}; paper: 1.29 / 1.01)",
            star_cells[0].hot_ratio_norm, sum_cells[0].hot_ratio_norm
        ),
        star_cells[0].hot_ratio_norm < 1.6 && sum_cells[0].hot_ratio_norm < 1.6,
    );
    report
}
