//! Fig. 5: single reads of string columns through the paged dictionary.
//!
//! Workload `Q_pk^str` — `SELECT C_str FROM T WHERE C_pk = value` — on
//! `T_p` vs `T_b`: one paged-data-vector access plus one dictionary
//! directory probe and one dictionary page (`findByValueID`). Paper result:
//! smaller footprint for `T_p`; `T_b` shows a large jump when a query
//! touches a new column for the first time (its whole dictionary loads);
//! the paged degradation (avg 1.24) exceeds Fig. 4 because both the data
//! vector and the dictionary page in.

use crate::experiments::{common_memory_checks, run_query_stream};
use crate::report::ExperimentReport;
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;

/// Regenerates Fig. 5.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "Q_pk^str on T_p vs T_b: paged dictionary findByValueID",
    );
    let stack = cfg.stack_cost.as_nanos() as u64;
    let run = run_query_stream(cfg, tables, Variant::Base, Variant::Paged, |qg| qg.q_pk_str());
    report.series_block(&run.series, "T_b", "T_p", stack);
    let _ = report.write_csv(&run.series);
    common_memory_checks(&mut report, &run, cfg);
    let s = run.series.summary(stack);
    // Paper: avg 1.24 with wider spread than Fig. 4 (dictionary pages in
    // addition to data-vector pages).
    report.check(
        format!("normalized mean ratio moderate ({:.2}, paper: 1.24)", s.mean_norm),
        s.mean_norm < 2.2,
    );
    // Paper: T_b's footprint jumps in column-sized steps (a first touch
    // loads a whole column); T_p never jumps that coarsely. Compare the
    // largest single-query footprint increment.
    let max_step = |points: &[crate::series::Point], paged: bool| {
        points
            .windows(2)
            .map(|w| {
                let (a, b) = if paged { (w[0].paged_mem, w[1].paged_mem) } else { (w[0].base_mem, w[1].base_mem) };
                b.saturating_sub(a)
            })
            .max()
            .unwrap_or(0)
    };
    let base_step = max_step(&run.series.points, false);
    let paged_step = max_step(&run.series.points, true);
    report.line(format!(
        "largest single-query footprint jump: T_b {} vs T_p {}",
        crate::report::fmt_bytes(base_step),
        crate::report::fmt_bytes(paged_step)
    ));
    report.check(
        "T_b jumps column-at-a-time, T_p loads pieces (T_b max step larger)",
        base_step > paged_step,
    );
    report
}
