//! Fig. 8: row-id lookups through the unique paged inverted index.
//!
//! Workload `Q_pk^rid` — `SELECT ROWID() FROM T WHERE C_pk = value` — on
//! `T_pp` (only the PK page loadable) vs `T_b`. The PK index is unique, so
//! the paged index stores only the postinglist (no directory) and each
//! lookup decodes a single posting. Paper results: the run-time gets close
//! to the resident index (~29 % slower on average, few spikes), **but**
//! Fig. 8a shows the paged index consuming *more* memory than the resident
//! one — both store just the postinglist vector, and the paged variant's
//! minimum load unit is a whole page. The table-level run below checks the
//! ratio shape; a dedicated index-only measurement reproduces the memory
//! inversion, which whole-table footprints (dominated by the PK dictionary)
//! would mask.

use crate::experiments::run_query_stream;
use crate::report::{fmt_bytes, ExperimentReport};
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;
use payg_core::invidx::{InMemoryInvertedIndex, PagedInvertedIndex};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore};
use std::sync::Arc;

/// Regenerates Fig. 8.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8",
        "Q_pk^rid on T_pp vs T_b: unique paged inverted index",
    );
    let stack = cfg.stack_cost.as_nanos() as u64;
    let run = run_query_stream(cfg, tables, Variant::Base, Variant::PagedPk, |qg| qg.q_pk_rid());
    report.series_block(&run.series, "T_b", "T_pp", stack);
    let _ = report.write_csv(&run.series);
    let s = run.series.summary(stack);
    // The whole-stream mean includes the cold phase, where nearly every
    // query loads fresh dictionary/index pages; the paper's "29 % slower on
    // average" describes the steady behaviour, which the warm tail captures.
    report.check(
        format!("normalized mean ratio bounded ({:.2})", s.mean_norm),
        s.mean_norm < 3.0,
    );
    report.check(
        format!("normalized warm tail close to resident ({:.2}, paper: 1.29)", s.tail_norm),
        s.tail_norm < 1.8,
    );

    // Index-only memory comparison (the paper's Fig. 8a): a unique index
    // pair over the same permutation, with every page of the paged variant
    // touched. The resident index is a tightly packed postinglist; the
    // paged one cannot go below page granularity, so it ends up larger.
    let rows = cfg.rows.min(200_000);
    let values: Vec<u64> = {
        // A deterministic permutation of 0..rows.
        let mut v: Vec<u64> = (0..rows).collect();
        let mut state = cfg.seed | 1;
        for i in (1..v.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.swap(i, (state >> 33) as usize % (i + 1));
        }
        v
    };
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let paged = PagedInvertedIndex::build(&pool, &cfg.page_config(), &values, rows)
        .expect("build unique paged index");
    let resident = InMemoryInvertedIndex::build(&values, rows);
    assert!(paged.is_unique() && resident.is_unique());
    // Touch every posting so the whole paged chain is resident.
    let mut it = paged.iter();
    for vid in 0..rows {
        let _ = it.get_first_row_pos(vid).expect("posting");
    }
    drop(it);
    let paged_bytes = resman.stats().paged_bytes as u64;
    let resident_bytes = resident.heap_bytes() as u64;
    report.line(format!(
        "index-only memory at full coverage: resident postinglist {} vs paged chain {}",
        fmt_bytes(resident_bytes),
        fmt_bytes(paged_bytes)
    ));
    report.check(
        "paged unique index consumes >= the resident one (page-granular minimum)",
        paged_bytes >= resident_bytes,
    );
    report
}
