//! Fig. 9: end-to-end single-row reads (`SELECT *`).
//!
//! Workload `Q_pk^*` on `T_p^i` vs `T_b^i`: one unique-index lookup plus,
//! for every column, one paged-data-vector read and one paged-dictionary
//! materialization — the full cold-data auditing scenario. Paper result:
//! the paged footprint stays well below the resident one; the ratio is
//! large during the first ~1 000 queries (every structure pages in) and
//! then converges near 1 (average 1.09 after 2 000 queries).

use crate::experiments::{common_memory_checks, run_query_stream};
use crate::report::ExperimentReport;
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;

/// Regenerates Fig. 9.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig9",
        "Q_pk^* on T_p^i vs T_b^i: end-to-end single-row reads",
    );
    let stack = cfg.stack_cost.as_nanos() as u64;
    let run = run_query_stream(cfg, tables, Variant::BaseIndexed, Variant::PagedIndexed, |qg| {
        qg.q_pk_star()
    });
    report.series_block(&run.series, "T_b^i", "T_p^i", stack);
    let _ = report.write_csv(&run.series);
    common_memory_checks(&mut report, &run, cfg);
    let s = run.series.summary(stack);
    // Paper: after the warm-up the end-to-end ratio approaches 1 (1.09).
    report.check(
        format!("normalized warm tail approaches 1 ({:.2}, paper: 1.09)", s.tail_norm),
        s.tail_norm < 2.0,
    );
    // And the early phase is clearly worse than the tail, but less
    // catastrophic than the dictionary-search burst of Fig. 6.
    let early: &[crate::series::Point] =
        &run.series.points[..(run.series.points.len() / 10).max(1)];
    let early_mean = early.iter().map(|p| p.ratio()).sum::<f64>() / early.len() as f64;
    report.line(format!("early-phase raw mean ratio: {early_mean:.2}"));
    report.check(
        "early phase slower than warm tail",
        early_mean > s.tail_mean_ratio,
    );
    report
}
