//! Fig. 4: single reads of numeric columns through the paged data vector.
//!
//! Workload `Q_pk^num` — `SELECT C_num FROM T WHERE C_pk = value` for
//! random rows — on `T_p` vs `T_b`. Each query reads the PK index (resident
//! in both variants) plus one position of a numeric column's data vector.
//! Paper result: footprint drops from 8.2 GB to 3.6 GB; the paged footprint
//! grows as pieces are pulled in; run-time spikes appear whenever a new
//! piece loads, but the average ratio is only 1.07 — piecewise data-vector
//! access is nearly free for point reads.

use crate::experiments::{common_memory_checks, run_query_stream};
use crate::report::ExperimentReport;
use crate::setup::{TableSet, Variant};
use crate::BenchConfig;

/// Regenerates Fig. 4.
pub fn run(cfg: &BenchConfig, tables: &TableSet) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "Q_pk^num on T_p vs T_b: paged data vector point reads",
    );
    let stack = cfg.stack_cost.as_nanos() as u64;
    let run = run_query_stream(cfg, tables, Variant::Base, Variant::Paged, |qg| qg.q_pk_num());
    report.series_block(&run.series, "T_b", "T_p", stack);
    let _ = report.write_csv(&run.series);
    common_memory_checks(&mut report, &run, cfg);
    let s = run.series.summary(stack);
    // Paper: the average end-to-end ratio stays close to 1 for
    // data-vector-only point reads (1.07 ± 0.29 reported).
    report.check(
        format!("normalized mean ratio close to 1 ({:.2}, paper: 1.07)", s.mean_norm),
        s.mean_norm < 1.8,
    );
    // Spikes exist: some queries that trigger piece loads are much slower
    // than the median.
    report.check(
        format!("load spikes visible (max {:.1} ≫ p50 {:.2})", s.max_ratio, s.p50_ratio),
        s.max_ratio > 4.0 * s.p50_ratio,
    );

    // The paper contrasts the one-time cost of a full column load with the
    // cost of loading a single piece (43.5 s vs 9.6 s on their testbed).
    // Measure the same contrast on a standalone column pair.
    {
        use payg_core::column::ColumnRead;
        use payg_core::{ColumnBuilder, DataType, LoadPolicy, Value};
        use payg_resman::ResourceManager;
        use payg_storage::{BufferPool, LatencyStore, MemStore};
        use std::sync::Arc;
        use std::time::Instant;
        let values: Vec<Value> =
            (0..cfg.rows.min(200_000) as i64).map(|i| Value::Integer(i % 10_000)).collect();
        let pool = BufferPool::new(
            Arc::new(LatencyStore::new(MemStore::new(), cfg.read_latency)),
            ResourceManager::new(),
        );
        let resident = ColumnBuilder::new(DataType::Integer)
            .policy(LoadPolicy::FullyResident)
            .build(&pool, &cfg.page_config(), &values)
            .unwrap()
            .column;
        let paged = ColumnBuilder::new(DataType::Integer)
            .policy(LoadPolicy::PageLoadable)
            .build(&pool, &cfg.page_config(), &values)
            .unwrap()
            .column;
        let t0 = Instant::now();
        resident.ensure_loaded().unwrap();
        let full_load = t0.elapsed();
        let t1 = Instant::now();
        let _ = paged.get_value(values.len() as u64 / 2).unwrap();
        let piece_load = t1.elapsed();
        report.line(format!(
            "one-time load cost: full column {full_load:.1?} vs one piece {piece_load:.1?}              (paper: 43.5s vs 9.6s)"
        ));
        report.check(
            "full column load far more expensive than one piece",
            full_load > piece_load * 4,
        );
    }
    report
}
