//! Per-query measurement series and their summary statistics.

/// One measured query: times on both variants and footprints after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Resident-variant execution time (ns).
    pub base_ns: u64,
    /// Paged-variant execution time (ns).
    pub paged_ns: u64,
    /// Resident-variant footprint after the query (bytes).
    pub base_mem: u64,
    /// Paged-variant footprint after the query (bytes).
    pub paged_mem: u64,
}

impl Point {
    /// The raw run-time ratio `t(q, T_p) / t(q, T_b)` of the column-access
    /// layer alone.
    pub fn ratio(&self) -> f64 {
        self.paged_ns as f64 / (self.base_ns.max(1)) as f64
    }

    /// The ratio with a modeled SQL-stack cost added to both sides — the
    /// paper's end-to-end ratio (see `BenchConfig::stack_cost`).
    pub fn ratio_with_stack(&self, stack_ns: u64) -> f64 {
        (self.paged_ns + stack_ns) as f64 / (self.base_ns + stack_ns).max(1) as f64
    }
}

/// A full series of measurements for one figure.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// The per-query points in execution order.
    pub points: Vec<Point>,
}

/// Summary statistics of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of queries.
    pub n: usize,
    /// Mean run-time ratio.
    pub mean_ratio: f64,
    /// 90 % confidence half-width of the mean ratio (1.645 · σ/√n).
    pub ci90_ratio: f64,
    /// Median ratio.
    pub p50_ratio: f64,
    /// 90th-percentile ratio.
    pub p90_ratio: f64,
    /// Maximum ratio (the worst load spike).
    pub max_ratio: f64,
    /// Mean ratio over the last quarter of the series (the warmed-up tail).
    pub tail_mean_ratio: f64,
    /// Mean normalized (stack-inclusive) ratio.
    pub mean_norm: f64,
    /// Mean normalized ratio over the warmed-up tail.
    pub tail_norm: f64,
    /// Final resident footprint (bytes).
    pub final_base_mem: u64,
    /// Final paged footprint (bytes).
    pub final_paged_mem: u64,
}

impl Series {
    /// Appends a point.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Computes the summary; `stack_ns` is the modeled per-query SQL-stack
    /// cost for the normalized ratios (0 = raw only).
    ///
    /// # Panics
    /// Panics on an empty series.
    pub fn summary(&self, stack_ns: u64) -> Summary {
        assert!(!self.points.is_empty(), "empty series");
        let n = self.points.len();
        let mut ratios: Vec<f64> = self.points.iter().map(Point::ratio).collect();
        let mean = ratios.iter().sum::<f64>() / n as f64;
        let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        let ci90 = 1.645 * (var / n as f64).sqrt();
        let tail_start = n - n / 4;
        let tail: &[Point] = &self.points[tail_start.min(n - 1)..];
        let tail_mean = tail.iter().map(Point::ratio).sum::<f64>() / tail.len() as f64;
        let mean_norm = self
            .points
            .iter()
            .map(|p| p.ratio_with_stack(stack_ns))
            .sum::<f64>()
            / n as f64;
        let tail_norm =
            tail.iter().map(|p| p.ratio_with_stack(stack_ns)).sum::<f64>() / tail.len() as f64;
        ratios.sort_by(f64::total_cmp);
        let pct = |p: f64| ratios[((n - 1) as f64 * p) as usize];
        let last = self.points[n - 1];
        Summary {
            n,
            mean_ratio: mean,
            ci90_ratio: ci90,
            p50_ratio: pct(0.5),
            p90_ratio: pct(0.9),
            max_ratio: *ratios.last().unwrap(),
            tail_mean_ratio: tail_mean,
            mean_norm,
            tail_norm,
            final_base_mem: last.base_mem,
            final_paged_mem: last.paged_mem,
        }
    }

    /// Downsamples to at most `max_points` evenly spaced points (always
    /// keeping the last), for plotting-friendly output.
    pub fn downsample(&self, max_points: usize) -> Vec<(usize, Point)> {
        let n = self.points.len();
        if n == 0 {
            return Vec::new();
        }
        let step = n.div_ceil(max_points).max(1);
        let mut out: Vec<(usize, Point)> =
            self.points.iter().copied().enumerate().step_by(step).collect();
        if out.last().map(|(i, _)| *i) != Some(n - 1) {
            out.push((n - 1, self.points[n - 1]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(base: u64, paged: u64, bm: u64, pm: u64) -> Point {
        Point { base_ns: base, paged_ns: paged, base_mem: bm, paged_mem: pm }
    }

    #[test]
    fn summary_statistics() {
        let mut s = Series::default();
        for i in 1..=100u64 {
            // Ratio 2.0 on the first half (cold), 1.0 on the second (warm).
            let ratio = if i <= 50 { 2 } else { 1 };
            s.push(p(100, 100 * ratio, i * 10, i * 5));
        }
        let sum = s.summary(0);
        assert_eq!(sum.n, 100);
        assert!((sum.mean_ratio - 1.5).abs() < 1e-9);
        assert_eq!(sum.max_ratio, 2.0);
        assert!((sum.tail_mean_ratio - 1.0).abs() < 1e-9, "warm tail converges");
        assert_eq!(sum.final_base_mem, 1000);
        assert_eq!(sum.final_paged_mem, 500);
        assert!(sum.ci90_ratio > 0.0);
        // Normalization pulls ratios toward 1: with a stack cost of 900ns
        // on 100ns queries, the 2x half normalizes to (900+200)/(900+100).
        let norm = s.summary(900);
        assert!(norm.mean_norm < sum.mean_ratio);
        assert!((norm.tail_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_guards_zero_division() {
        assert_eq!(p(0, 100, 0, 0).ratio(), 100.0);
    }

    #[test]
    fn downsample_keeps_last_point() {
        let mut s = Series::default();
        for i in 0..103u64 {
            s.push(p(1, 1, i, i));
        }
        let d = s.downsample(10);
        assert!(d.len() <= 12);
        assert_eq!(d.last().unwrap().0, 102);
        assert_eq!(d[0].0, 0);
    }
}
