//! Demonstrates the model checker end to end: a racy check-then-load
//! cache (the bug single-flight loading prevents) is caught with a
//! replayable schedule, and the fixed version exhausts cleanly.
//!
//! ```bash
//! cargo run -p payg-check --example find_race
//! ```

use payg_check::sync::{Condvar, Mutex};
use payg_check::{replay, thread, Checker};
use std::sync::Arc;

/// BUGGY: check the slot, then load outside any reservation. Two threads
/// can both observe the miss and both "read the page from the store".
fn racy_get(slot: &Arc<Mutex<Option<u64>>>, loads: &Arc<Mutex<u32>>) -> u64 {
    if let Some(v) = *slot.lock() {
        return v;
    }
    *loads.lock() += 1; // the store read
    *slot.lock() = Some(42);
    42
}

/// FIXED: a Loading placeholder reserves the slot; losers wait on the
/// condvar instead of issuing a second store read.
#[derive(Clone, Copy, PartialEq)]
enum Slot {
    Empty,
    Loading,
    Resident(u64),
}

fn single_flight_get(
    state: &Arc<(Mutex<Slot>, Condvar)>,
    loads: &Arc<Mutex<u32>>,
) -> u64 {
    let (slot, cv) = &**state;
    let mut g = slot.lock();
    loop {
        match *g {
            Slot::Resident(v) => return v,
            Slot::Loading => cv.wait(&mut g),
            Slot::Empty => {
                *g = Slot::Loading;
                drop(g);
                *loads.lock() += 1; // the store read, outside the slot lock
                g = slot.lock();
                *g = Slot::Resident(42);
                cv.notify_all();
                return 42;
            }
        }
    }
}

fn main() {
    // 1. Explore the buggy version: the checker finds an interleaving
    //    where the page is read from the store twice for one residency.
    let report = Checker::exhaustive().max_iterations(2000).check(|| {
        let slot = Arc::new(Mutex::new(None));
        let loads = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (s, l) = (Arc::clone(&slot), Arc::clone(&loads));
                thread::spawn(move || {
                    assert_eq!(racy_get(&s, &l), 42);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(*loads.lock() <= 1, "page read from store twice during one residency");
    });
    let failure = report.failure.expect("the checker must find the double load");
    println!(
        "buggy version: failed after {} interleavings\n  message:  {}\n  schedule: {}",
        report.iterations,
        failure.message.lines().next().unwrap_or(""),
        failure.schedule
    );

    // 2. Replay the reported schedule: deterministically hits the same bug.
    let replayed = replay(&failure.schedule, || {
        let slot = Arc::new(Mutex::new(None));
        let loads = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (s, l) = (Arc::clone(&slot), Arc::clone(&loads));
                thread::spawn(move || {
                    assert_eq!(racy_get(&s, &l), 42);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(*loads.lock() <= 1, "page read from store twice during one residency");
    });
    assert!(replayed.failure.is_some(), "replay must reproduce the failure");
    println!("replay: reproduced the failure on the exact reported schedule");

    // 3. The single-flight version holds under every interleaving.
    let report = Checker::exhaustive().max_iterations(50_000).check(|| {
        let state = Arc::new((Mutex::new(Slot::Empty), Condvar::new()));
        let loads = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (s, l) = (Arc::clone(&state), Arc::clone(&loads));
                thread::spawn(move || {
                    assert_eq!(single_flight_get(&s, &l), 42);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*loads.lock(), 1, "single flight: exactly one store read");
    });
    assert!(report.failure.is_none(), "single flight must hold");
    println!(
        "fixed version: {} interleavings explored, exhausted={}, no failure",
        report.iterations, report.exhausted
    );
}
