//! # payg-check — deterministic concurrency checking for the paged stack
//!
//! An in-tree, zero-dependency correctness toolkit in the spirit of
//! `loom`/`shuttle`, sized to what this workspace needs:
//!
//! * **[`sync`]** — `Mutex`/`Condvar`/`RwLock`/atomic wrappers that behave
//!   like plain locks normally, but inside [`model`] become scheduler yield
//!   points so every interleaving of the wrapped operations can be
//!   explored deterministically.
//! * **[`thread`]** — model-aware `spawn`/`join`.
//! * **[`Checker`]/[`model`]/[`replay`]** — the exploration driver:
//!   bounded-exhaustive DFS over scheduling choices, seed-driven random
//!   exploration for huge spaces, and exact replay of a reported failing
//!   schedule string.
//! * **[`lockorder`]** — the workspace lock-rank discipline, enforced at
//!   runtime under the `strict-invariants` feature.
//! * **[`pintrack`]** — pin-leak detection for RAII page guards, also
//!   behind `strict-invariants`.
//! * **[`raw`]** — sanctioned non-modeled locks for scheduler-adjacent
//!   state (the repo lint forbids raw `std::sync` locks elsewhere).
//!
//! `payg-storage` and `payg-resman` route their synchronization through
//! type aliases that resolve to [`sync`] when built with
//! `RUSTFLAGS="--cfg payg_check"` and to [`raw`] otherwise, so the *same
//! source* is both the production implementation and the model under test.
//!
//! ## Writing a model-checked test
//!
//! ```
//! use payg_check::{model, sync::Mutex, thread};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&counter);
//!             thread::spawn(move || *c.lock() += 1)
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(*counter.lock(), 2);
//! });
//! ```
//!
//! A failing run panics with a dot-separated **schedule string**; pass it
//! to [`replay`] to re-execute exactly that interleaving under a debugger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lockorder;
pub mod pintrack;
pub mod raw;
mod sched;
pub mod sync;
pub mod thread;

pub use lockorder::{LockRank, RankSpec, RANK_TABLE};
pub use pintrack::{PinTracker, PinToken};
pub use sched::{model, replay, Checker, Failure, Observations, Report};

/// True when this build is running with the model-checking cfg enabled
/// (`RUSTFLAGS="--cfg payg_check"`). Lets shared test helpers adapt.
pub const MODELED_BUILD: bool = cfg!(payg_check);
