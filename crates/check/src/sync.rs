//! Model-checkable synchronization primitives.
//!
//! Drop-in replacements for the `parking_lot` subset this workspace uses
//! (`Mutex`, `MutexGuard`, `Condvar`, `RwLock`) plus sequentially-consistent
//! atomic wrappers. Inside a [`crate::model`] run every operation is a
//! scheduler yield point, so the checker can explore interleavings around
//! it; **outside** a model run the wrappers degrade to plain (non-poisoning)
//! `std::sync` behavior, so code built with `--cfg payg_check` still works
//! in ordinary tests.
//!
//! Create the locks *inside* the model closure: a lock object reused across
//! model iterations re-registers itself per execution, but sharing one
//! between a model thread and a non-model thread is unsupported (the
//! non-model thread would bypass the scheduler).

use crate::lockorder::{self, LockRank, OrderToken};
use crate::sched::{self, ExecInner, ResourceCell};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, PoisonError};

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A model-checkable mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    rank: Option<LockRank>,
    res: ResourceCell,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unranked mutex.
    pub fn new(value: T) -> Self {
        Mutex { rank: None, res: ResourceCell::new(), inner: std::sync::Mutex::new(value) }
    }

    /// Creates a mutex participating in lock-order checking at `rank`.
    pub fn with_rank(value: T, rank: LockRank) -> Self {
        Mutex { rank: Some(rank), res: ResourceCell::new(), inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: ?Sized> Mutex<T> {
    fn modeled(&self) -> Option<(Arc<ExecInner>, usize, usize)> {
        let (exec, tid) = sched::current_ctx()?;
        let rid = self.res.id(&exec, || exec.register_mutex());
        Some((exec, tid, rid))
    }

    /// Acquires the lock, blocking (or descheduling, under the model) until
    /// available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = self.rank.map(lockorder::acquire);
        match self.modeled() {
            Some((exec, tid, rid)) => {
                exec.op_acquire_mutex(tid, rid);
                let std = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("payg-check: modeled mutex contended at std level"));
                MutexGuard { lock: self, std: Some(std), modeled: Some((exec, rid)), _token: token }
            }
            None => MutexGuard {
                lock: self,
                std: Some(recover(self.inner.lock())),
                modeled: None,
                _token: token,
            },
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.modeled() {
            Some((exec, tid, rid)) => {
                if !exec.op_try_acquire_mutex(tid, rid) {
                    return None;
                }
                let token = self.rank.map(lockorder::acquire);
                let std = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("payg-check: modeled mutex contended at std level"));
                Some(MutexGuard { lock: self, std: Some(std), modeled: Some((exec, rid)), _token: token })
            }
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    std: Some(g),
                    modeled: None,
                    _token: self.rank.map(lockorder::acquire),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    std: Some(p.into_inner()),
                    modeled: None,
                    _token: self.rank.map(lockorder::acquire),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The `Option` exists so [`Condvar::wait`] can
/// temporarily surrender the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
    modeled: Option<(Arc<ExecInner>, usize)>,
    _token: Option<OrderToken>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.std.take();
        if let Some((exec, rid)) = self.modeled.take() {
            exec.op_release_mutex(rid);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A model-checkable condition variable for use with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    res: ResourceCell,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar { res: ResourceCell::new(), inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match &guard.modeled {
            Some((exec, mutex_rid)) => {
                let exec = Arc::clone(exec);
                let mutex_rid = *mutex_rid;
                let (_, tid) = sched::current_ctx().expect("modeled guard outside model thread");
                let cv_rid = self.res.id(&exec, || exec.register_condvar());
                // Surrender the real lock, deschedule, reacquire on wake.
                drop(guard.std.take());
                exec.op_cv_wait(tid, cv_rid, mutex_rid);
                guard.std = Some(
                    guard
                        .lock
                        .inner
                        .try_lock()
                        .unwrap_or_else(|_| panic!("payg-check: modeled mutex contended at std level")),
                );
            }
            None => {
                let std = guard.std.take().expect("guard present");
                guard.std = Some(recover(self.inner.wait(std)));
            }
        }
    }

    /// Wakes one waiter. Under the model this wakes all waiters (a legal
    /// over-approximation: condvars permit spurious wakeups).
    pub fn notify_one(&self) {
        match sched::current_ctx() {
            Some((exec, _)) => {
                let cv_rid = self.res.id(&exec, || exec.register_condvar());
                exec.op_notify(cv_rid);
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match sched::current_ctx() {
            Some((exec, _)) => {
                let cv_rid = self.res.id(&exec, || exec.register_condvar());
                exec.op_notify(cv_rid);
            }
            None => self.inner.notify_all(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A model-checkable reader-writer lock.
pub struct RwLock<T: ?Sized> {
    rank: Option<LockRank>,
    res: ResourceCell,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unranked rwlock.
    pub fn new(value: T) -> Self {
        RwLock { rank: None, res: ResourceCell::new(), inner: std::sync::RwLock::new(value) }
    }

    /// Creates a rwlock participating in lock-order checking at `rank`.
    pub fn with_rank(value: T, rank: LockRank) -> Self {
        RwLock { rank: Some(rank), res: ResourceCell::new(), inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: ?Sized> RwLock<T> {
    fn modeled(&self) -> Option<(Arc<ExecInner>, usize, usize)> {
        let (exec, tid) = sched::current_ctx()?;
        let rid = self.res.id(&exec, || exec.register_rwlock());
        Some((exec, tid, rid))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = self.rank.map(lockorder::acquire);
        match self.modeled() {
            Some((exec, tid, rid)) => {
                exec.op_acquire_rw(tid, rid, false);
                let std = self
                    .inner
                    .try_read()
                    .unwrap_or_else(|_| panic!("payg-check: modeled rwlock contended at std level"));
                RwLockReadGuard { std: Some(std), modeled: Some((exec, rid)), _token: token }
            }
            None => RwLockReadGuard {
                std: Some(recover(self.inner.read())),
                modeled: None,
                _token: token,
            },
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = self.rank.map(lockorder::acquire);
        match self.modeled() {
            Some((exec, tid, rid)) => {
                exec.op_acquire_rw(tid, rid, true);
                let std = self
                    .inner
                    .try_write()
                    .unwrap_or_else(|_| panic!("payg-check: modeled rwlock contended at std level"));
                RwLockWriteGuard { std: Some(std), modeled: Some((exec, rid)), _token: token }
            }
            None => RwLockWriteGuard {
                std: Some(recover(self.inner.write())),
                modeled: None,
                _token: token,
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    std: Option<std::sync::RwLockReadGuard<'a, T>>,
    modeled: Option<(Arc<ExecInner>, usize)>,
    _token: Option<OrderToken>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.std.take();
        if let Some((exec, rid)) = self.modeled.take() {
            exec.op_release_rw(rid, false);
        }
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    std: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: Option<(Arc<ExecInner>, usize)>,
    _token: Option<OrderToken>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.std.take();
        if let Some((exec, rid)) = self.modeled.take() {
            exec.op_release_rw(rid, true);
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Sequentially-consistent atomic wrappers. Each operation is a scheduler
/// yield point inside a model run; the model explores interleavings at
/// operation granularity (weak-memory reorderings are out of scope).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_wrapper {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Model-checkable atomic integer.
            #[derive(Default, Debug)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic.
                pub fn new(v: $prim) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                fn yield_point() {
                    if let Some((exec, tid)) = crate::sched::current_ctx() {
                        exec.yield_point(tid);
                    }
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $prim {
                    Self::yield_point();
                    self.inner.load(order)
                }

                /// Atomic store.
                pub fn store(&self, v: $prim, order: Ordering) {
                    Self::yield_point();
                    self.inner.store(v, order)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    Self::yield_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    Self::yield_point();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    Self::yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_wrapper!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_wrapper!(AtomicU64, std::sync::atomic::AtomicU64, u64);

    /// Model-checkable atomic boolean.
    #[derive(Default, Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic bool.
        pub fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        fn yield_point() {
            if let Some((exec, tid)) = crate::sched::current_ctx() {
                exec.yield_point(tid);
            }
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> bool {
            Self::yield_point();
            self.inner.load(order)
        }

        /// Atomic store.
        pub fn store(&self, v: bool, order: Ordering) {
            Self::yield_point();
            self.inner.store(v, order)
        }

        /// Atomic swap.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            Self::yield_point();
            self.inner.swap(v, order)
        }
    }
}
