//! Lock-order (rank) tracking.
//!
//! Every lock in the paged storage stack is assigned a [`LockRank`]; a
//! thread may only acquire locks in **strictly increasing** rank order.
//! This is checked at runtime only under the `strict-invariants` feature
//! (a thread-local stack of held ranks); otherwise [`acquire`] is a no-op
//! and the tracker compiles away.
//!
//! The rank values encode the workspace-wide ordering, verified against
//! every nesting path in `payg-storage::pool` and `payg-resman::manager`:
//!
//! | rank | lock |
//! |-----:|------|
//! | 2  | core column state (resident image, permanent helper pins) |
//! | 3  | I/O stage submission queue |
//! | 5  | `LoadState.done` (single-flight publish) |
//! | 6  | I/O stage fetch ticket (completion latch) |
//! | 10 | pool `Shard.slots` |
//! | 20 | `Frame.transient` |
//! | 25 | resman `Inner.limits` |
//! | 30 | resman `Inner.state` |
//! | 35 | resman `Inner.proactive` |
//!
//! Same-rank reacquisition is also rejected: two shard locks must never be
//! held at once (the pool promises independence between shards).

/// One row of the workspace rank table: a [`LockRank`] variant's name and
/// numeric rank, exposed so the static analyzer (`cargo xtask analyze`)
/// checks source code against the *same declaration* the runtime tracker
/// enforces — the two can never drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSpec {
    /// The variant name as it appears at `with_rank` sites
    /// (`LockRank::PoolShard` → `"PoolShard"`).
    pub name: &'static str,
    /// The numeric rank (ascending = inner).
    pub rank: u8,
}

/// Declares [`LockRank`] and [`RANK_TABLE`] from one list so the runtime
/// tracker and the static lock-rank pass share a single declaration.
macro_rules! define_ranks {
    ($( $(#[$meta:meta])* $name:ident = $value:literal ),+ $(,)?) => {
        /// Ranks for the workspace lock-order discipline (ascending = inner).
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
        #[repr(u8)]
        pub enum LockRank {
            $( $(#[$meta])* $name = $value, )+
        }

        /// The full rank table, in declaration order. Generated from the
        /// same `define_ranks!` invocation that defines [`LockRank`].
        pub static RANK_TABLE: &[RankSpec] = &[
            $( RankSpec { name: stringify!($name), rank: $value }, )+
        ];
    };
}

define_ranks! {
    /// Core column-level state (resident image slot, permanent helper
    /// pins): outermost — held while pinning pages or registering
    /// resources, never acquired with a storage/resman lock held.
    CoreColumn = 2,
    /// I/O stage submission queue — held only to push or pop fetch
    /// requests, never across a shard lock or a store call.
    IoQueue = 3,
    /// Single-flight `LoadState` mutex — never nests inside anything.
    LoadState = 5,
    /// I/O stage fetch ticket (the completion latch between a submitting
    /// pin and the worker that resolves it) — waited on with no other lock
    /// held.
    IoTicket = 6,
    /// Buffer pool shard map.
    PoolShard = 10,
    /// Per-frame transient-object slot.
    FrameTransient = 20,
    /// Resource manager paged-pool limits.
    ResmanLimits = 25,
    /// Resource manager entry table / accounting.
    ResmanState = 30,
    /// Resource manager proactive-worker handle.
    ResmanProactive = 35,
}

/// RAII token recording one held rank; dropping it releases the rank.
///
/// Tokens may be dropped in any order (guards are sometimes released
/// out of LIFO order, e.g. `let (_a, b) = ...`): release removes the
/// **last occurrence of the value**, not the top of the stack.
#[must_use]
pub struct OrderToken {
    #[cfg(feature = "strict-invariants")]
    rank: LockRank,
}

/// Registers acquisition of `rank` by the current thread, panicking on a
/// lock-order violation when `strict-invariants` is enabled.
#[cfg(feature = "strict-invariants")]
pub fn acquire(rank: LockRank) -> OrderToken {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(&top) = held.iter().max() {
            assert!(
                rank > top,
                "lock-order violation: acquiring {rank:?} (rank {}) while holding {top:?} (rank {}); \
                 locks must be taken in strictly increasing rank order",
                rank as u8,
                top as u8,
            );
        }
        held.push(rank);
    });
    OrderToken { rank }
}

/// No-op outside `strict-invariants` builds.
#[cfg(not(feature = "strict-invariants"))]
pub fn acquire(_rank: LockRank) -> OrderToken {
    OrderToken {}
}

#[cfg(feature = "strict-invariants")]
thread_local! {
    static HELD: std::cell::RefCell<Vec<LockRank>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(feature = "strict-invariants")]
impl Drop for OrderToken {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::no_effect_underscore_binding)]
    use super::*;

    #[test]
    fn increasing_order_is_accepted() {
        let _a = acquire(LockRank::PoolShard);
        let _b = acquire(LockRank::FrameTransient);
        let _c = acquire(LockRank::ResmanState);
    }

    #[test]
    fn tokens_release_out_of_order() {
        let a = acquire(LockRank::PoolShard);
        let b = acquire(LockRank::ResmanState);
        drop(a);
        drop(b);
        // Stack empty again: low rank is fine now.
        let _c = acquire(LockRank::LoadState);
    }

    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn decreasing_order_panics() {
        let _a = acquire(LockRank::ResmanState);
        let _b = acquire(LockRank::PoolShard);
    }

    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_reacquisition_panics() {
        let _a = acquire(LockRank::PoolShard);
        let _b = acquire(LockRank::PoolShard);
    }
}
