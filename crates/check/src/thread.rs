//! Model-aware thread spawning.
//!
//! Inside a model run, [`spawn`] registers the child with the deterministic
//! scheduler so its execution interleaves under scheduler control; outside
//! a model it delegates to `std::thread::spawn`. [`JoinHandle::join`]
//! likewise routes through the scheduler's join operation when modeled.

use crate::sched::{self, spawn_model_thread};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned thread; joining yields the closure's return value.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<sched::ExecInner>,
        target: usize,
        os_handle: std::thread::JoinHandle<()>,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. `Err` means
    /// the thread panicked (under the model, the panic is also recorded as
    /// a model failure).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, target, os_handle, slot } => {
                let (_, tid) = sched::current_ctx()
                    .expect("modeled JoinHandle joined from outside the model");
                exec.op_join(tid, target);
                let _ = os_handle.join();
                let v = slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                match v {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model thread panicked or was aborted")),
                }
            }
        }
    }
}

/// Spawns a thread, scheduler-controlled when called from a model run.
pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    match sched::current_ctx() {
        Some((exec, tid)) => {
            let target = exec.register_thread();
            let (os_handle, slot) = spawn_model_thread(&exec, target, f);
            // Spawning is itself a scheduling point: the child may run first.
            exec.yield_point(tid);
            JoinHandle { inner: Inner::Model { exec, target, os_handle, slot } }
        }
        None => JoinHandle { inner: Inner::Std(std::thread::spawn(f)) },
    }
}

/// A voluntary scheduling point (no-op outside model runs). Use in model
/// tests to widen exploration around non-synchronized steps.
pub fn yield_now() {
    if let Some((exec, tid)) = sched::current_ctx() {
        exec.yield_point(tid);
    }
}
