//! Raw (non-modeled) locks for the few places that legitimately bypass the
//! model: scheduler-internal state, metrics counters read by non-model
//! threads, and modules outside the checked concurrency core.
//!
//! These are thin non-poisoning newtypes over `std::sync` with the same API
//! shape as [`crate::sync`], including lock-rank participation, so call
//! sites can switch between the two by changing one import. The repo lint
//! (`cargo xtask lint`) forbids constructing `std::sync`/`parking_lot`
//! locks directly outside the sanctioned modules; this module is the
//! sanctioned escape hatch.

use crate::lockorder::{self, LockRank, OrderToken};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Non-poisoning mutex that never participates in model scheduling.
pub struct RawMutex<T: ?Sized> {
    rank: Option<LockRank>,
    inner: std::sync::Mutex<T>,
}

impl<T> RawMutex<T> {
    /// Creates an unranked raw mutex.
    pub const fn new(value: T) -> Self {
        RawMutex { rank: None, inner: std::sync::Mutex::new(value) }
    }

    /// Creates a raw mutex participating in lock-order checking.
    pub const fn with_rank(value: T, rank: LockRank) -> Self {
        RawMutex { rank: Some(rank), inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: ?Sized> RawMutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> RawMutexGuard<'_, T> {
        let token = self.rank.map(lockorder::acquire);
        RawMutexGuard { std: Some(recover(self.inner.lock())), _token: token }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<RawMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(RawMutexGuard { std: Some(g), _token: self.rank.map(lockorder::acquire) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RawMutexGuard {
                std: Some(p.into_inner()),
                _token: self.rank.map(lockorder::acquire),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: Default> Default for RawMutex<T> {
    fn default() -> Self {
        RawMutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RawMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`RawMutex`]. The `Option` exists so [`RawCondvar::wait`]
/// can temporarily surrender the underlying std guard.
pub struct RawMutexGuard<'a, T: ?Sized> {
    std: Option<std::sync::MutexGuard<'a, T>>,
    _token: Option<OrderToken>,
}

impl<T: ?Sized> Deref for RawMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RawMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard present")
    }
}

/// Condition variable paired with [`RawMutex`].
#[derive(Default)]
pub struct RawCondvar {
    inner: std::sync::Condvar,
}

impl RawCondvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        RawCondvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut RawMutexGuard<'_, T>) {
        let std = guard.std.take().expect("guard present");
        guard.std = Some(recover(self.inner.wait(std)));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Non-poisoning rwlock that never participates in model scheduling.
pub struct RawRwLock<T: ?Sized> {
    rank: Option<LockRank>,
    inner: std::sync::RwLock<T>,
}

impl<T> RawRwLock<T> {
    /// Creates an unranked raw rwlock.
    pub const fn new(value: T) -> Self {
        RawRwLock { rank: None, inner: std::sync::RwLock::new(value) }
    }

    /// Creates a raw rwlock participating in lock-order checking.
    pub const fn with_rank(value: T, rank: LockRank) -> Self {
        RawRwLock { rank: Some(rank), inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RawRwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RawReadGuard<'_, T> {
        let token = self.rank.map(lockorder::acquire);
        RawReadGuard { std: recover(self.inner.read()), _token: token }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RawWriteGuard<'_, T> {
        let token = self.rank.map(lockorder::acquire);
        RawWriteGuard { std: recover(self.inner.write()), _token: token }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut().map_err(|e| PoisonError::new(e.into_inner())))
    }
}

impl<T: Default> Default for RawRwLock<T> {
    fn default() -> Self {
        RawRwLock::new(T::default())
    }
}

/// RAII shared guard for [`RawRwLock`].
pub struct RawReadGuard<'a, T: ?Sized> {
    std: std::sync::RwLockReadGuard<'a, T>,
    _token: Option<OrderToken>,
}

impl<T: ?Sized> Deref for RawReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.std
    }
}

/// RAII exclusive guard for [`RawRwLock`].
pub struct RawWriteGuard<'a, T: ?Sized> {
    std: std::sync::RwLockWriteGuard<'a, T>,
    _token: Option<OrderToken>,
}

impl<T: ?Sized> Deref for RawWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.std
    }
}

impl<T: ?Sized> DerefMut for RawWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.std
    }
}
