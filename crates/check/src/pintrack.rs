//! Pin-leak detection for RAII guards (`strict-invariants` only).
//!
//! A [`PinTracker`] hands out numbered [`PinToken`]s tagged with an owner
//! string (call site + thread). Dropping the guard returns the token;
//! [`PinTracker::assert_none_live`] panics listing every outstanding owner,
//! which turns "a `PageGuard` leaked somewhere" into an actionable message.
//! Outside `strict-invariants` builds everything is a zero-sized no-op.

#[cfg(feature = "strict-invariants")]
use crate::raw::RawMutex;
#[cfg(feature = "strict-invariants")]
use std::collections::BTreeMap;

/// Registry of live pins. Embed one per pool and call
/// [`assert_none_live`](Self::assert_none_live) at quiesce points
/// (`clear()`, drop, end of test).
#[derive(Default)]
pub struct PinTracker {
    #[cfg(feature = "strict-invariants")]
    live: RawMutex<(u64, BTreeMap<u64, String>)>,
}

/// Token held by a guard for its lifetime; return via [`PinTracker::unpin`].
#[derive(Debug)]
pub struct PinToken {
    #[cfg(feature = "strict-invariants")]
    id: u64,
}

impl PinTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new live pin owned by `owner` (a human-readable tag:
    /// call site, page key, thread name).
    #[cfg(feature = "strict-invariants")]
    pub fn pin(&self, owner: impl FnOnce() -> String) -> PinToken {
        let mut g = self.live.lock();
        g.0 += 1;
        let id = g.0;
        let tag = format!(
            "{} [thread {}]",
            owner(),
            std::thread::current().name().unwrap_or("?")
        );
        g.1.insert(id, tag);
        PinToken { id }
    }

    /// No-op outside `strict-invariants` builds.
    #[cfg(not(feature = "strict-invariants"))]
    pub fn pin(&self, _owner: impl FnOnce() -> String) -> PinToken {
        PinToken {}
    }

    /// Releases a pin.
    #[cfg(feature = "strict-invariants")]
    pub fn unpin(&self, token: &PinToken) {
        self.live.lock().1.remove(&token.id);
    }

    /// No-op outside `strict-invariants` builds.
    #[cfg(not(feature = "strict-invariants"))]
    pub fn unpin(&self, _token: &PinToken) {}

    /// Number of currently live pins (always 0 without the feature).
    pub fn live_count(&self) -> usize {
        #[cfg(feature = "strict-invariants")]
        {
            self.live.lock().1.len()
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            0
        }
    }

    /// Panics with every outstanding owner tag if any pin is still live.
    /// `context` names the quiesce point (e.g. `"BufferPool::clear"`).
    pub fn assert_none_live(&self, context: &str) {
        #[cfg(feature = "strict-invariants")]
        {
            let g = self.live.lock();
            if !g.1.is_empty() {
                let owners: Vec<&str> = g.1.values().map(String::as_str).collect();
                panic!(
                    "pin leak at {context}: {} guard(s) still live: {}",
                    owners.len(),
                    owners.join("; ")
                );
            }
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            let _ = context;
        }
    }
}

#[cfg(all(test, feature = "strict-invariants"))]
mod tests {
    use super::*;

    #[test]
    fn pin_unpin_roundtrip() {
        let t = PinTracker::new();
        let a = t.pin(|| "page 1".to_string());
        let b = t.pin(|| "page 2".to_string());
        assert_eq!(t.live_count(), 2);
        t.unpin(&a);
        t.unpin(&b);
        t.assert_none_live("test");
    }

    #[test]
    #[should_panic(expected = "pin leak at test: 1 guard(s) still live")]
    fn leak_is_reported_with_owner() {
        let t = PinTracker::new();
        let _leaked = t.pin(|| "page 7 via scan".to_string());
        t.assert_none_live("test");
    }
}
