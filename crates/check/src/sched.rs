//! The deterministic scheduler.
//!
//! A model run executes the checked closure on real OS threads, but only
//! **one thread is runnable at any instant**: every synchronization
//! operation performed through the [`crate::sync`] wrappers is a *yield
//! point* where the scheduler picks which thread runs next. Because shared
//! state is only touched between yield points, the set of schedules the
//! scheduler can produce covers every observable interleaving of the
//! wrapped operations.
//!
//! Exploration is a stateless depth-first search: each run replays a prefix
//! of recorded scheduling choices and then takes the first untried branch;
//! the branch record of the finished run determines the next prefix. A
//! failing run's complete choice list is its **schedule string** — feeding
//! it to [`replay`] re-executes exactly that interleaving.

use std::collections::HashMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Distinguishes executions so a sync object accidentally reused across
/// model iterations re-registers instead of using a stale resource id.
static EXEC_GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<ExecInner>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The (execution, thread-id) pair of the calling thread, when it is a
/// registered model thread.
pub(crate) fn current_ctx() -> Option<(Arc<ExecInner>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<ExecInner>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Marker panic used to unwind model threads when an execution aborts
/// (failure elsewhere or step-limit). Not itself a failure.
pub(crate) struct AbortUnwind;

/// How the next branching choice is produced.
enum Strategy {
    /// DFS: beyond the replayed prefix, always take branch 0.
    First,
    /// Seed-driven pseudo-random branch selection (xorshift).
    Random(u64),
}

/// What a model thread is currently doing, from the scheduler's viewpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    BlockedMutex(usize),
    BlockedRw { rid: usize, write: bool },
    BlockedCv(usize),
    BlockedJoin(usize),
    Finished,
}

/// Scheduler-level state of one modeled resource.
enum Res {
    Mutex { held: bool },
    Rw { readers: usize, writer: bool },
    Cv,
}

struct SchedState {
    threads: Vec<Run>,
    /// Index of the only thread allowed to run; `usize::MAX` when none.
    current: usize,
    resources: Vec<Res>,
    /// Replayed choice prefix (branching decisions only).
    prefix: Vec<usize>,
    cursor: usize,
    strategy: Strategy,
    /// Record of branching decisions taken this run: (chosen, options).
    taken: Vec<(usize, usize)>,
    steps: usize,
    max_steps: usize,
    live: usize,
    failure: Option<String>,
    aborting: bool,
}

pub(crate) struct ExecInner {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    pub(crate) generation: u64,
}

impl ExecInner {
    fn new(prefix: Vec<usize>, strategy: Strategy, max_steps: usize) -> Arc<Self> {
        Arc::new(ExecInner {
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                current: usize::MAX,
                resources: Vec::new(),
                prefix,
                cursor: 0,
                strategy,
                taken: Vec::new(),
                steps: 0,
                max_steps,
                live: 0,
                failure: None,
                aborting: false,
            }),
            cv: StdCondvar::new(),
            generation: EXEC_GENERATION.fetch_add(1, Ordering::Relaxed),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // -- registration -------------------------------------------------------

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Run::Runnable);
        st.live += 1;
        st.threads.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.resources.push(Res::Mutex { held: false });
        st.resources.len() - 1
    }

    pub(crate) fn register_rwlock(&self) -> usize {
        let mut st = self.lock();
        st.resources.push(Res::Rw { readers: 0, writer: false });
        st.resources.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.resources.push(Res::Cv);
        st.resources.len() - 1
    }

    // -- scheduling core ----------------------------------------------------

    /// Picks the next `current` among runnable threads, consuming a choice
    /// when more than one is enabled. Callers must arrange to block until
    /// they are scheduled again if the choice lands elsewhere.
    fn schedule_next(&self, st: &mut SchedState) {
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Run::Runnable))
            .map(|(i, _)| i)
            .collect();
        match enabled.len() {
            0 => {
                if st.live > 0 && !st.aborting {
                    let held: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| !matches!(r, Run::Finished))
                        .map(|(i, r)| format!("t{i}:{r:?}"))
                        .collect();
                    self.fail_locked(st, format!("deadlock: all live threads blocked [{}]", held.join(", ")));
                }
                st.current = usize::MAX;
                self.cv.notify_all();
            }
            1 => {
                st.current = enabled[0];
                st.steps += 1;
                self.cv.notify_all();
            }
            n => {
                let choice = if st.cursor < st.prefix.len() {
                    st.prefix[st.cursor].min(n - 1)
                } else {
                    match &mut st.strategy {
                        Strategy::First => 0,
                        Strategy::Random(s) => {
                            // xorshift64*: deterministic per seed.
                            *s ^= *s << 13;
                            *s ^= *s >> 7;
                            *s ^= *s << 17;
                            (*s % n as u64) as usize
                        }
                    }
                };
                st.cursor += 1;
                st.taken.push((choice, n));
                st.current = enabled[choice];
                st.steps += 1;
                self.cv.notify_all();
            }
        }
        if st.steps > st.max_steps && !st.aborting {
            self.fail_locked(st, format!("step limit exceeded ({} steps)", st.max_steps));
        }
    }

    /// Blocks the calling model thread until it is scheduled again.
    fn wait_scheduled(&self, mut st: std::sync::MutexGuard<'_, SchedState>, tid: usize) {
        while st.current != tid && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.aborting && !matches!(st.threads[tid], Run::Finished) {
            drop(st);
            std::panic::panic_any(AbortUnwind);
        }
    }

    /// A plain yield point: re-run the scheduler, possibly switching away.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortUnwind);
        }
        self.schedule_next(&mut st);
        self.wait_scheduled(st, tid);
    }

    /// Records a failure, aborts the execution, wakes everyone.
    fn fail_locked(&self, st: &mut SchedState, msg: String) {
        if st.failure.is_none() {
            let sched = encode_schedule(&st.taken);
            st.failure = Some(format!("{msg} [schedule {sched}]"));
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    pub(crate) fn fail(&self, msg: String) {
        let mut st = self.lock();
        self.fail_locked(&mut st, msg);
    }

    // -- blocking operations ------------------------------------------------

    pub(crate) fn op_acquire_mutex(&self, tid: usize, rid: usize) {
        self.yield_point(tid);
        loop {
            let mut st = self.lock();
            match &mut st.resources[rid] {
                Res::Mutex { held } if !*held => {
                    *held = true;
                    return;
                }
                Res::Mutex { .. } => {
                    st.threads[tid] = Run::BlockedMutex(rid);
                    self.schedule_next(&mut st);
                    self.wait_scheduled(st, tid);
                }
                _ => unreachable!("resource {rid} is not a mutex"),
            }
        }
    }

    /// Non-blocking acquire attempt; still a scheduling point.
    pub(crate) fn op_try_acquire_mutex(&self, tid: usize, rid: usize) -> bool {
        self.yield_point(tid);
        let mut st = self.lock();
        match &mut st.resources[rid] {
            Res::Mutex { held } if !*held => {
                *held = true;
                true
            }
            Res::Mutex { .. } => false,
            _ => unreachable!("resource {rid} is not a mutex"),
        }
    }

    pub(crate) fn op_release_mutex(&self, rid: usize) {
        let mut st = self.lock();
        match &mut st.resources[rid] {
            Res::Mutex { held } => *held = false,
            _ => unreachable!("resource {rid} is not a mutex"),
        }
        wake_mutex_waiters(&mut st, rid);
        self.cv.notify_all();
    }

    pub(crate) fn op_acquire_rw(&self, tid: usize, rid: usize, write: bool) {
        self.yield_point(tid);
        loop {
            let mut st = self.lock();
            match &mut st.resources[rid] {
                Res::Rw { readers, writer } => {
                    let free = if write { !*writer && *readers == 0 } else { !*writer };
                    if free {
                        if write {
                            *writer = true;
                        } else {
                            *readers += 1;
                        }
                        return;
                    }
                    st.threads[tid] = Run::BlockedRw { rid, write };
                    self.schedule_next(&mut st);
                    self.wait_scheduled(st, tid);
                }
                _ => unreachable!("resource {rid} is not a rwlock"),
            }
        }
    }

    pub(crate) fn op_release_rw(&self, rid: usize, write: bool) {
        let mut st = self.lock();
        match &mut st.resources[rid] {
            Res::Rw { readers, writer } => {
                if write {
                    *writer = false;
                } else {
                    *readers = readers.saturating_sub(1);
                }
            }
            _ => unreachable!("resource {rid} is not a rwlock"),
        }
        for r in st.threads.iter_mut() {
            if matches!(r, Run::BlockedRw { rid: b, .. } if *b == rid) {
                *r = Run::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Condvar wait: release `mutex_rid`, block on `cv_rid`, and on wake-up
    /// re-acquire the mutex at the scheduler level before returning.
    pub(crate) fn op_cv_wait(&self, tid: usize, cv_rid: usize, mutex_rid: usize) {
        {
            let mut st = self.lock();
            match &mut st.resources[mutex_rid] {
                Res::Mutex { held } => *held = false,
                _ => unreachable!("resource {mutex_rid} is not a mutex"),
            }
            wake_mutex_waiters(&mut st, mutex_rid);
            st.threads[tid] = Run::BlockedCv(cv_rid);
            self.schedule_next(&mut st);
            self.wait_scheduled(st, tid);
        }
        // Notified (possibly spuriously): contend for the mutex again.
        loop {
            let mut st = self.lock();
            match &mut st.resources[mutex_rid] {
                Res::Mutex { held } if !*held => {
                    *held = true;
                    return;
                }
                Res::Mutex { .. } => {
                    st.threads[tid] = Run::BlockedMutex(mutex_rid);
                    self.schedule_next(&mut st);
                    self.wait_scheduled(st, tid);
                }
                _ => unreachable!("resource {mutex_rid} is not a mutex"),
            }
        }
    }

    /// Wakes every waiter of the condvar. `notify_one` also maps here:
    /// waking more threads than strictly necessary is a legal condvar
    /// behavior (spurious wakeups), so this over-approximation is sound.
    pub(crate) fn op_notify(&self, cv_rid: usize) {
        let mut st = self.lock();
        for r in st.threads.iter_mut() {
            if matches!(r, Run::BlockedCv(c) if *c == cv_rid) {
                *r = Run::Runnable;
            }
        }
        self.cv.notify_all();
    }

    pub(crate) fn op_join(&self, tid: usize, target: usize) {
        self.yield_point(tid);
        loop {
            let mut st = self.lock();
            if matches!(st.threads[target], Run::Finished) {
                return;
            }
            st.threads[tid] = Run::BlockedJoin(target);
            self.schedule_next(&mut st);
            self.wait_scheduled(st, tid);
        }
    }

    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid] = Run::Finished;
        st.live -= 1;
        for r in st.threads.iter_mut() {
            if matches!(r, Run::BlockedJoin(t) if *t == tid) {
                *r = Run::Runnable;
            }
        }
        if st.live == 0 {
            st.current = usize::MAX;
            self.cv.notify_all();
        } else {
            self.schedule_next(&mut st);
        }
    }

    fn wait_all_finished(&self) {
        let mut st = self.lock();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn wake_mutex_waiters(st: &mut SchedState, rid: usize) {
    for r in st.threads.iter_mut() {
        if matches!(r, Run::BlockedMutex(m) if *m == rid) {
            *r = Run::Runnable;
        }
    }
}

// ---------------------------------------------------------------------------
// Spawning model threads
// ---------------------------------------------------------------------------

/// Runs `f` as a registered model thread, reporting panics as failures.
pub(crate) fn spawn_model_thread<T: Send + 'static>(
    exec: &Arc<ExecInner>,
    tid: usize,
    f: impl FnOnce() -> T + Send + 'static,
) -> (std::thread::JoinHandle<()>, Arc<StdMutex<Option<T>>>) {
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("payg-check-t{tid}"))
        .spawn(move || {
            set_ctx(Some((Arc::clone(&exec), tid)));
            // Wait until the scheduler picks this thread for the first time.
            {
                let st = exec.lock();
                exec.wait_scheduled(st, tid);
            }
            let result = std::panic::catch_unwind(AssertUnwindSafe(f));
            set_ctx(None);
            match result {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
                }
                Err(payload) => {
                    if payload.downcast_ref::<AbortUnwind>().is_none() {
                        // `&*payload`: pass the payload itself as `dyn Any`,
                        // not the Box (which would defeat the downcasts).
                        exec.fail(panic_message(&*payload));
                    }
                }
            }
            exec.finish_thread(tid);
        })
        .expect("spawn model thread");
    (handle, slot)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

// ---------------------------------------------------------------------------
// Public driver
// ---------------------------------------------------------------------------

/// A failing interleaving found by the checker.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic / invariant message from the failing run.
    pub message: String,
    /// The schedule string reproducing the failure via [`replay`].
    pub schedule: String,
}

/// Result of a checking session.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct interleavings executed.
    pub iterations: usize,
    /// True when the DFS explored the entire schedule space.
    pub exhausted: bool,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            Some(fail) => write!(
                f,
                "FAILED after {} interleavings: {} (replay with schedule {})",
                self.iterations, fail.message, fail.schedule
            ),
            None => write!(
                f,
                "ok: {} interleavings explored{}",
                self.iterations,
                if self.exhausted { " (exhaustive)" } else { " (bounded)" }
            ),
        }
    }
}

/// Configuration for a checking session.
#[derive(Debug, Clone)]
pub struct Checker {
    max_iterations: usize,
    max_steps: usize,
    random_seed: Option<u64>,
    random_iterations: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_iterations: 100_000,
            max_steps: 100_000,
            random_seed: None,
            random_iterations: 0,
        }
    }
}

impl Checker {
    /// Exhaustive DFS exploration (bounded by `max_iterations`).
    pub fn exhaustive() -> Self {
        Self::default()
    }

    /// Caps the number of interleavings explored.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Caps scheduling steps per interleaving (livelock guard).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Adds `iterations` seed-driven random schedules after (instead of)
    /// DFS: useful for huge state spaces.
    pub fn random(mut self, seed: u64, iterations: usize) -> Self {
        self.random_seed = Some(seed);
        self.random_iterations = iterations;
        self
    }

    /// Runs `f` repeatedly under distinct schedules. Returns the report;
    /// never panics on model failure (see [`model`] for the panicking
    /// variant).
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> Report {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        if let Some(seed) = self.random_seed {
            return self.check_random(seed, f);
        }
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let run = run_once(prefix.clone(), Strategy::First, self.max_steps, Arc::clone(&f));
            if let Some(msg) = run.failure {
                return Report {
                    iterations,
                    exhausted: false,
                    failure: Some(Failure { schedule: encode_schedule(&run.taken), message: msg }),
                };
            }
            // Next DFS prefix: last branch with an untried sibling.
            let mut next: Option<Vec<usize>> = None;
            for i in (0..run.taken.len()).rev() {
                let (chosen, options) = run.taken[i];
                if chosen + 1 < options {
                    let mut p: Vec<usize> = run.taken[..i].iter().map(|&(c, _)| c).collect();
                    p.push(chosen + 1);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) if iterations < self.max_iterations => prefix = p,
                Some(_) => return Report { iterations, exhausted: false, failure: None },
                None => return Report { iterations, exhausted: true, failure: None },
            }
        }
    }

    fn check_random(&self, seed: u64, f: Arc<dyn Fn() + Send + Sync>) -> Report {
        let iters = self.random_iterations.max(1);
        for i in 0..iters {
            let run = run_once(
                Vec::new(),
                Strategy::Random(seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1),
                self.max_steps,
                Arc::clone(&f),
            );
            if let Some(msg) = run.failure {
                return Report {
                    iterations: i + 1,
                    exhausted: false,
                    failure: Some(Failure { schedule: encode_schedule(&run.taken), message: msg }),
                };
            }
        }
        Report { iterations: iters, exhausted: false, failure: None }
    }
}

struct RunOutcome {
    taken: Vec<(usize, usize)>,
    failure: Option<String>,
}

fn run_once(
    prefix: Vec<usize>,
    strategy: Strategy,
    max_steps: usize,
    f: Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let exec = ExecInner::new(prefix, strategy, max_steps);
    let tid0 = exec.register_thread();
    {
        // Make tid0 current so the root thread starts immediately.
        let mut st = exec.lock();
        st.current = tid0;
    }
    let (handle, _slot) = spawn_model_thread(&exec, tid0, move || f());
    exec.wait_all_finished();
    let _ = handle.join();
    // Any stragglers spawned by the model but never joined have finished
    // (live == 0 counts every registered thread).
    let st = exec.lock();
    RunOutcome { taken: st.taken.clone(), failure: st.failure.clone() }
}

/// Checks `f` exhaustively and panics with the failing schedule if any
/// interleaving fails — the loom-style entry point.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    let report = Checker::exhaustive().check(f);
    if let Some(fail) = report.failure {
        panic!(
            "model check failed after {} interleavings: {} (schedule {})",
            report.iterations, fail.message, fail.schedule
        );
    }
}

/// Re-runs `f` under exactly the given schedule string (from a
/// [`Failure`]); returns that single run's report.
pub fn replay(schedule: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
    let prefix = decode_schedule(schedule);
    let run = run_once(prefix, Strategy::First, 100_000, Arc::new(f));
    Report {
        iterations: 1,
        exhausted: false,
        failure: run.failure.map(|msg| Failure {
            schedule: encode_schedule(&run.taken),
            message: msg,
        }),
    }
}

fn encode_schedule(taken: &[(usize, usize)]) -> String {
    let parts: Vec<String> = taken.iter().map(|&(c, _)| c.to_string()).collect();
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(".")
    }
}

fn decode_schedule(s: &str) -> Vec<usize> {
    if s == "-" {
        return Vec::new();
    }
    s.split('.').filter_map(|p| p.parse().ok()).collect()
}

// ---------------------------------------------------------------------------
// Registration helper shared by the sync wrappers
// ---------------------------------------------------------------------------

/// Lazily maps a sync object to a per-execution resource id, re-registering
/// when the object outlives one execution (generation mismatch).
#[derive(Default)]
pub(crate) struct ResourceCell {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl ResourceCell {
    pub(crate) const fn new() -> Self {
        ResourceCell { slot: StdMutex::new(None) }
    }

    pub(crate) fn id(&self, exec: &Arc<ExecInner>, register: impl FnOnce() -> usize) -> usize {
        let mut slot = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match *slot {
            Some((generation, rid)) if generation == exec.generation => rid,
            _ => {
                let rid = register();
                *slot = Some((exec.generation, rid));
                rid
            }
        }
    }
}

/// Per-execution scratch storage for model tests that need a place to stash
/// invariant observations keyed by name (e.g. per-key load counters).
#[derive(Default)]
pub struct Observations {
    map: StdMutex<HashMap<String, u64>>,
}

impl Observations {
    /// New, empty observation table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, returning the new value.
    pub fn add(&self, name: &str, delta: u64) -> u64 {
        let mut m = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let e = m.entry(name.to_string()).or_insert(0);
        *e += delta;
        *e
    }

    /// Reads a counter (0 when never written).
    pub fn get(&self, name: &str) -> u64 {
        let m = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        m.get(name).copied().unwrap_or(0)
    }
}
