//! Model checks of the cold-path I/O stage's submit/complete/cancel
//! protocol.
//!
//! `MiniStage` ports `payg-storage::iostage`'s request protocol onto the
//! modeled primitives: pool misses install a single-flight `Loading`
//! placeholder and submit a fetch request to a bounded queue, a worker
//! drains the queue in batches (one physical read per batch — the
//! coalescing step), and completes each request individually — publish on
//! success, fail + quarantine on corruption. Prefetch submissions the
//! queue sheds at capacity are *cancelled*: the submitter removes its own
//! placeholder and broadcasts, so pins that joined it re-inspect the map
//! instead of waiting forever. The checker explores interleavings and
//! proves:
//!
//! * a shed prefetch never strands a joined waiter — every schedule
//!   terminates and the page still loads, exactly once,
//! * demand pins racing a staged prefetch coalesce onto one physical
//!   read (single-flight holds through the stage),
//! * one corrupt page inside a coalesced batch fails only its own
//!   request: neighbours publish, the bad key quarantines, and the two
//!   states are never simultaneous.

use payg_check::sync::{Condvar, Mutex};
use payg_check::{thread, Checker};
use std::collections::BTreeMap;
use std::sync::Arc;

const BOUND: usize = 2000;
/// Fail-fast pins a quarantine entry absorbs before the store is retried.
const QUARANTINE_TTL: usize = 2;

fn page_byte(key: u32) -> u8 {
    key as u8 ^ 0xA5
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PinOutcome {
    Resident(u8),
    /// Served from quarantine without a store read.
    FailFast,
    /// This pin waited on a staged load that failed.
    WaitFailed,
}

struct LoadState {
    /// `None` = in flight, `Some(true)` = published, `Some(false)` = failed.
    outcome: Mutex<Option<bool>>,
    cv: Condvar,
}

impl LoadState {
    fn new() -> Arc<Self> {
        Arc::new(LoadState { outcome: Mutex::new(None), cv: Condvar::new() })
    }

    fn settle(&self, published: bool) {
        *self.outcome.lock() = Some(published);
        self.cv.notify_all();
    }

    /// Returns `true` when the load failed; `false` means published (or
    /// cancelled — the caller re-inspects the map either way).
    fn wait(&self) -> bool {
        let mut o = self.outcome.lock();
        while o.is_none() {
            self.cv.wait(&mut o);
        }
        *o == Some(false)
    }
}

enum Slot {
    Loading(Arc<LoadState>),
    Resident(u8),
}

struct MapState {
    map: BTreeMap<u32, Slot>,
    quarantine: BTreeMap<u32, usize>,
}

struct QueueState {
    pending: Vec<(u32, Arc<LoadState>)>,
    closed: bool,
}

/// The stage's submission queue plus the pool map it completes into.
struct MiniStage {
    state: Mutex<MapState>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// Prefetch submissions beyond this many pending requests are shed.
    prefetch_cap: usize,
    /// Physical reads issued (one per popped batch — the coalescing step).
    reads: Mutex<usize>,
    /// Keys whose read returns corrupt instead of the page byte.
    corrupt: Vec<u32>,
    ttl: usize,
}

impl MiniStage {
    fn new(prefetch_cap: usize, corrupt: Vec<u32>) -> Self {
        MiniStage {
            state: Mutex::new(MapState { map: BTreeMap::new(), quarantine: BTreeMap::new() }),
            queue: Mutex::new(QueueState { pending: Vec::new(), closed: false }),
            queue_cv: Condvar::new(),
            prefetch_cap,
            reads: Mutex::new(0),
            corrupt,
            ttl: QUARANTINE_TTL,
        }
    }

    fn reads(&self) -> usize {
        *self.reads.lock()
    }

    fn resident(&self, key: u32) -> Option<u8> {
        match self.state.lock().map.get(&key) {
            Some(Slot::Resident(b)) => Some(*b),
            _ => None,
        }
    }

    fn quarantined(&self, key: u32) -> bool {
        self.state.lock().quarantine.contains_key(&key)
    }

    /// Enqueue a request the worker must complete. Urgent submissions are
    /// always accepted; prefetch submissions are shed at capacity.
    fn enqueue(&self, key: u32, ls: &Arc<LoadState>, urgent: bool) -> bool {
        let mut q = self.queue.lock();
        assert!(!q.closed, "submit after close");
        if !urgent && q.pending.len() >= self.prefetch_cap {
            return false;
        }
        q.pending.push((key, Arc::clone(ls)));
        self.queue_cv.notify_all();
        true
    }

    /// `BufferPool::prefetch_submit`'s protocol: install a placeholder,
    /// submit, and on a shed submission *cancel* — remove our own
    /// placeholder and broadcast so joined pins re-inspect.
    fn prefetch_submit(&self, key: u32) -> bool {
        let ls = {
            let mut st = self.state.lock();
            if st.quarantine.contains_key(&key) || st.map.contains_key(&key) {
                return false;
            }
            let ls = LoadState::new();
            st.map.insert(key, Slot::Loading(Arc::clone(&ls)));
            ls
        };
        if self.enqueue(key, &ls, false) {
            return true;
        }
        {
            let mut st = self.state.lock();
            match st.map.get(&key) {
                Some(Slot::Loading(cur)) if Arc::ptr_eq(cur, &ls) => {
                    st.map.remove(&key);
                }
                _ => panic!("cancelled prefetch's placeholder was stolen"),
            }
        }
        ls.settle(true);
        false
    }

    /// `BufferPool::pin` over the staged urgent path: quarantine gate,
    /// then single-flight — loaders submit urgent and wait like any other
    /// completion subscriber.
    fn pin(&self, key: u32) -> PinOutcome {
        loop {
            let ls = {
                let mut st = self.state.lock();
                if st.quarantine.contains_key(&key) {
                    assert!(
                        !matches!(st.map.get(&key), Some(Slot::Resident(_))),
                        "quarantined key is resident"
                    );
                    let left = st.quarantine.get_mut(&key).unwrap();
                    *left -= 1;
                    if *left == 0 {
                        st.quarantine.remove(&key);
                    }
                    return PinOutcome::FailFast;
                }
                match st.map.get(&key) {
                    Some(Slot::Resident(byte)) => return PinOutcome::Resident(*byte),
                    Some(Slot::Loading(ls)) => Arc::clone(ls),
                    None => {
                        let ls = LoadState::new();
                        st.map.insert(key, Slot::Loading(Arc::clone(&ls)));
                        let accepted = self.enqueue(key, &ls, true);
                        assert!(accepted, "urgent submissions are never shed");
                        ls
                    }
                }
            };
            if ls.wait() {
                return PinOutcome::WaitFailed;
            }
            // Published or cancelled: the loop re-inspects the map — a
            // cancelled prefetch leaves it empty and this pin becomes the
            // loader.
        }
    }

    /// The I/O worker: pop everything pending as one batch, charge one
    /// physical read for it, then complete each request individually.
    fn worker(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock();
                loop {
                    if !q.pending.is_empty() {
                        break std::mem::take(&mut q.pending);
                    }
                    if q.closed {
                        return;
                    }
                    self.queue_cv.wait(&mut q);
                }
            };
            *self.reads.lock() += 1;
            for (key, ls) in batch {
                let ok = !self.corrupt.contains(&key);
                {
                    let mut st = self.state.lock();
                    if ok {
                        assert!(
                            !st.quarantine.contains_key(&key),
                            "published a frame for a quarantined key"
                        );
                        match st.map.get(&key) {
                            Some(Slot::Loading(cur)) if Arc::ptr_eq(cur, &ls) => {
                                st.map.insert(key, Slot::Resident(page_byte(key)));
                            }
                            _ => panic!("completing request's placeholder was stolen"),
                        }
                    } else {
                        match st.map.get(&key) {
                            Some(Slot::Loading(cur)) if Arc::ptr_eq(cur, &ls) => {
                                st.map.remove(&key);
                            }
                            _ => panic!("failing request's placeholder was stolen"),
                        }
                        let prev = st.quarantine.insert(key, self.ttl);
                        assert!(prev.is_none(), "double quarantine insert for one failure");
                    }
                }
                ls.settle(ok);
            }
        }
    }

    fn close(&self) {
        self.queue.lock().closed = true;
        self.queue_cv.notify_all();
    }
}

/// Runs `body` with a live worker thread, closing the queue and joining
/// the worker before returning.
fn with_worker(stage: &Arc<MiniStage>, body: impl FnOnce()) {
    let w = {
        let s = Arc::clone(stage);
        thread::spawn(move || s.worker())
    };
    body();
    stage.close();
    w.join().expect("worker thread");
}

#[test]
fn shed_prefetch_never_strands_a_joined_waiter() {
    // Capacity 0: every prefetch submission is shed and must cancel. A
    // racing pin may join the doomed placeholder — the cancel broadcast
    // must wake it, and it must become the loader itself. Every schedule
    // terminates with the page resident after exactly one physical read.
    const KEY: u32 = 3;
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let stage = Arc::new(MiniStage::new(0, Vec::new()));
        with_worker(&stage, || {
            let prefetcher = {
                let s = Arc::clone(&stage);
                thread::spawn(move || s.prefetch_submit(KEY))
            };
            let pinner = {
                let s = Arc::clone(&stage);
                thread::spawn(move || s.pin(KEY))
            };
            let accepted = prefetcher.join().expect("model thread");
            assert!(!accepted, "capacity 0 accepted a prefetch");
            let outcome = pinner.join().expect("model thread");
            assert_eq!(outcome, PinOutcome::Resident(page_byte(KEY)));
        });
        assert_eq!(stage.reads(), 1, "the demand pin loads the page exactly once");
        assert_eq!(stage.resident(KEY), Some(page_byte(KEY)));
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 500,
        "expected >= 500 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn demand_pins_racing_a_prefetch_share_one_read() {
    // Whoever installs the placeholder first (prefetcher or either pin),
    // the others must subscribe to its completion: one queue entry, one
    // physical read, identical bytes for both pins.
    const KEY: u32 = 5;
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let stage = Arc::new(MiniStage::new(8, Vec::new()));
        with_worker(&stage, || {
            let prefetcher = {
                let s = Arc::clone(&stage);
                thread::spawn(move || s.prefetch_submit(KEY))
            };
            let pins: Vec<_> = (0..2)
                .map(|_| {
                    let s = Arc::clone(&stage);
                    thread::spawn(move || s.pin(KEY))
                })
                .collect();
            prefetcher.join().expect("model thread");
            for p in pins {
                let outcome = p.join().expect("model thread");
                assert_eq!(outcome, PinOutcome::Resident(page_byte(KEY)));
            }
        });
        assert_eq!(stage.reads(), 1, "single-flight holds through the stage");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 500,
        "expected >= 500 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn corrupt_page_in_a_coalesced_batch_fails_only_itself() {
    // Two staged prefetches plus pins on both keys; KEY_BAD's read is
    // corrupt. Under every interleaving (including both requests riding
    // one coalesced batch) the good key publishes, the bad key
    // quarantines without ever being resident, and the pin on the bad key
    // gets a typed failure — never a frame, never a hang.
    const KEY_OK: u32 = 10;
    const KEY_BAD: u32 = 11;
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let stage = Arc::new(MiniStage::new(8, vec![KEY_BAD]));
        with_worker(&stage, || {
            stage.prefetch_submit(KEY_OK);
            stage.prefetch_submit(KEY_BAD);
            let good = {
                let s = Arc::clone(&stage);
                thread::spawn(move || s.pin(KEY_OK))
            };
            let bad = {
                let s = Arc::clone(&stage);
                thread::spawn(move || s.pin(KEY_BAD))
            };
            assert_eq!(good.join().expect("model thread"), PinOutcome::Resident(page_byte(KEY_OK)));
            let outcome = bad.join().expect("model thread");
            assert!(
                matches!(outcome, PinOutcome::WaitFailed | PinOutcome::FailFast),
                "bad key produced {outcome:?}"
            );
        });
        assert_eq!(stage.resident(KEY_OK), Some(page_byte(KEY_OK)), "good neighbour publishes");
        assert_eq!(stage.resident(KEY_BAD), None, "corrupt key must not be resident");
        assert!(stage.quarantined(KEY_BAD), "corrupt key quarantines");
        assert!(stage.reads() <= 2, "at most one read per popped batch");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 500,
        "expected >= 500 distinct interleavings, got {}",
        report.iterations
    );
}
