//! Validation of the deterministic scheduler itself: it must find real
//! races, report deadlocks, exhaust small state spaces, and replay a
//! reported schedule to the same failure.

use payg_check::sync::atomic::{AtomicUsize, Ordering};
use payg_check::sync::{Condvar, Mutex};
use payg_check::{model, replay, thread, Checker};
use std::sync::Arc;

/// A racy read-modify-write through an atomic (load then store, not
/// fetch_add): the checker must find the lost update.
fn lost_update() {
    let counter = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&counter);
            thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("join");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_lost_update_race() {
    let report = Checker::exhaustive().check(lost_update);
    let failure = report.failure.expect("checker must find the lost update");
    assert!(failure.message.contains("lost update"), "got: {}", failure.message);
    assert_ne!(failure.schedule, "-", "failing schedule must be non-trivial");
}

#[test]
fn failing_schedule_replays_to_same_failure() {
    let report = Checker::exhaustive().check(lost_update);
    let failure = report.failure.expect("must fail");
    // Replay the exact reported schedule: same interleaving, same failure.
    let replayed = replay(&failure.schedule, lost_update);
    let rf = replayed.failure.expect("replay must reproduce the failure");
    assert!(rf.message.contains("lost update"), "replayed: {}", rf.message);
}

#[test]
fn fetch_add_version_exhausts_clean() {
    let report = Checker::exhaustive().check(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.failure.is_none(), "unexpected: {report}");
    assert!(report.exhausted, "small space must be fully explored: {report}");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

#[test]
fn mutex_protected_increment_exhausts_clean() {
    let report = Checker::exhaustive().check(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut g = c.lock();
                    let v = *g;
                    // The critical section is atomic w.r.t. other lockers
                    // no matter how the scheduler interleaves.
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(*counter.lock(), 3);
    });
    assert!(report.failure.is_none(), "unexpected: {report}");
    assert!(report.exhausted && report.iterations > 1, "{report}");
}

#[test]
fn detects_ab_ba_deadlock() {
    let report = Checker::exhaustive().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let _ = t.join();
    });
    let failure = report.failure.expect("AB-BA deadlock must be detected");
    assert!(failure.message.contains("deadlock"), "got: {}", failure.message);
}

#[test]
fn condvar_handoff_works_under_all_interleavings() {
    let report = Checker::exhaustive().check(|| {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let s2 = Arc::clone(&slot);
        let producer = thread::spawn(move || {
            *s2.0.lock() = Some(42);
            s2.1.notify_one();
        });
        let got = {
            let mut g = slot.0.lock();
            while g.is_none() {
                slot.1.wait(&mut g);
            }
            g.expect("checked Some")
        };
        assert_eq!(got, 42);
        producer.join().expect("join");
    });
    assert!(report.failure.is_none(), "unexpected: {report}");
    assert!(report.iterations > 1, "{report}");
}

/// Waiting with no producer: the wait can never be satisfied in some
/// interleaving orders; with the producer missing entirely it is a
/// guaranteed deadlock the scheduler must call out (not hang on).
#[test]
fn condvar_wait_without_notify_is_a_deadlock_not_a_hang() {
    let report = Checker::exhaustive().max_iterations(16).check(|| {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let mut g = slot.0.lock();
        while g.is_none() {
            slot.1.wait(&mut g);
        }
    });
    let failure = report.failure.expect("must report deadlock");
    assert!(failure.message.contains("deadlock"), "got: {}", failure.message);
}

#[test]
fn random_strategy_finds_the_race_too() {
    let report = Checker::exhaustive().random(0xC0FFEE, 200).check(lost_update);
    assert!(report.failure.is_some(), "random exploration should hit the race: {report}");
}

#[test]
fn model_panics_with_schedule_string() {
    let result = std::panic::catch_unwind(|| model(lost_update));
    let payload = result.expect_err("model() must panic on failure");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("model check failed"), "got: {msg}");
    assert!(msg.contains("schedule"), "must carry replay schedule: {msg}");
}

/// Outside `model`, the wrappers are plain locks: normal multithreaded use
/// must work (this is the fallback mode production code runs in when built
/// with `--cfg payg_check` but executed by ordinary tests).
#[test]
fn fallback_mode_behaves_like_plain_locks() {
    let counter = Arc::new(Mutex::new(0usize));
    let cv = Arc::new(Condvar::new());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = Arc::clone(&counter);
            let cv = Arc::clone(&cv);
            thread::spawn(move || {
                *c.lock() += 1;
                cv.notify_all();
            })
        })
        .collect();
    {
        let mut g = counter.lock();
        while *g < 4 {
            cv.wait(&mut g);
        }
    }
    for h in handles {
        h.join().expect("join");
    }
    assert_eq!(*counter.lock(), 4);
    assert!(counter.try_lock().is_some());
}

#[test]
fn rwlock_readers_exclude_writer() {
    use payg_check::sync::RwLock;
    let report = Checker::exhaustive().check(|| {
        let lock = Arc::new(RwLock::new(0u32));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&lock);
                thread::spawn(move || {
                    let mut g = l.write();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        let l = Arc::clone(&lock);
        let reader = thread::spawn(move || {
            let g = l.read();
            // A reader must never observe a torn value (always 0..=2).
            assert!(*g <= 2);
        });
        for h in writers {
            h.join().expect("join");
        }
        reader.join().expect("join");
        assert_eq!(*lock.read(), 2);
    });
    assert!(report.failure.is_none(), "unexpected: {report}");
}
