//! Model checks of the table's versioned-serving protocol.
//!
//! `MiniVersionedTable` ports `payg-table`'s publish/retire state machine
//! onto the modeled primitives: an Arc'd immutable version (vno, main
//! handle, row counts), a version chain behind an `RwLock`, a merge that
//! side-builds a new main and publishes it with the old main's retirement
//! armed, and readers that pin a version with one cheap Arc clone. The
//! checker explores interleavings of 2 readers × 1 merger and proves:
//!
//! * **snapshot stability** — a pinned version answers the same row count
//!   every time it is read, across a concurrent merge publish;
//! * **exactly-once retirement** — the replaced main's chain is retired
//!   exactly once, and only after the last snapshot holding it drops;
//! * **abort safety** — a merge that dies mid-side-build retires its
//!   half-built chain, leaves the old version current, and a retry
//!   succeeds;
//! * **unload-vs-scan** — an unload routed through the chain never touches
//!   a retired-but-pinned main.

use payg_check::sync::{Mutex, RwLock};
use payg_check::{thread, Checker};
use std::collections::BTreeMap;
use std::sync::Arc;

const BOUND: usize = 4000;

/// Store-side chain bookkeeping: which chains exist, how often each was
/// retired, and how often each was unloaded while retired.
#[derive(Default)]
struct ChainLedger {
    /// chain id → retire count (must end at exactly 1 per replaced chain).
    retired: BTreeMap<u64, usize>,
    live: Vec<u64>,
}

struct Registry {
    ledger: Mutex<ChainLedger>,
}

impl Registry {
    fn new() -> Arc<Self> {
        Arc::new(Registry { ledger: Mutex::new(ChainLedger::default()) })
    }

    fn create_chain(&self, id: u64) {
        self.ledger.lock().live.push(id);
    }

    fn retire(&self, id: u64) {
        let mut l = self.ledger.lock();
        *l.retired.entry(id).or_insert(0) += 1;
        l.live.retain(|&c| c != id);
    }

    fn retire_count(&self, id: u64) -> usize {
        self.ledger.lock().retired.get(&id).copied().unwrap_or(0)
    }

    fn live(&self) -> Vec<u64> {
        self.ledger.lock().live.clone()
    }
}

/// The model's `MainHandle`: a chain id whose retirement is armed at
/// publish time and runs when the last `Arc` drops — never while any
/// snapshot can still read it.
struct MainHandle {
    chain: u64,
    rows: u64,
    registry: Arc<Registry>,
    retire_armed: Mutex<bool>,
}

impl MainHandle {
    fn new(chain: u64, rows: u64, registry: &Arc<Registry>) -> Arc<Self> {
        registry.create_chain(chain);
        Arc::new(MainHandle {
            chain,
            rows,
            registry: Arc::clone(registry),
            retire_armed: Mutex::new(false),
        })
    }

    fn schedule_retire(&self) {
        *self.retire_armed.lock() = true;
    }

    /// Reading a retired-but-held main must still be legal: the ledger
    /// keeps the chain live until the drop below actually runs.
    fn read(&self) -> u64 {
        assert!(
            self.registry.live().contains(&self.chain),
            "read from a chain retired while a snapshot held it"
        );
        self.rows
    }
}

impl Drop for MainHandle {
    fn drop(&mut self) {
        if *self.retire_armed.lock() {
            self.registry.retire(self.chain);
        }
    }
}

/// One immutable published version.
struct Version {
    vno: u64,
    main: Arc<MainHandle>,
    delta_rows: u64,
}

impl Version {
    fn total(&self) -> u64 {
        self.main.read() + self.delta_rows
    }
}

struct MiniVersionedTable {
    chain: RwLock<Arc<Version>>,
    registry: Arc<Registry>,
}

impl MiniVersionedTable {
    fn new(main_rows: u64, delta_rows: u64) -> Arc<Self> {
        let registry = Registry::new();
        let v0 = Arc::new(Version {
            vno: 0,
            main: MainHandle::new(0, main_rows, &registry),
            delta_rows,
        });
        Arc::new(MiniVersionedTable { chain: RwLock::new(v0), registry })
    }

    /// `Table::session()`: one Arc clone under the read lock.
    fn pin(&self) -> Arc<Version> {
        Arc::clone(&self.chain.read())
    }

    /// Online merge: side-build outside any lock, publish under the write
    /// lock, arm the replaced main's retirement at publish. `die_mid_build`
    /// models a storage fault killing the side build.
    fn merge(&self, new_chain: u64, die_mid_build: bool) -> Result<(), ()> {
        let base = self.pin();
        let merged_rows = base.total();
        // Side build: the new chain exists before anyone references it.
        let new_main = MainHandle::new(new_chain, merged_rows, &self.registry);
        if die_mid_build {
            // Abort: the side-built chain is nothing but scratch — retire
            // it now (ChainScratch's Drop in the real engine).
            new_main.schedule_retire();
            drop(new_main);
            return Err(());
        }
        let mut cur = self.chain.write();
        cur.main.schedule_retire();
        *cur = Arc::new(Version { vno: cur.vno + 1, main: new_main, delta_rows: 0 });
        Ok(())
    }

    /// `unload_all` routed through the chain: only the *current* version's
    /// main is touched, so a retired-but-pinned main stays readable.
    fn unload_all(&self) {
        let cur = self.pin();
        // Unloading reads the chain's metadata; the assertion inside
        // `read()` is the invariant: the current main is always live.
        let _ = cur.main.read();
    }
}

#[test]
fn pinned_snapshots_are_stable_across_a_merge() {
    const MAIN: u64 = 7;
    const DELTA: u64 = 3;
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let t = MiniVersionedTable::new(MAIN, DELTA);
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    let snap = t.pin();
                    let first = snap.total();
                    thread::yield_now();
                    let second = snap.total();
                    (snap.vno, first, second)
                })
            })
            .collect();
        let merger = {
            let t = Arc::clone(&t);
            thread::spawn(move || t.merge(1, false))
        };
        for r in readers {
            let (vno, first, second) = r.join().expect("reader");
            assert_eq!(first, second, "a pinned version changed between reads");
            assert_eq!(first, MAIN + DELTA, "v{vno} lost or blended rows");
        }
        merger.join().expect("merger").expect("merge succeeds");
        let after = t.pin();
        assert_eq!(after.vno, 1);
        assert_eq!(after.total(), MAIN + DELTA, "merge must preserve the answer");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn replaced_mains_are_retired_exactly_once_after_the_last_pin() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let t = MiniVersionedTable::new(5, 0);
        let registry = Arc::clone(&t.registry);
        let reader = {
            let t = Arc::clone(&t);
            thread::spawn(move || {
                let snap = t.pin();
                thread::yield_now();
                let rows = snap.total();
                // While this pin lives, chain 0 must not have been retired
                // even if the merge already published its replacement.
                (rows, snap)
            })
        };
        let merger = {
            let t = Arc::clone(&t);
            thread::spawn(move || t.merge(1, false))
        };
        let (rows, snap) = reader.join().expect("reader");
        assert_eq!(rows, 5);
        merger.join().expect("merger").expect("merge succeeds");
        if snap.main.chain == 0 {
            // The pin still holds the replaced main: retirement must wait.
            assert_eq!(
                registry.retire_count(0),
                0,
                "retirement ran while a snapshot still held the chain"
            );
        } else {
            // The reader pinned after publish; the last holder of chain 0
            // (the merger) is gone, so it must already be retired — once.
            assert_eq!(registry.retire_count(0), 1, "old main retired exactly once");
        }
        assert_eq!(registry.retire_count(1), 0, "published main must not retire");
        drop(snap);
        assert_eq!(registry.retire_count(0), 1, "old main retired exactly once");
        assert_eq!(registry.retire_count(1), 0, "current main must stay live");
        assert_eq!(registry.live(), vec![1]);
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn aborted_merges_leak_nothing_and_retries_succeed() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let t = MiniVersionedTable::new(4, 2);
        let reader = {
            let t = Arc::clone(&t);
            thread::spawn(move || {
                let snap = t.pin();
                thread::yield_now();
                snap.total()
            })
        };
        let merger = {
            let t = Arc::clone(&t);
            thread::spawn(move || {
                // First attempt dies mid-side-build; the retry succeeds.
                assert!(t.merge(1, true).is_err());
                t.merge(2, false)
            })
        };
        assert_eq!(reader.join().expect("reader"), 6, "reader saw a half-merged state");
        merger.join().expect("merger").expect("retry succeeds");
        let registry = &t.registry;
        assert_eq!(registry.retire_count(1), 1, "aborted side build reclaimed once");
        assert_eq!(registry.retire_count(0), 1, "replaced main retired once");
        assert_eq!(registry.retire_count(2), 0);
        assert_eq!(registry.live(), vec![2], "exactly the published chain survives");
        assert_eq!(t.pin().total(), 6, "retry preserved every row");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn unload_routed_through_the_chain_never_touches_pinned_retired_mains() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let t = MiniVersionedTable::new(3, 1);
        let scanner = {
            let t = Arc::clone(&t);
            thread::spawn(move || {
                let snap = t.pin();
                thread::yield_now();
                // The pinned main must be readable whatever unload/merge
                // did in between (the `read()` assertion is the proof).
                snap.total()
            })
        };
        let churn = {
            let t = Arc::clone(&t);
            thread::spawn(move || {
                t.merge(1, false).expect("merge succeeds");
                t.unload_all();
            })
        };
        assert_eq!(scanner.join().expect("scanner"), 4);
        churn.join().expect("churn");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}
