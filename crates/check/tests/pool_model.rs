//! Model checks of the buffer-pool hot paths.
//!
//! `MiniPool` is a faithful port of `payg-storage::pool`'s concurrency
//! skeleton onto the modeled primitives: the same single-flight publish
//! protocol (a `Loading` placeholder with a done-flag condvar), the same
//! pin counting, and the same evict-unpinned-only rule. The checker
//! exhaustively explores interleavings of these paths and proves the
//! invariants the real pool relies on:
//!
//! * a page is read from the store **at most once per residency**,
//! * a pinned frame is **never** evicted,
//! * guard bytes are stable under concurrent loads and evictions,
//! * pool limits hold once all threads have quiesced.
//!
//! A deliberately broken variant (no `Loading` placeholder) shows the
//! checker actually catches the double-load bug, and that the failing
//! schedule it reports can be replayed verbatim.
//!
//! `BTreeMap` (not `HashMap`) keeps victim selection deterministic per
//! schedule, which exhaustive exploration and replay both require.

use payg_check::sync::atomic::{AtomicUsize, Ordering};
use payg_check::sync::{Condvar, Mutex};
use payg_check::{replay, thread, Checker};
use std::collections::BTreeMap;
use std::sync::Arc;

const SC: Ordering = Ordering::SeqCst;

struct LoadState {
    done: Mutex<bool>,
    cv: Condvar,
}

struct Frame {
    byte: u8,
    pins: AtomicUsize,
}

enum Slot {
    Loading(Arc<LoadState>),
    Resident(Arc<Frame>),
}

fn page_byte(key: u32) -> u8 {
    key as u8 ^ 0x5A
}

struct MiniPool {
    map: Mutex<BTreeMap<u32, Slot>>,
    /// Store reads per key (the store itself would count these).
    reads: Mutex<BTreeMap<u32, usize>>,
    used: AtomicUsize,
    evictions: AtomicUsize,
    limit: usize,
}

struct Guard {
    frame: Arc<Frame>,
}

impl Guard {
    fn byte(&self) -> u8 {
        self.frame.byte
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, SC);
    }
}

impl MiniPool {
    fn new(limit: usize) -> Self {
        MiniPool {
            map: Mutex::new(BTreeMap::new()),
            reads: Mutex::new(BTreeMap::new()),
            used: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            limit,
        }
    }

    /// The store read. Outside the map lock, exactly like the real pool's
    /// `load_and_publish` does its I/O.
    fn read_store(&self, key: u32) -> u8 {
        self.reads.lock().entry(key).and_modify(|c| *c += 1).or_insert(1);
        page_byte(key)
    }

    fn reads_of(&self, key: u32) -> usize {
        self.reads.lock().get(&key).copied().unwrap_or(0)
    }

    /// Single-flight pin: the same protocol as `BufferPool::pin`.
    fn pin(&self, key: u32) -> Guard {
        loop {
            enum Action {
                Load(Arc<LoadState>),
                Wait(Arc<LoadState>),
            }
            let action = {
                let mut map = self.map.lock();
                match map.get(&key) {
                    Some(Slot::Resident(f)) => {
                        f.pins.fetch_add(1, SC);
                        return Guard { frame: Arc::clone(f) };
                    }
                    Some(Slot::Loading(ls)) => Action::Wait(Arc::clone(ls)),
                    None => {
                        let ls =
                            Arc::new(LoadState { done: Mutex::new(false), cv: Condvar::new() });
                        map.insert(key, Slot::Loading(Arc::clone(&ls)));
                        Action::Load(ls)
                    }
                }
            };
            match action {
                Action::Load(ls) => {
                    let byte = self.read_store(key);
                    let frame = Arc::new(Frame { byte, pins: AtomicUsize::new(1) });
                    self.used.fetch_add(1, SC);
                    self.map.lock().insert(key, Slot::Resident(Arc::clone(&frame)));
                    *ls.done.lock() = true;
                    ls.cv.notify_all();
                    self.maybe_evict();
                    return Guard { frame };
                }
                Action::Wait(ls) => {
                    let mut done = ls.done.lock();
                    while !*done {
                        ls.cv.wait(&mut done);
                    }
                    // Published (or since evicted): retry the map.
                }
            }
        }
    }

    /// Evicts unpinned resident frames while over the limit — the rule the
    /// real pool applies via the resource manager's unload passes.
    fn maybe_evict(&self) {
        let mut map = self.map.lock();
        while self.used.load(SC) > self.limit {
            let victim = map.iter().find_map(|(k, s)| match s {
                Slot::Resident(f) if f.pins.load(SC) == 0 => Some(*k),
                _ => None,
            });
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.used.fetch_sub(1, SC);
                    self.evictions.fetch_add(1, SC);
                }
                None => break, // everything pinned: transient overshoot
            }
        }
    }

    fn resident(&self, key: u32) -> bool {
        matches!(self.map.lock().get(&key), Some(Slot::Resident(_)))
    }
}

// ---------------------------------------------------------------------------
// Invariant checks on the correct pool
// ---------------------------------------------------------------------------

/// The full pool models have state spaces far beyond exhaustive reach (no
/// partial-order reduction), so each check explores a bounded prefix of
/// the DFS plus the invariant assertions on every schedule it visits.
const BOUND: usize = 2000;

#[test]
fn single_flight_loads_once_under_all_interleavings() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniPool::new(4));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let p = Arc::clone(&pool);
                thread::spawn(move || {
                    let g = p.pin(7);
                    assert_eq!(g.byte(), page_byte(7), "guard bytes must be stable");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("model thread");
        }
        assert_eq!(pool.reads_of(7), 1, "page read from store more than once per residency");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn waiter_sees_published_frame_not_a_second_load() {
    // Two threads racing on one key: the waiter must adopt the loader's
    // frame, never issue its own read.
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniPool::new(4));
        let p1 = Arc::clone(&pool);
        let a = thread::spawn(move || {
            let g = p1.pin(1);
            assert_eq!(g.byte(), page_byte(1));
        });
        let p2 = Arc::clone(&pool);
        let b = thread::spawn(move || {
            let g = p2.pin(1);
            assert_eq!(g.byte(), page_byte(1));
        });
        a.join().expect("model thread");
        b.join().expect("model thread");
        assert_eq!(pool.reads_of(1), 1);
        assert!(pool.resident(1));
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
}

#[test]
fn pinned_frame_is_never_evicted() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniPool::new(1));
        // Parent holds a pin on key 1 the whole time.
        let held = pool.pin(1);
        let p = Arc::clone(&pool);
        let b = thread::spawn(move || {
            // Over-limit load: must evict *something unpinned*, never key 1.
            let g = p.pin(2);
            assert_eq!(g.byte(), page_byte(2));
        });
        b.join().expect("model thread");
        // The pinned frame survived every eviction attempt, bytes intact.
        assert!(pool.resident(1), "pinned frame was evicted");
        assert_eq!(held.byte(), page_byte(1), "pinned frame bytes changed");
        drop(held);
        // Quiesce: no pins remain; enforcing the limit now must succeed.
        pool.maybe_evict();
        assert!(
            pool.used.load(SC) <= 1,
            "pool limit violated after quiesce: {} frames resident",
            pool.used.load(SC)
        );
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    // This model is small enough to explore completely: the invariant holds
    // under EVERY interleaving, not just a bounded sample.
    assert!(report.exhausted, "state space should be fully explored");
}

#[test]
fn pin_vs_evict_race_with_reload_is_single_flight_per_residency() {
    // Key 1 may be evicted and reloaded; each residency reads at most once.
    // A pinner of key 1 races a loader of key 2 on a limit-1 pool.
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniPool::new(1));
        let pa = Arc::clone(&pool);
        let a = thread::spawn(move || {
            let g = pa.pin(1);
            assert_eq!(g.byte(), page_byte(1));
        });
        let pb = Arc::clone(&pool);
        let b = thread::spawn(move || {
            let g = pb.pin(2);
            assert_eq!(g.byte(), page_byte(2));
        });
        a.join().expect("model thread");
        b.join().expect("model thread");
        // Each key was loaded at least once; reloads only happen after an
        // eviction, so reads <= 1 + evictions overall.
        let total_reads = pool.reads_of(1) + pool.reads_of(2);
        let evictions = pool.evictions.load(SC);
        assert!(
            total_reads <= 2 + evictions,
            "reads {total_reads} exceed residencies (evictions {evictions})"
        );
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}

// ---------------------------------------------------------------------------
// The broken pool: single-flight removed
// ---------------------------------------------------------------------------

/// `MiniPool::pin` with the `Loading` placeholder deliberately removed —
/// the classic check-then-load race. The checker must find the schedule
/// where two threads both miss and both read the page from the store.
fn broken_double_load_scenario() {
    let pool = Arc::new(MiniPool::new(4));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let p = Arc::clone(&pool);
            thread::spawn(move || {
                // Check...
                let hit = {
                    let map = p.map.lock();
                    match map.get(&9) {
                        Some(Slot::Resident(f)) => {
                            f.pins.fetch_add(1, SC);
                            Some(Arc::clone(f))
                        }
                        _ => None,
                    }
                };
                // ...then load, without publishing intent first.
                let _g = match hit {
                    Some(frame) => Guard { frame },
                    None => {
                        let byte = p.read_store(9);
                        let frame = Arc::new(Frame { byte, pins: AtomicUsize::new(1) });
                        p.used.fetch_add(1, SC);
                        p.map.lock().insert(9, Slot::Resident(Arc::clone(&frame)));
                        Guard { frame }
                    }
                };
            })
        })
        .collect();
    for t in threads {
        t.join().expect("model thread");
    }
    assert_eq!(pool.reads_of(9), 1, "page read from store more than once per residency");
}

#[test]
#[should_panic(expected = "model check failed")]
fn reintroduced_double_load_bug_is_caught() {
    payg_check::model(broken_double_load_scenario);
}

#[test]
fn double_load_failure_reports_a_replayable_schedule() {
    let report = Checker::exhaustive().check(broken_double_load_scenario);
    let failure = report.failure.expect("the double-load race must be found");
    assert!(
        failure.message.contains("more than once per residency"),
        "unexpected failure message: {}",
        failure.message
    );
    // The reported schedule replays to the exact same failure, so a CI hit
    // can be reproduced locally from the schedule string alone.
    let replayed = replay(&failure.schedule, broken_double_load_scenario)
        .failure
        .expect("replaying the failing schedule must fail again");
    assert_eq!(replayed.message, failure.message);
}
