//! Model checks of the quarantine/retry state machine.
//!
//! `MiniQuarantinePool` ports `payg-storage::pool`'s *failure* paths onto
//! the modeled primitives: the single-flight load whose loader may fail,
//! the failure broadcast that wakes waiters with an error (never a
//! published frame), the per-key quarantine entry whose TTL is measured in
//! fail-fast pins, and the retry-the-store transition when the entry
//! drains. The checker explores interleavings of these paths and proves:
//!
//! * a quarantined key is **never** simultaneously resident,
//! * a failed load never strands a `Loading` placeholder (no stuck
//!   waiters — every schedule terminates),
//! * fail-fast pins **never** touch the store,
//! * once the entry drains and the store heals, the next pins reload the
//!   page and see correct bytes.

use payg_check::sync::{Condvar, Mutex};
use payg_check::{thread, Checker};
use std::collections::BTreeMap;
use std::sync::Arc;

const BOUND: usize = 2000;
const KEY: u32 = 7;

fn page_byte(key: u32) -> u8 {
    key as u8 ^ 0x5A
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PinOutcome {
    Resident(u8),
    /// Served from quarantine without a store read.
    FailFast,
    /// This pin was the elected loader and its read failed.
    LoadFailed,
    /// This pin waited on a load that failed.
    WaitFailed,
}

impl PinOutcome {
    fn is_err(self) -> bool {
        !matches!(self, PinOutcome::Resident(_))
    }
}

struct LoadState {
    /// `None` = in flight, `Some(true)` = published, `Some(false)` = failed.
    outcome: Mutex<Option<bool>>,
    cv: Condvar,
}

enum Slot {
    Loading(Arc<LoadState>),
    Resident(u8),
}

struct State {
    map: BTreeMap<u32, Slot>,
    /// key → fail-fast pins left before the store is retried.
    quarantine: BTreeMap<u32, usize>,
}

/// The store: the first `fail_first` reads fail (sticky corruption),
/// everything after succeeds (the medium was replaced).
struct StoreSim {
    reads: usize,
    fail_first: usize,
}

struct MiniQuarantinePool {
    state: Mutex<State>,
    store: Mutex<StoreSim>,
    ttl: usize,
}

impl MiniQuarantinePool {
    fn new(fail_first: usize, ttl: usize) -> Self {
        MiniQuarantinePool {
            state: Mutex::new(State { map: BTreeMap::new(), quarantine: BTreeMap::new() }),
            store: Mutex::new(StoreSim { reads: 0, fail_first }),
            ttl,
        }
    }

    fn reads(&self) -> usize {
        self.store.lock().reads
    }

    fn resident(&self, key: u32) -> bool {
        matches!(self.state.lock().map.get(&key), Some(Slot::Resident(_)))
    }

    fn quarantined(&self, key: u32) -> bool {
        self.state.lock().quarantine.contains_key(&key)
    }

    /// The store read, outside the state lock — exactly where the real
    /// pool's `load_frame` does its I/O.
    fn read_store(&self) -> bool {
        let mut s = self.store.lock();
        s.reads += 1;
        s.reads > s.fail_first
    }

    /// `BufferPool::pin`'s failure-path protocol: quarantine gate, then
    /// single-flight with failure broadcast and quarantine insertion.
    fn pin(&self, key: u32) -> PinOutcome {
        loop {
            enum Action {
                Load(Arc<LoadState>),
                Wait(Arc<LoadState>),
            }
            let action = {
                let mut st = self.state.lock();
                if st.quarantine.contains_key(&key) {
                    assert!(
                        !matches!(st.map.get(&key), Some(Slot::Resident(_))),
                        "quarantined key is resident"
                    );
                    let left = st.quarantine.get_mut(&key).unwrap();
                    *left -= 1;
                    if *left == 0 {
                        st.quarantine.remove(&key);
                    }
                    return PinOutcome::FailFast;
                }
                match st.map.get(&key) {
                    Some(Slot::Resident(byte)) => return PinOutcome::Resident(*byte),
                    Some(Slot::Loading(ls)) => Action::Wait(Arc::clone(ls)),
                    None => {
                        let ls =
                            Arc::new(LoadState { outcome: Mutex::new(None), cv: Condvar::new() });
                        st.map.insert(key, Slot::Loading(Arc::clone(&ls)));
                        Action::Load(ls)
                    }
                }
            };
            match action {
                Action::Load(ls) => {
                    let ok = self.read_store();
                    {
                        let mut st = self.state.lock();
                        let removed = st.map.remove(&key);
                        assert!(
                            matches!(removed, Some(Slot::Loading(_))),
                            "loader's placeholder was stolen"
                        );
                        if ok {
                            assert!(
                                !st.quarantine.contains_key(&key),
                                "published a frame for a quarantined key"
                            );
                            st.map.insert(key, Slot::Resident(page_byte(key)));
                        } else {
                            let prev = st.quarantine.insert(key, self.ttl);
                            assert!(prev.is_none(), "double quarantine insert for one failure");
                        }
                    }
                    *ls.outcome.lock() = Some(ok);
                    ls.cv.notify_all();
                    return if ok {
                        PinOutcome::Resident(page_byte(key))
                    } else {
                        PinOutcome::LoadFailed
                    };
                }
                Action::Wait(ls) => {
                    let failed = {
                        let mut o = ls.outcome.lock();
                        while o.is_none() {
                            ls.cv.wait(&mut o);
                        }
                        *o == Some(false)
                    };
                    if failed {
                        return PinOutcome::WaitFailed;
                    }
                    // Published: retry the map (it may have been evicted or
                    // re-quarantined since — the loop re-decides).
                }
            }
        }
    }
}

#[test]
fn failed_load_quarantines_and_wakes_waiters_under_all_interleavings() {
    // The store never heals: every pin must fail with a typed outcome, the
    // store must be read exactly once per elected loader, and no schedule
    // may deadlock a waiter.
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniQuarantinePool::new(usize::MAX, 2));
        let outcomes: Vec<PinOutcome> = (0..3)
            .map(|_| {
                let p = Arc::clone(&pool);
                thread::spawn(move || p.pin(KEY))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("model thread"))
            .collect();
        assert!(outcomes.iter().all(|o| o.is_err()), "a dead store produced a frame");
        let loads = outcomes.iter().filter(|o| matches!(o, PinOutcome::LoadFailed)).count();
        assert!(loads >= 1, "someone was elected loader");
        assert_eq!(pool.reads(), loads, "exactly one store read per elected loader");
        assert!(!pool.resident(KEY), "failed key must not be resident");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}

#[test]
fn fail_fast_pins_never_touch_the_store() {
    // With an entry already in quarantine (TTL 3), two racing pins must
    // both be served from it — zero additional store reads, under every
    // interleaving.
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniQuarantinePool::new(usize::MAX, 3));
        assert_eq!(pool.pin(KEY), PinOutcome::LoadFailed, "seeding pin quarantines");
        assert_eq!(pool.reads(), 1);
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pool);
                thread::spawn(move || p.pin(KEY))
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("model thread"), PinOutcome::FailFast);
        }
        assert_eq!(pool.reads(), 1, "fail-fast pins reached the store");
        assert!(pool.quarantined(KEY), "TTL 3 outlives 2 fail-fast pins");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(report.exhausted, "state space should be fully explored");
}

#[test]
fn drained_quarantine_retries_the_store_and_heals() {
    // The store fails exactly once; TTL is 1. Whatever two racing pins do
    // (load-fail vs fail-fast vs wait-fail), the parent must reach a
    // correct resident frame within three more pins, and the quarantine
    // must be empty with the frame resident — never both states at once.
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let pool = Arc::new(MiniQuarantinePool::new(1, 1));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pool);
                thread::spawn(move || p.pin(KEY))
            })
            .collect();
        for t in threads {
            t.join().expect("model thread");
        }
        let healed = (0..3).find_map(|_| match pool.pin(KEY) {
            PinOutcome::Resident(byte) => Some(byte),
            _ => None,
        });
        assert_eq!(healed, Some(page_byte(KEY)), "drained quarantine must retry and heal");
        assert!(pool.resident(KEY));
        assert!(!pool.quarantined(KEY), "healed key still quarantined");
        assert_eq!(pool.reads(), 2, "one failing read, one healing read, nothing else");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "expected >= 1000 distinct interleavings, got {}",
        report.iterations
    );
}
