//! Dataset profiles.

use payg_core::DataType;
use payg_table::{ColumnSpec, Schema, TableResult};

/// One generated column: its type, distinct-value count and (for strings)
/// value length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenColumnSpec {
    /// Column name.
    pub name: String,
    /// Value type.
    pub data_type: DataType,
    /// Number of distinct values in the column's domain (≥ 1). The primary
    /// key uses `cardinality == rows`.
    pub cardinality: u64,
    /// Approximate encoded length for string columns (ignored otherwise).
    pub string_len: usize,
    /// Whether the column gets an inverted index in the `T^i` variants.
    pub indexed: bool,
}

/// A generated table: row count plus per-column specs. Column 0 is always
/// the VARCHAR primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProfile {
    /// Row count.
    pub rows: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Column specs; `columns[0]` is the primary key.
    pub columns: Vec<GenColumnSpec>,
}

impl TableProfile {
    /// Builds the ERP-like profile of §6.1 at a given scale: a VARCHAR
    /// primary key, then a 7:1 mix of low-cardinality (< 100 distinct) and
    /// high-cardinality (> 1 000 distinct, up to rows/10) columns across
    /// all five types. `total_columns` counts the PK.
    pub fn erp(rows: u64, total_columns: usize, seed: u64) -> Self {
        assert!(total_columns >= 2, "need the PK plus at least one payload column");
        assert!(rows >= 2, "need at least two rows");
        let mut columns = Vec::with_capacity(total_columns);
        columns.push(GenColumnSpec {
            name: "pk".into(),
            data_type: DataType::Varchar,
            cardinality: rows,
            string_len: 14,
            indexed: true,
        });
        let types = [
            DataType::Integer,
            DataType::Decimal,
            DataType::Double,
            DataType::Varchar, // CHAR-like short strings
            DataType::Varchar, // VARCHAR longer strings
        ];
        for i in 0..total_columns - 1 {
            let data_type = types[i % types.len()];
            // Paper ratio: 112 of 128 columns (87.5 %) below 100 distinct
            // values; the rest above 1 000, up to 10 % of the rows.
            // Cardinalities include the degenerate single-value column.
            let high = i % 8 == 7;
            let cardinality = if high {
                (1_000 + (i as u64 * 977) % 9_000).min(rows / 10).max(2)
            } else {
                match i % 5 {
                    0 => 1,
                    1 => 3 + (i as u64 % 7),
                    2 => 10 + (i as u64 * 13) % 40,
                    3 => 50 + (i as u64 * 7) % 30,
                    _ => 80 + (i as u64 * 11) % 19,
                }
                .min(rows)
            };
            let string_len = if i % types.len() == 4 { 24 + (i % 5) * 8 } else { 10 };
            columns.push(GenColumnSpec {
                name: format!("c{:03}_{}", i + 1, type_tag(data_type)),
                data_type,
                cardinality,
                string_len,
                indexed: false,
            });
        }
        TableProfile { rows, seed, columns }
    }

    /// The matching engine schema. With `with_indexes`, every column gets
    /// an inverted index (the paper's `T^i` tables); the PK is always
    /// indexed.
    pub fn schema(&self, with_indexes: bool) -> TableResult<Schema> {
        let specs = self
            .columns
            .iter()
            .map(|c| {
                if with_indexes || c.indexed {
                    ColumnSpec::indexed(&c.name, c.data_type)
                } else {
                    ColumnSpec::new(&c.name, c.data_type)
                }
            })
            .collect();
        Schema::new(specs)?.with_primary_key(&self.columns[0].name)
    }

    /// Names of columns of a given type (excluding the PK).
    pub fn columns_of_type(&self, ty: DataType) -> Vec<&GenColumnSpec> {
        self.columns[1..].iter().filter(|c| c.data_type == ty).collect()
    }
}

fn type_tag(ty: DataType) -> &'static str {
    match ty {
        DataType::Integer => "int",
        DataType::Decimal => "dec",
        DataType::Double => "dbl",
        DataType::Varchar => "str",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erp_profile_matches_paper_ratios() {
        let p = TableProfile::erp(10_000, 33, 42);
        assert_eq!(p.columns.len(), 33);
        assert_eq!(p.columns[0].data_type, DataType::Varchar, "VARCHAR primary key");
        assert_eq!(p.columns[0].cardinality, 10_000);
        let payload = &p.columns[1..];
        let low = payload.iter().filter(|c| c.cardinality < 100).count();
        let high = payload.iter().filter(|c| c.cardinality >= 1_000).count();
        // 87.5 % low cardinality, like 112/128.
        assert!(low >= payload.len() * 3 / 4, "low {low} of {}", payload.len());
        assert!(high >= 1);
        // Some cardinality-1 columns exist (paper: "from 1").
        assert!(payload.iter().any(|c| c.cardinality == 1));
        // All five type slots appear.
        for ty in [DataType::Integer, DataType::Decimal, DataType::Double, DataType::Varchar] {
            assert!(payload.iter().any(|c| c.data_type == ty), "{ty:?} missing");
        }
    }

    #[test]
    fn schema_round_trips() {
        let p = TableProfile::erp(1_000, 9, 1);
        let s = p.schema(false).unwrap();
        assert_eq!(s.arity(), 9);
        assert_eq!(s.primary_key(), Some(0));
        assert!(s.columns()[0].with_index);
        assert!(!s.columns()[1].with_index);
        let si = p.schema(true).unwrap();
        assert!(si.columns().iter().all(|c| c.with_index));
    }

    #[test]
    fn unique_column_names() {
        let p = TableProfile::erp(100, 40, 7);
        let mut names: Vec<&str> = p.columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), p.columns.len());
    }
}
