//! Deterministic value generation.
//!
//! Every column's domain is a function of `(seed, column, domain index)`,
//! and every row's value is `domain[h(seed, column, row) % cardinality]`,
//! so datasets are fully reproducible and individual values can be
//! recomputed without materializing anything — the query generators use
//! this to build predicates with known answers.

use crate::spec::{GenColumnSpec, TableProfile};
use payg_core::{DataType, Value};
use payg_table::Row;

/// SplitMix64: small, fast, deterministic.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The domain-index drawn by `row` in `col` (uniform over the cardinality).
pub fn domain_index(profile: &TableProfile, col: usize, row: u64) -> u64 {
    let spec = &profile.columns[col];
    if col == 0 {
        // The primary key is a permutation: row i gets domain index i.
        return row;
    }
    mix(profile.seed ^ (col as u64) << 40 ^ row) % spec.cardinality
}

/// The `idx`-th distinct value of `col`'s domain.
pub fn domain_value(profile: &TableProfile, col: usize, idx: u64) -> Value {
    let spec = &profile.columns[col];
    debug_assert!(idx < spec.cardinality);
    match spec.data_type {
        DataType::Integer => Value::Integer(value_i64(profile.seed, col, idx)),
        DataType::Decimal => Value::Decimal(i128::from(value_i64(profile.seed, col, idx)) * 25),
        DataType::Double => {
            Value::Double(value_i64(profile.seed, col, idx) as f64 / 16.0)
        }
        DataType::Varchar => Value::Varchar(string_value(spec, col, idx)),
    }
}

/// Distinct, order-scattered integers per (column, domain index).
fn value_i64(seed: u64, col: usize, idx: u64) -> i64 {
    // Distinctness within a column: spread indices apart, then add a
    // column-dependent offset and a small deterministic jitter below the
    // spread.
    let base = idx as i64 * 1_000;
    let jitter = (mix(seed ^ (col as u64) << 32 ^ idx) % 999) as i64;
    base + jitter - 500_000
}

/// Distinct strings: a column prefix, the zero-padded index (which makes
/// the domain sorted and prefix-compressible, like real document numbers),
/// padded to the spec's length.
fn string_value(spec: &GenColumnSpec, col: usize, idx: u64) -> String {
    let mut s = format!("C{col:02}-{idx:09}");
    while s.len() < spec.string_len {
        s.push((b'a' + ((idx as usize + s.len() + col) % 26) as u8) as char);
    }
    s
}

/// The value of (`row`, `col`).
pub fn value_at(profile: &TableProfile, col: usize, row: u64) -> Value {
    domain_value(profile, col, domain_index(profile, col, row))
}

/// All values of one column (column-wise generation for column builders).
pub fn column_values(profile: &TableProfile, col: usize) -> Vec<Value> {
    (0..profile.rows).map(|r| value_at(profile, col, r)).collect()
}

/// All rows (row-wise generation for table inserts).
pub fn generate_rows(profile: &TableProfile) -> Vec<Row> {
    (0..profile.rows)
        .map(|r| (0..profile.columns.len()).map(|c| value_at(profile, c, r)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> TableProfile {
        TableProfile::erp(2_000, 17, 99)
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile();
        assert_eq!(generate_rows(&p), generate_rows(&p));
        assert_eq!(column_values(&p, 3), column_values(&p, 3));
    }

    #[test]
    fn pk_is_unique_and_sorted_by_row() {
        let p = profile();
        let pks = column_values(&p, 0);
        let mut keys: Vec<Vec<u8>> = pks.iter().map(Value::to_key).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "primary key must be unique");
    }

    #[test]
    fn cardinality_is_respected() {
        let p = profile();
        for (c, spec) in p.columns.iter().enumerate() {
            let values = column_values(&p, c);
            let mut keys: Vec<Vec<u8>> = values.iter().map(Value::to_key).collect();
            keys.sort();
            keys.dedup();
            assert!(
                keys.len() as u64 <= spec.cardinality,
                "column {c} exceeds its cardinality"
            );
            // With 2 000 rows, small domains are fully covered.
            if spec.cardinality <= 100 {
                assert_eq!(keys.len() as u64, spec.cardinality, "column {c} under-covers");
            }
            // Types match the spec.
            assert!(values.iter().all(|v| v.data_type() == spec.data_type));
        }
    }

    #[test]
    fn domains_are_distinct_per_index() {
        let p = profile();
        for c in [1usize, 2, 3, 4, 8] {
            let card = p.columns[c].cardinality;
            let mut keys: Vec<Vec<u8>> =
                (0..card).map(|i| domain_value(&p, c, i).to_key()).collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), n, "column {c} domain has duplicates");
        }
    }

    #[test]
    fn column_and_row_generation_agree() {
        let p = profile();
        let rows = generate_rows(&p);
        for c in 0..p.columns.len() {
            let col = column_values(&p, c);
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(row[c], col[r]);
            }
        }
    }
}
