//! Generators for the paper's Table 2 query workloads.

use crate::gen::{domain_value, value_at};
use crate::spec::TableProfile;
use payg_core::{DataType, Value, ValuePredicate};
use payg_table::{Projection, Query};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws random queries of each Table 2 shape against a generated table.
/// Deterministic per seed.
pub struct QueryGen {
    profile: TableProfile,
    rng: StdRng,
}

impl QueryGen {
    /// A generator over `profile` with its own seed.
    pub fn new(profile: TableProfile, seed: u64) -> Self {
        QueryGen { profile, rng: StdRng::seed_from_u64(seed) }
    }

    /// The generated table's profile.
    pub fn profile(&self) -> &TableProfile {
        &self.profile
    }

    fn random_row(&mut self) -> u64 {
        self.rng.random_range(0..self.profile.rows)
    }

    fn pk_name(&self) -> String {
        self.profile.columns[0].name.clone()
    }

    /// The PK value of `row` (PKs are a sorted permutation of the domain).
    pub fn pk_of_row(&self, row: u64) -> Value {
        domain_value(&self.profile, 0, row)
    }

    fn random_column_of(&mut self, types: &[DataType]) -> usize {
        let candidates: Vec<usize> = (1..self.profile.columns.len())
            .filter(|&c| types.contains(&self.profile.columns[c].data_type))
            .collect();
        assert!(!candidates.is_empty(), "profile lacks a column of {types:?}");
        candidates[self.rng.random_range(0..candidates.len())]
    }

    const NUMERIC: &'static [DataType] =
        &[DataType::Integer, DataType::Decimal, DataType::Double];

    /// `Q_pk^num`: `SELECT C_num FROM T WHERE C_pk = value` for a random
    /// row and a random numeric column.
    pub fn q_pk_num(&mut self) -> Query {
        let row = self.random_row();
        let col = self.random_column_of(Self::NUMERIC);
        Query::filtered(
            self.pk_name(),
            ValuePredicate::Eq(self.pk_of_row(row)),
            Projection::Columns(vec![self.profile.columns[col].name.clone()]),
        )
    }

    /// `Q_pk^str`: `SELECT C_str FROM T WHERE C_pk = value` for a random
    /// row and a random string column.
    pub fn q_pk_str(&mut self) -> Query {
        let row = self.random_row();
        let col = self.random_column_of(&[DataType::Varchar]);
        Query::filtered(
            self.pk_name(),
            ValuePredicate::Eq(self.pk_of_row(row)),
            Projection::Columns(vec![self.profile.columns[col].name.clone()]),
        )
    }

    /// `Q_pk^*`: `SELECT * FROM T WHERE C_pk = value` for a random row.
    pub fn q_pk_star(&mut self) -> Query {
        let row = self.random_row();
        Query::filtered(
            self.pk_name(),
            ValuePredicate::Eq(self.pk_of_row(row)),
            Projection::All,
        )
    }

    /// `Q_pk^rid`: `SELECT ROWID() FROM T WHERE C_pk = value`.
    pub fn q_pk_rid(&mut self) -> Query {
        let row = self.random_row();
        Query::filtered(
            self.pk_name(),
            ValuePredicate::Eq(self.pk_of_row(row)),
            Projection::RowIds,
        )
    }

    /// `Q_num^count`: `SELECT COUNT(*) FROM T WHERE C_num = value` — the
    /// value a random row actually holds, so counts are nonzero.
    pub fn q_num_count(&mut self) -> Query {
        let col = self.random_column_of(Self::NUMERIC);
        let row = self.random_row();
        Query::filtered(
            self.profile.columns[col].name.clone(),
            ValuePredicate::Eq(value_at(&self.profile, col, row)),
            Projection::Count,
        )
    }

    /// `Q_str^count`: `SELECT COUNT(*) FROM T WHERE C_str = value`.
    pub fn q_str_count(&mut self) -> Query {
        let col = self.random_column_of(&[DataType::Varchar]);
        let row = self.random_row();
        Query::filtered(
            self.profile.columns[col].name.clone(),
            ValuePredicate::Eq(value_at(&self.profile, col, row)),
            Projection::Count,
        )
    }

    /// The PK range covering `selectivity` of the rows at a random start:
    /// `v1 <= C_pk <= v2`. `selectivity == 0.0` yields a single row.
    pub fn pk_range(&mut self, selectivity: f64) -> ValuePredicate {
        let span = ((self.profile.rows as f64 * selectivity).ceil() as u64).max(1);
        let start = self.rng.random_range(0..self.profile.rows - span + 1);
        ValuePredicate::Between(self.pk_of_row(start), self.pk_of_row(start + span - 1))
    }

    /// `Q*_{σpk}`: `SELECT * FROM T WHERE v1 <= C_pk <= v2`.
    pub fn q_range_star(&mut self, selectivity: f64) -> Query {
        Query::filtered(self.pk_name(), self.pk_range(selectivity), Projection::All)
    }

    /// `Q^{sum}_{σpk}`: `SELECT SUM(C_num) FROM T WHERE v1 <= C_pk <= v2`.
    pub fn q_range_sum(&mut self, selectivity: f64) -> Query {
        let col = self.random_column_of(&[DataType::Integer, DataType::Decimal]);
        Query::filtered(
            self.pk_name(),
            self.pk_range(selectivity),
            Projection::Sum(self.profile.columns[col].name.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_core::{LoadPolicy, PageConfig};
    use payg_resman::ResourceManager;
    use payg_storage::{BufferPool, MemStore};
    use payg_table::{PartitionSpec, QueryResult, Table};
    use std::sync::Arc;

    fn small_table() -> (Table, TableProfile) {
        let profile = TableProfile::erp(500, 11, 7);
        let schema = profile.schema(false).unwrap();
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema,
            vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
        )
        .unwrap();
        t.insert_all(crate::gen::generate_rows(&profile)).unwrap();
        t.delta_merge_all().unwrap();
        (t, profile)
    }

    #[test]
    fn point_queries_hit_exactly_one_row() {
        let (t, profile) = small_table();
        let mut g = QueryGen::new(profile.clone(), 1);
        for _ in 0..20 {
            let q = g.q_pk_star();
            let rows = t.execute(&q).unwrap().into_rows();
            assert_eq!(rows.len(), 1, "PK point query returns exactly one row");
            assert_eq!(rows[0].len(), profile.columns.len());
        }
        for _ in 0..10 {
            let q = g.q_pk_rid();
            match t.execute(&q).unwrap() {
                QueryResult::RowIds(ids) => assert_eq!(ids.len(), 1),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn projected_point_queries_return_right_column_types() {
        let (t, profile) = small_table();
        let mut g = QueryGen::new(profile, 2);
        for _ in 0..10 {
            let rows = t.execute(&g.q_pk_num()).unwrap().into_rows();
            assert_eq!(rows.len(), 1);
            assert!(matches!(
                rows[0][0],
                Value::Integer(_) | Value::Decimal(_) | Value::Double(_)
            ));
            let rows = t.execute(&g.q_pk_str()).unwrap().into_rows();
            assert!(matches!(rows[0][0], Value::Varchar(_)));
        }
    }

    #[test]
    fn count_queries_are_nonzero() {
        let (t, profile) = small_table();
        let mut g = QueryGen::new(profile, 3);
        for _ in 0..10 {
            assert!(t.execute(&g.q_num_count()).unwrap().count() >= 1);
            assert!(t.execute(&g.q_str_count()).unwrap().count() >= 1);
        }
    }

    #[test]
    fn range_selectivity_is_respected() {
        let (t, profile) = small_table();
        let rows = profile.rows;
        let mut g = QueryGen::new(profile, 4);
        for sel in [0.0, 0.01, 0.1] {
            let expect = ((rows as f64 * sel).ceil() as u64).max(1);
            let q = Query {
                filter: g.q_range_star(sel).filter,
                projection: Projection::Count,
            };
            assert_eq!(t.execute(&q).unwrap().count(), expect, "selectivity {sel}");
        }
        // SUM over a range executes without error.
        let q = g.q_range_sum(0.05);
        assert!(matches!(
            t.execute(&q).unwrap(),
            QueryResult::Sum(Value::Integer(_) | Value::Decimal(_))
        ));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let profile = TableProfile::erp(500, 11, 7);
        let mut a = QueryGen::new(profile.clone(), 9);
        let mut b = QueryGen::new(profile, 9);
        for _ in 0..10 {
            assert_eq!(a.q_pk_star(), b.q_pk_star());
            assert_eq!(a.q_str_count(), b.q_str_count());
            assert_eq!(a.q_range_sum(0.01), b.q_range_sum(0.01));
        }
    }
}
