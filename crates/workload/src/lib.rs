//! Workload generation: an ERP-like dataset and the paper's Table 2 query
//! mix (§6.1).
//!
//! The paper's in-house generator produces a 100 M-row, 128-column table
//! resembling a real ERP system: types INTEGER, DECIMAL, DOUBLE, CHAR and
//! VARCHAR; column cardinalities from 1 to 10 M; 112 of 128 columns with
//! fewer than 100 distinct values and 14 with more than 1 000. This crate
//! reproduces that *profile* at a configurable scale: the fraction of
//! low-cardinality columns (87.5 %), the type mix, a VARCHAR primary key
//! (the paper's Fig. 7 note), and deterministic seeded generation so every
//! experiment is reproducible.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod queries;
pub mod spec;

pub use gen::{column_values, generate_rows};
pub use queries::QueryGen;
pub use spec::{GenColumnSpec, TableProfile};
